"""Monitoring overhead: the cost of the metrics hooks, on and off.

The monitoring pipeline (repro.obs.metrics, docs/OBSERVABILITY.md) makes
the tracer's promises for its own hook sites:

1. **Zero perturbation** — the monitored campaign's CSV text is
   byte-identical to the unmonitored one.  Asserted unconditionally.
2. **Unmeasurable overhead when disabled** — with no monitor active, each
   hook site is one ``active_monitor()`` call (a thread-local attribute
   read) plus a ``None`` branch.  A wall-clock A/B cannot resolve that
   against scheduler noise, so this benchmark measures it directly:
   count the hook executions in a real unmonitored campaign (by wrapping
   each instrumented module's ``active_monitor`` reference), microbench
   the per-call cost, and assert the product stays under
   ``MAX_DISABLED_OVERHEAD`` of the campaign wall clock.
3. **Bounded cost when enabled** — monitoring is explicit opt-in, so the
   ceiling is much looser (``MAX_MONITORED_OVERHEAD``); this guards
   against a hot-loop ``observe_run``/``finalize`` regression, not
   against the (real, per-run) price of the aggregation itself.

Timing assertions are skipped under ``REPRO_BENCH_CHECK_ONLY=1`` (CI
smoke on noisy shared runners); the equality assertion always runs.
Results land in ``BENCH_monitor.json`` for cross-commit tracking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from _bench_util import emit
from repro.cluster import longhorn
from repro.gpu import dvfs as dvfs_mod
from repro.obs.metrics import FleetMonitor, active_monitor
from repro.sim import CampaignConfig, run_campaign
from repro.sim import engine as engine_mod
from repro.sim import run as run_mod
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

#: Skip timing assertions (equality always asserts) — for CI smoke runs.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

#: Ceiling for the disabled path: hook executions x per-call cost.
MAX_DISABLED_OVERHEAD = 0.02

#: Lenient regression guard for the opt-in enabled path.  Enabled
#: monitoring does real per-run aggregation (windows, percentiles,
#: histograms), which against this deliberately tiny baseline campaign is
#: a noticeable fraction — the guard only catches gross hot-loop
#: regressions, not the honest price of the feature.
MAX_MONITORED_OVERHEAD = 0.60

#: Best-of count; the minimum of several runs strips scheduler noise.
REPEATS = 5

OUTPUT_PATH = pathlib.Path("BENCH_monitor.json")

CONFIG = CampaignConfig(days=10, runs_per_day=2)

#: Every module that calls ``active_monitor()`` at a hook site.
HOOK_MODULES = (run_mod, engine_mod, dvfs_mod)


def _timed_campaign(monitor=None):
    """One serial Longhorn campaign on a fresh cluster (cold fleet cache)."""
    cluster = longhorn(seed=2022)
    started = time.perf_counter()
    dataset = run_campaign(
        cluster, sgemm(), CONFIG, workers=1, monitor=monitor,
    )
    return dataset, time.perf_counter() - started


def _count_hook_executions():
    """Run one unmonitored campaign counting every active_monitor() call."""
    calls = 0

    def counting_active_monitor():
        nonlocal calls
        calls += 1
        return active_monitor()

    for module in HOOK_MODULES:
        assert module.active_monitor is active_monitor, module.__name__
        module.active_monitor = counting_active_monitor
    try:
        _timed_campaign()
    finally:
        for module in HOOK_MODULES:
            module.active_monitor = active_monitor
    return calls


def _per_call_cost(n=200_000):
    started = time.perf_counter()
    for _ in range(n):
        active_monitor()
    return (time.perf_counter() - started) / n


def test_monitoring_overhead():
    baseline_ds, baseline_s = None, float("inf")
    monitored_ds, monitored_s = None, float("inf")
    monitor = None
    for _ in range(REPEATS):
        dataset, elapsed = _timed_campaign()
        baseline_ds, baseline_s = dataset, min(baseline_s, elapsed)
        monitor = FleetMonitor()
        monitored_ds, elapsed = _timed_campaign(monitor=monitor)
        monitored_s = min(monitored_s, elapsed)

    # Guarantee 1: byte-identical output, monitored or not.
    baseline_csv = dataset_to_csv_text(baseline_ds)
    assert dataset_to_csv_text(monitored_ds) == baseline_csv
    # ... and the monitor did actually observe the campaign.
    assert monitor.n_runs == CONFIG.days * CONFIG.runs_per_day
    assert monitor.registry.counter("monitor_gpu_samples_total") \
        == monitored_ds.n_rows
    assert monitor.registry.counter("solver_solves_total") > 0

    # Guarantee 2: the disabled path, measured directly.
    hook_calls = _count_hook_executions()
    assert hook_calls > 0, "no hook sites executed — instrumentation gone?"
    hook_cost_s = hook_calls * _per_call_cost()
    disabled_overhead = hook_cost_s / baseline_s

    monitored_overhead = monitored_s / baseline_s - 1.0
    emit(None, "Monitoring hooks: serial Longhorn campaign (10d x 2)", [
        ("unmonitored best-of-5", "-", f"{baseline_s * 1e3:.1f} ms"),
        ("disabled hook executions", "-", f"{hook_calls}"),
        ("disabled-path cost", f"< {MAX_DISABLED_OVERHEAD:.0%}",
         f"{disabled_overhead:.3%}"),
        ("monitored best-of-5", "-", f"{monitored_s * 1e3:.1f} ms"),
        ("monitored overhead (opt-in)", f"< {MAX_MONITORED_OVERHEAD:.0%}",
         f"{monitored_overhead:+.2%}"),
        ("run samples collected", "-", f"{len(monitor.samples)}"),
    ])

    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text())
    existing["campaign_serial_longhorn"] = {
        "days": CONFIG.days,
        "runs_per_day": CONFIG.runs_per_day,
        "unmonitored_s": baseline_s,
        "monitored_s": monitored_s,
        "hook_calls": hook_calls,
        "disabled_overhead": disabled_overhead,
        "monitored_overhead": monitored_overhead,
        "n_samples": len(monitor.samples),
        "check_only": CHECK_ONLY,
    }
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    if not CHECK_ONLY:
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled hooks cost {disabled_overhead:.3%} of the campaign "
            f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
        )
        assert monitored_overhead < MAX_MONITORED_OVERHEAD, (
            f"monitoring overhead {monitored_overhead:.2%} exceeds the "
            f"{MAX_MONITORED_OVERHEAD:.0%} regression guard"
        )
