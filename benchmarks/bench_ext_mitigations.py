"""Extension: quantifying Section VII's proposed mitigations.

The paper ends with proposals it does not evaluate; these benchmarks close
that loop on the simulated fleet:

* blacklisting drains confirmed outliers and removes the slow-assignment
  risk at a small capacity cost;
* weighted sharding recovers most of the bulk-synchronous penalty on sick
  nodes;
* a global power manager holds the fleet at one clock, removing most of
  the performance variation at equal facility power.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import flag_outlier_gpus
from repro.mitigation import (
    BlacklistPolicy,
    allocate_equal_frequency,
    allocate_uniform,
    build_blacklist,
    evaluate_allocation,
    evaluate_blacklist,
    evaluate_sharding,
)
from repro.telemetry.sample import METRIC_PERFORMANCE
from repro.workloads import sgemm


def test_ext_blacklisting(benchmark, longhorn_sgemm, longhorn_resnet):
    reports = [
        flag_outlier_gpus(longhorn_sgemm),
        flag_outlier_gpus(longhorn_resnet),
    ]
    drained = build_blacklist(reports, longhorn_sgemm)
    outcome = benchmark(
        evaluate_blacklist, longhorn_sgemm, drained,
        BlacklistPolicy(), job_width=4,
    )
    rows = [
        ("GPUs drained (confirmed twice)", "few", str(len(drained))),
        ("capacity cost", "small", pct(outcome.capacity_lost)),
        ("worst GPU before -> after", "tail removed",
         f"{outcome.worst_before:.2f}x -> {outcome.worst_after:.2f}x"),
        ("4-GPU slow-assignment before -> after", "drops",
         f"{pct(outcome.slow_assignment_before)} -> "
         f"{pct(outcome.slow_assignment_after)}"),
    ]
    emit(None, "Extension: blacklisting trade-off", rows)

    assert drained
    assert outcome.capacity_lost < 0.15
    assert outcome.worst_after < outcome.worst_before
    assert outcome.slow_assignment_after <= outcome.slow_assignment_before


def test_ext_weighted_sharding(benchmark, longhorn_resnet_single):
    """Shard by measured speed: the sick node stops gating iterations."""
    med = longhorn_resnet_single.per_gpu_median(METRIC_PERFORMANCE)
    values = med[METRIC_PERFORMANCE]
    nodes = med["node_label"]

    def worst_node_speedup():
        speeds = 1.0 / values  # iterations per ms per GPU
        per_node = {}
        for node in np.unique(nodes):
            member_speeds = speeds[nodes == node]
            if member_speeds.shape[0] == 4:
                per_node[node] = evaluate_sharding(member_speeds, 64)
        worst = max(per_node.values(), key=lambda r: r["speedup"])
        return worst

    worst = benchmark(worst_node_speedup)
    rows = [
        ("worst node: uniform iteration", "gated by straggler",
         f"{worst['uniform_ms']:.1f} units"),
        ("worst node: weighted iteration", "recovers",
         f"{worst['weighted_ms']:.1f} units"),
        ("speedup on the sick node", ">1.2x", f"{worst['speedup']:.2f}x"),
        ("weighted efficiency", ">90%", pct(worst['weighted_efficiency'])),
    ]
    emit(None, "Extension: weighted sharding on sick nodes", rows)

    assert worst["speedup"] > 1.2
    assert worst["weighted_efficiency"] > 0.9


def test_ext_global_power_management(benchmark, longhorn_cluster):
    fleet = longhorn_cluster.fleet
    budget = fleet.n * 280.0  # a realistic facility cap below n x TDP

    def compare():
        uniform = evaluate_allocation(
            fleet, sgemm(), allocate_uniform(fleet, budget),
            rng=np.random.default_rng(0),
        )
        managed_alloc = allocate_equal_frequency(fleet, sgemm(), budget)
        managed = evaluate_allocation(
            fleet, sgemm(), managed_alloc, rng=np.random.default_rng(0)
        )
        return uniform, managed, managed_alloc

    uniform, managed, alloc = benchmark(compare)
    rows = [
        ("variation: per-GPU caps -> global", "shrinks sharply",
         f"{pct(uniform['variation'])} -> {pct(managed['variation'])}"),
        ("median runtime change", "~none",
         f"{uniform['median_ms']:.0f} -> {managed['median_ms']:.0f} ms"),
        ("fleet frequency target", "one clock",
         f"{alloc.target_frequency_mhz:.0f} MHz "
         f"(spread {managed['frequency_spread_mhz']:.0f} MHz)"),
        ("facility power", f"<= {budget/1000:.0f} kW",
         f"{managed['total_power_w']/1000:.0f} kW"),
    ]
    emit(None, "Extension: global power management (Sec. VII)", rows)

    assert managed["variation"] < 0.4 * uniform["variation"]
    assert managed["median_ms"] < uniform["median_ms"] * 1.05
    assert managed["total_power_w"] <= budget * 1.01
