"""Fig. 12: Frontera (mineral-oil RTX 5000) SGEMM box plots.

Paper: 5% performance variation, 7% frequency variation; Turing boost
clocks run higher than the V100s'; nearly all GPUs within 5 W of the 230 W
TDP; a narrow 4 degC Q3-Q1 temperature spread around a *high* 76 degC
median (oil sits between air and water); two c197 GPUs are severe outliers
(1100-1600 ms slower, ~16 degC cooler, ~59 W below median).
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig12_frontera_fleet_stats(benchmark, frontera_sgemm):
    bulk = frontera_sgemm.filter(frontera_sgemm["cabinet"] != "c197")
    perf = metric_boxstats(bulk, METRIC_PERFORMANCE)
    freq = metric_boxstats(bulk, METRIC_FREQUENCY)
    temp = metric_boxstats(bulk, METRIC_TEMPERATURE)

    rows = [
        ("performance variation", "5%", pct(perf.variation)),
        ("frequency variation", "7%", pct(freq.variation)),
        ("frequencies above V100 range", ">1530 MHz",
         f"median {freq.median:.0f} MHz"),
        ("temperature median", "76 C", f"{temp.median:.0f} C"),
        ("temperature Q3-Q1", "4 C", f"{temp.iqr:.0f} C"),
    ]
    emit(benchmark, "Fig. 12: SGEMM on Frontera", rows)

    assert 0.03 < perf.variation < 0.10
    assert freq.median > 1530.0
    assert 70.0 < temp.median < 82.0
    assert temp.iqr < 8.0

    benchmark(lambda: metric_boxstats(bulk, METRIC_PERFORMANCE))


def test_fig12_c197_outlier_pair(benchmark, frontera_sgemm):
    """The flagged pump cabinet: slower, cooler, far less power."""
    def c197_profile():
        c197 = frontera_sgemm.where(cabinet="c197")
        rest = frontera_sgemm.filter(frontera_sgemm["cabinet"] != "c197")
        med = frontera_sgemm.per_gpu_median(METRIC_PERFORMANCE)
        c197_gpus = med.filter(np.asarray(
            [c.startswith("c197") for c in med["gpu_label"]]
        ))
        sick = np.sort(c197_gpus[METRIC_PERFORMANCE])[-2:]
        return (
            float(np.median(rest[METRIC_PERFORMANCE])),
            sick,
            float(np.median(c197[METRIC_POWER].min())),
            float(np.median(rest[METRIC_POWER])),
            float(c197[METRIC_TEMPERATURE].min()),
            float(np.median(rest[METRIC_TEMPERATURE])),
        )

    t_med, sick, p_min, p_med, t_min, t_med_fleet = benchmark(c197_profile)
    slowdowns = sick - t_med
    rows = [
        ("c197 pair slowdown", "1100-1600 ms",
         f"{slowdowns.min():.0f}-{slowdowns.max():.0f} ms"),
        ("c197 power deficit", "~59 W", f"{p_med - p_min:.0f} W"),
        ("c197 temperature deficit", "~16 C", f"{t_med_fleet - t_min:.0f} C"),
    ]
    emit(None, "Fig. 12: the c197 outlier pair", rows)

    assert slowdowns.max() > 600.0          # clearly separated outliers
    assert p_med - p_min > 25.0             # much less power
    assert t_med_fleet - t_min > 5.0        # cooler than the fleet
