"""Section III: statistical sample-size methodology.

Paper: "we computed the recommended sample size (number of GPUs) for each
cluster to obtain lambda = 0.5% accuracy for average power within a 95%
confidence interval ... our sample size is 2.9x larger than the worst-case
recommendations."
"""

import numpy as np

from _bench_util import emit
from repro.core.sampling import coverage_margin, required_sample_size
from repro.telemetry.sample import METRIC_POWER


def test_sec3_sample_size_margins(
    benchmark,
    longhorn_cluster, longhorn_sgemm,
    vortex_cluster, vortex_sgemm,
    corona_cluster, corona_sgemm,
):
    cases = {
        "Longhorn": (longhorn_cluster, longhorn_sgemm),
        "Vortex": (vortex_cluster, vortex_sgemm),
        "Corona": (corona_cluster, corona_sgemm),
    }
    rows = []
    margins = []
    for name, (cluster, dataset) in cases.items():
        power = dataset[METRIC_POWER]
        cv = float(power.std() / power.mean())
        observed = int(np.unique(dataset["gpu_index"]).shape[0])
        needed = required_sample_size(cv, population=cluster.n_gpus)
        margin = coverage_margin(cv, observed, population=cluster.n_gpus)
        margins.append(margin)
        rows.append((
            f"{name}: cv / needed / measured / margin",
            "-- / -- / >90% / >=2.9x worst-case",
            f"{cv:.3f} / {needed} / {observed} / {margin:.1f}x",
        ))
    emit(benchmark, "Sec. III: sampling methodology", rows)

    # Measuring (nearly) everything comfortably exceeds the recommendation.
    assert min(margins) > 1.0
    assert max(margins) > 2.0

    benchmark(lambda: required_sample_size(0.03, population=416))


def test_sec3_lambda_and_confidence_defaults(benchmark):
    """The defaults encode the paper's lambda = 0.5% at 95% confidence."""
    from repro.core.sampling import DEFAULT_ACCURACY, DEFAULT_CONFIDENCE

    emit(None, "Sec. III: methodology constants",
         [("accuracy target (lambda)", "0.5%", f"{DEFAULT_ACCURACY:.1%}"),
          ("confidence", "95%", f"{DEFAULT_CONFIDENCE:.0%}")])
    assert DEFAULT_ACCURACY == 0.005
    assert DEFAULT_CONFIDENCE == 0.95

    benchmark(lambda: required_sample_size(0.05))
