"""Fig. 7: Corona SGEMM scatter correlations and the per-GPU repeatability
contrast with NVIDIA clusters.

Paper: duration-temperature weakly positive (rho = 0.20); duration-power
moderately negative (-0.48); duration-frequency weaker than on NVIDIA
clusters (-0.76 vs -0.97/-0.99) because the coarse DPM ladder dithers.
"""

from _bench_util import emit
from repro.core.correlation import paper_correlation_pairs, pearson
from repro.telemetry.sample import METRIC_FREQUENCY, METRIC_PERFORMANCE


def test_fig07_correlations(benchmark, corona_sgemm):
    pairs = benchmark(paper_correlation_pairs, corona_sgemm)
    rows = [
        ("perf_vs_temperature", "+0.20",
         f"{pairs['perf_vs_temperature'].rho:+.2f}"),
        ("perf_vs_power", "-0.48", f"{pairs['perf_vs_power'].rho:+.2f}"),
        ("perf_vs_frequency", "-0.76",
         f"{pairs['perf_vs_frequency'].rho:+.2f}"),
    ]
    emit(benchmark, "Fig. 7: SGEMM correlations on Corona", rows)

    assert pairs["perf_vs_temperature"].rho > 0.0
    assert pairs["perf_vs_power"].rho < -0.2


def test_fig07_weaker_freq_correlation_than_nvidia(
    benchmark, corona_sgemm, longhorn_sgemm
):
    """The AMD perf-frequency coupling is weaker than NVIDIA's (Takeaway 4).

    Compared on the healthy bulk (outlier groups excluded) where the
    coarse-ladder dithering is the distinguishing mechanism.
    """
    def rho_gap():
        bulk = corona_sgemm.filter(corona_sgemm["cabinet"] != "c115")
        rho_amd = pearson(bulk[METRIC_PERFORMANCE], bulk[METRIC_FREQUENCY])
        rho_nv = pearson(
            longhorn_sgemm[METRIC_PERFORMANCE],
            longhorn_sgemm[METRIC_FREQUENCY],
        )
        return rho_amd, rho_nv

    rho_amd, rho_nv = benchmark(rho_gap)
    emit(None, "Fig. 7 vs Fig. 3: vendor DVFS coupling",
         [("Corona rho(perf, freq)", "-0.76", f"{rho_amd:+.2f}"),
          ("Longhorn rho(perf, freq)", "-0.97", f"{rho_nv:+.2f}")])
    assert rho_nv < rho_amd < -0.2  # NVIDIA more negative than AMD
