"""Table I: summary of clusters studied.

Rebuilds every preset and prints the inventory row-for-row; the benchmark
measures full-cluster construction (silicon sampling + defect assignment +
cooling environment for 27,648 GPUs on Summit).
"""

import pytest

from _bench_util import emit
from repro.cluster import get_preset, list_presets, longhorn, summit

#: (cluster, GPU, #GPUs, #nodes, cooling) from Table I.
PAPER_TABLE_1 = {
    "CloudLab": ("V100", 12, 3, "air"),
    "Longhorn": ("V100", 416, 104, "air"),
    "Frontera": ("RTX5000", 360, 90, "oil"),
    "Vortex": ("V100", 216, 54, "water"),
    "Summit": ("V100", 27648, 4608, "water"),
    "Corona": ("MI60", 328, 82, "air"),
}


def test_table1_inventory(benchmark):
    clusters = {
        name: get_preset(name, seed=2022) for name in list_presets()
    }

    rows = []
    for name, cluster in clusters.items():
        cfg = cluster.config()
        gpu, n_gpus, n_nodes, cooling = PAPER_TABLE_1[name]
        rows.append((
            f"{name}: GPU/#GPUs/#nodes/cooling",
            f"{gpu}/{n_gpus}/{n_nodes}/{cooling}",
            f"{cfg.gpu_name}/{cfg.n_gpus}/{cfg.n_nodes}/{cfg.cooling}",
        ))
        assert cfg.gpu_name == gpu
        assert cfg.n_gpus == n_gpus
        assert cfg.n_nodes == n_nodes
        assert cfg.cooling == cooling
    emit(benchmark, "Table I: clusters studied", rows)

    benchmark(longhorn, seed=1)


def test_table1_summit_scale_build(benchmark):
    """Constructing the 27,648-GPU Summit model."""
    cluster = benchmark(summit, seed=7)
    assert cluster.n_gpus == 27648
