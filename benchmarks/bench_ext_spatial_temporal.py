"""Extension: the spatial/temporal effects the paper defers to future work.

Section VII ("Spatial Effects"): the study eliminated neighbour and
history effects by design; cloud-style per-GPU allocation would not.  On
the simulated fleet we can measure what they would have found:

* sharing an air-cooled chassis with busy neighbours costs a few percent
  (and is the worst on already-hot nodes), while cold-plate clusters are
  immune — cooling technology decides whether spatial effects exist;
* a short job scheduled right after a hot one pays a heat-soak penalty
  that decays on the thermal time constant.
"""

from _bench_util import emit, pct
from repro.sim.spatial import spatial_penalty, temporal_soak_slowdown
from repro.workloads import lammps_reaxc, sgemm


def test_ext_spatial_effects_by_cooling(
    benchmark, longhorn_cluster, vortex_cluster, frontera_cluster
):
    results = {}
    for name, cluster in (("Longhorn/air", longhorn_cluster),
                          ("Frontera/oil", frontera_cluster),
                          ("Vortex/water", vortex_cluster)):
        results[name] = spatial_penalty(cluster, sgemm())

    rows = [
        (f"{name}: preheat / median / worst slowdown",
         "air >> oil > water",
         f"{r['median_preheat_c']:.1f} C / {pct(r['median_slowdown'] - 1)}"
         f" / {pct(r['worst_slowdown'] - 1)}")
        for name, r in results.items()
    ]
    emit(None, "Extension: spatial interference (busy neighbours)", rows)

    assert (results["Longhorn/air"]["median_preheat_c"]
            > results["Frontera/oil"]["median_preheat_c"]
            > results["Vortex/water"]["median_preheat_c"])
    assert results["Longhorn/air"]["worst_slowdown"] > 1.02
    assert results["Vortex/water"]["median_slowdown"] < 1.01

    benchmark(lambda: spatial_penalty(vortex_cluster, sgemm()))


def test_ext_temporal_heat_soak(benchmark, longhorn_cluster):
    cases = {
        "60 s job, 5 s gap": (5.0, 60.0),
        "60 s job, 10 min gap": (600.0, 60.0),
        "1 h job, 5 s gap": (5.0, 3600.0),
    }
    results = {
        label: temporal_soak_slowdown(longhorn_cluster, sgemm(), gap, dur)
        for label, (gap, dur) in cases.items()
    }
    results["memory-bound job"] = temporal_soak_slowdown(
        longhorn_cluster, lammps_reaxc(), 5.0, 60.0
    )

    rows = [
        (label, "decays with gap/duration", f"{value:.3f}x")
        for label, value in results.items()
    ]
    emit(None, "Extension: temporal heat-soak penalty", rows)

    assert results["60 s job, 5 s gap"] > 1.01
    assert results["60 s job, 10 min gap"] < results["60 s job, 5 s gap"]
    assert results["1 h job, 5 s gap"] < 1.01
    assert results["memory-bound job"] < 1.01

    benchmark(
        lambda: temporal_soak_slowdown(longhorn_cluster, sgemm(), 5.0, 60.0)
    )
