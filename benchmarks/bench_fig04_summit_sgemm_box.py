"""Fig. 4: Summit SGEMM box plots, grouped by row.

Paper: 8% performance variation across all rows; ~100 MHz frequency
variation; rows D and F carry the most performance outliers; rows A and H
have sub-290 W GPUs; the water-cooled temperature range is a narrow
40-62 degC.
"""

import numpy as np

from _bench_util import emit, grouped_box_art, pct
from repro.core import grouped_boxstats, metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig04_summit_fleet_stats(benchmark, summit_sgemm):
    perf = metric_boxstats(summit_sgemm, METRIC_PERFORMANCE)
    freq = metric_boxstats(summit_sgemm, METRIC_FREQUENCY)
    temp = metric_boxstats(summit_sgemm, METRIC_TEMPERATURE)

    rows = [
        ("performance variation", "8%", pct(perf.variation)),
        ("frequency whisker span", "~100 MHz", f"{freq.range:.0f} MHz"),
        ("temperature band (bulk)", "40-62 C",
         f"{temp.whisker_lo:.0f}-{temp.whisker_hi:.0f} C"),
    ]
    emit(benchmark, "Fig. 4: SGEMM on Summit", rows)

    assert 0.05 < perf.variation < 0.12
    assert 60.0 < freq.range < 160.0
    assert temp.whisker_lo > 36.0
    assert temp.whisker_hi < 68.0

    benchmark(lambda: metric_boxstats(summit_sgemm, METRIC_PERFORMANCE))


def test_fig04_by_row_breakdown(benchmark, summit_sgemm):
    grouped = benchmark(
        grouped_boxstats, summit_sgemm, METRIC_PERFORMANCE, "row"
    )
    assert len(grouped) == 8
    print("\nFig. 4a (kernel duration by row):")
    print(grouped_box_art(grouped))

    # Every row shows comparable variation ("8% across all rows").
    variations = np.array([s.variation for s in grouped.values()])
    assert variations.min() > 0.04
    assert variations.max() < 0.14


def test_fig04_low_power_gpus_exist(benchmark, summit_sgemm):
    """Rows with GPUs below 290 W (Fig. 4c)."""
    power = summit_sgemm[METRIC_POWER]
    rows_col = summit_sgemm["row"]
    low = power < 290.0
    rows_with_low = set(np.unique(rows_col[low]))
    emit(None, "Fig. 4c: sub-290 W GPUs",
         [("rows containing sub-290 W GPUs", "several (A, H, ...)",
           ",".join(sorted(rows_with_low)))])
    assert "h" in rows_with_low  # the forced row-H power-delivery cluster
    assert len(rows_with_low) >= 2

    benchmark(lambda: (power < 290.0).sum())
