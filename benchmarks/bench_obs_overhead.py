"""Observability overhead: the cost of the hooks, on and off.

The observability layer (docs/OBSERVABILITY.md) promises:

1. **Zero perturbation** — the traced campaign's CSV text is
   byte-identical to the untraced one.  Asserted unconditionally.
2. **Unmeasurable overhead when disabled** — with no tracer active, each
   hook site is one ``active_tracer()`` call (a thread-local attribute
   read) plus a ``None`` branch.  A wall-clock A/B cannot resolve that
   against scheduler noise, so this benchmark measures it directly:
   count the hook executions in a real untraced campaign (by wrapping
   each instrumented module's ``active_tracer`` reference), microbench
   the per-call cost, and assert the product stays under
   ``MAX_DISABLED_OVERHEAD`` of the campaign wall clock.
3. **Bounded cost when enabled** — tracing is explicit opt-in, so the
   ceiling is looser (``MAX_TRACED_OVERHEAD``); this guards against a
   hot-loop ``add``/``record_span`` regression, not against the price of
   the spans themselves.

Timing assertions are skipped under ``REPRO_BENCH_CHECK_ONLY=1`` (CI
smoke on noisy shared runners); the equality assertion always runs.
Results land in ``BENCH_obs.json`` for cross-commit tracking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from _bench_util import emit
from repro.cluster import cluster as cluster_mod
from repro.cluster import longhorn
from repro.gpu import dvfs as dvfs_mod
from repro.obs import Manifest, Tracer
from repro.obs.tracer import active_tracer
from repro.sim import CampaignConfig, run_campaign
from repro.sim import engine as engine_mod
from repro.sim import run as run_mod
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

#: Skip timing assertions (equality always asserts) — for CI smoke runs.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

#: Ceiling for the disabled path: hook executions x per-call cost.
MAX_DISABLED_OVERHEAD = 0.02

#: Lenient regression guard for the opt-in enabled path.
MAX_TRACED_OVERHEAD = 0.15

#: Best-of count; the minimum of several runs strips scheduler noise.
REPEATS = 5

OUTPUT_PATH = pathlib.Path("BENCH_obs.json")

CONFIG = CampaignConfig(days=10, runs_per_day=2)

#: Every module that calls ``active_tracer()`` at a hook site.
HOOK_MODULES = (run_mod, engine_mod, dvfs_mod, cluster_mod)


def _timed_campaign(tracer=None, manifest=None):
    """One serial Longhorn campaign on a fresh cluster (cold fleet cache)."""
    cluster = longhorn(seed=2022)
    started = time.perf_counter()
    dataset = run_campaign(
        cluster, sgemm(), CONFIG, workers=1,
        tracer=tracer, manifest=manifest,
    )
    return dataset, time.perf_counter() - started


def _count_hook_executions():
    """Run one untraced campaign counting every active_tracer() call."""
    calls = 0

    def counting_active_tracer():
        nonlocal calls
        calls += 1
        return active_tracer()

    for module in HOOK_MODULES:
        assert module.active_tracer is active_tracer, module.__name__
        module.active_tracer = counting_active_tracer
    try:
        _timed_campaign()
    finally:
        for module in HOOK_MODULES:
            module.active_tracer = active_tracer
    return calls


def _per_call_cost(n=200_000):
    started = time.perf_counter()
    for _ in range(n):
        active_tracer()
    return (time.perf_counter() - started) / n


def test_observability_overhead():
    baseline_ds, baseline_s = None, float("inf")
    traced_s = float("inf")
    tracer = Tracer()
    for _ in range(REPEATS):
        dataset, elapsed = _timed_campaign()
        baseline_ds, baseline_s = dataset, min(baseline_s, elapsed)
        tracer.spans.clear()
        tracer.counters.clear()
        traced_ds, elapsed = _timed_campaign(tracer=tracer)
        traced_s = min(traced_s, elapsed)
    manifest_ds, _ = _timed_campaign(tracer=Tracer(), manifest=Manifest())

    # Guarantee 1: byte-identical output, observed or not.
    baseline_csv = dataset_to_csv_text(baseline_ds)
    assert dataset_to_csv_text(traced_ds) == baseline_csv
    assert dataset_to_csv_text(manifest_ds) == baseline_csv
    # ... and the tracer did actually observe the campaign.
    counters = tracer.deterministic_counters()
    assert counters["run.count"] == CONFIG.days * CONFIG.runs_per_day
    assert counters["campaign.rows"] == traced_ds.n_rows

    # Guarantee 2: the disabled path, measured directly.
    hook_calls = _count_hook_executions()
    assert hook_calls > 0, "no hook sites executed — instrumentation gone?"
    hook_cost_s = hook_calls * _per_call_cost()
    disabled_overhead = hook_cost_s / baseline_s

    traced_overhead = traced_s / baseline_s - 1.0
    emit(None, "Observability hooks: serial Longhorn campaign (10d x 2)", [
        ("untraced best-of-5", "-", f"{baseline_s * 1e3:.1f} ms"),
        ("disabled hook executions", "-", f"{hook_calls}"),
        ("disabled-path cost", f"< {MAX_DISABLED_OVERHEAD:.0%}",
         f"{disabled_overhead:.3%}"),
        ("traced best-of-5", "-", f"{traced_s * 1e3:.1f} ms"),
        ("traced overhead (opt-in)", f"< {MAX_TRACED_OVERHEAD:.0%}",
         f"{traced_overhead:+.2%}"),
        ("spans recorded", "-", f"{len(tracer.spans)}"),
    ])

    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text())
    existing["campaign_serial_longhorn"] = {
        "days": CONFIG.days,
        "runs_per_day": CONFIG.runs_per_day,
        "untraced_s": baseline_s,
        "traced_s": traced_s,
        "hook_calls": hook_calls,
        "disabled_overhead": disabled_overhead,
        "traced_overhead": traced_overhead,
        "n_spans": len(tracer.spans),
        "check_only": CHECK_ONLY,
    }
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    if not CHECK_ONLY:
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled hooks cost {disabled_overhead:.3%} of the campaign "
            f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
        )
        assert traced_overhead < MAX_TRACED_OVERHEAD, (
            f"tracing overhead {traced_overhead:.2%} exceeds the "
            f"{MAX_TRACED_OVERHEAD:.0%} regression guard"
        )
