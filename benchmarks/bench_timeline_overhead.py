"""Flight-recorder overhead: the cost of the timeline hooks, on and off.

The timeline layer (docs/OBSERVABILITY.md, "Timeline & replay") makes the
same promises as the tracer and monitor, measured the same way as
``bench_obs_overhead.py``:

1. **Zero perturbation** — the recorded campaign's CSV text is
   byte-identical to the unrecorded one, and the recorded event stream
   is byte-identical across repeats.  Asserted unconditionally.
2. **Unmeasurable overhead when disabled** — with no recorder active,
   each hook site is one ``active_recorder()`` call (a thread-local
   attribute read) plus a ``None`` branch.  A wall-clock A/B cannot
   resolve that against scheduler noise, so this benchmark measures it
   directly: count the hook executions in a real unrecorded campaign
   (by wrapping each instrumented module's ``active_recorder``
   reference), microbench the per-call cost, and assert the product
   stays under ``MAX_DISABLED_OVERHEAD`` of the campaign wall clock.
3. **Bounded cost when enabled** — recording is explicit opt-in, so the
   ceiling is looser (``MAX_RECORDED_OVERHEAD``); this guards against a
   hot-loop ``record()`` regression, not the price of the events.

Timing assertions are skipped under ``REPRO_BENCH_CHECK_ONLY=1`` (CI
smoke on noisy shared runners); the equality assertions always run.
Results land in ``BENCH_timeline.json`` for cross-commit tracking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from _bench_util import emit
from repro.cluster import longhorn
from repro.obs import health as health_mod
from repro.obs.timeline import TimelineRecorder, active_recorder
from repro.sched import engine as sched_engine_mod
from repro.sim import CampaignConfig, run_campaign
from repro.sim import run as run_mod
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

#: Skip timing assertions (equality always asserts) — for CI smoke runs.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

#: Ceiling for the disabled path: hook executions x per-call cost.
MAX_DISABLED_OVERHEAD = 0.02

#: Lenient regression guard for the opt-in enabled path.
MAX_RECORDED_OVERHEAD = 0.15

#: Best-of count; the minimum of several runs strips scheduler noise.
REPEATS = 5

OUTPUT_PATH = pathlib.Path("BENCH_timeline.json")

CONFIG = CampaignConfig(days=10, runs_per_day=2)

#: Every module that calls ``active_recorder()`` at a hook site.
HOOK_MODULES = (run_mod, health_mod, sched_engine_mod)


def _timed_campaign(timeline=None):
    """One serial Longhorn campaign on a fresh cluster (cold fleet cache)."""
    cluster = longhorn(seed=2022)
    started = time.perf_counter()
    dataset = run_campaign(
        cluster, sgemm(), CONFIG, workers=1, timeline=timeline,
    )
    return dataset, time.perf_counter() - started


def _count_hook_executions():
    """Run one unrecorded campaign counting every active_recorder() call."""
    calls = 0

    def counting_active_recorder():
        nonlocal calls
        calls += 1
        return active_recorder()

    for module in HOOK_MODULES:
        assert module.active_recorder is active_recorder, module.__name__
        module.active_recorder = counting_active_recorder
    try:
        _timed_campaign()
    finally:
        for module in HOOK_MODULES:
            module.active_recorder = active_recorder
    return calls


def _per_call_cost(n=200_000):
    started = time.perf_counter()
    for _ in range(n):
        active_recorder()
    return (time.perf_counter() - started) / n


def test_timeline_overhead():
    baseline_ds, baseline_s = None, float("inf")
    recorded_ds, recorded_s = None, float("inf")
    digests = set()
    for _ in range(REPEATS):
        dataset, elapsed = _timed_campaign()
        baseline_ds, baseline_s = dataset, min(baseline_s, elapsed)
        timeline = TimelineRecorder()
        recorded_ds, elapsed = _timed_campaign(timeline=timeline)
        recorded_s = min(recorded_s, elapsed)
        digests.add(timeline.digest())

    # Guarantee 1: byte-identical output, recorded or not — and the
    # recorded stream itself is byte-stable across repeats.
    assert dataset_to_csv_text(recorded_ds) == dataset_to_csv_text(baseline_ds)
    assert len(digests) == 1, "timeline digest varied across repeats"
    # ... and the recorder did actually observe the campaign.
    run_events = [e for e in timeline.events() if e.kind == "run"]
    assert len(run_events) == CONFIG.days * CONFIG.runs_per_day
    assert timeline.events()[-1].kind == "campaign_end"

    # Guarantee 2: the disabled path, measured directly.
    hook_calls = _count_hook_executions()
    assert hook_calls > 0, "no hook sites executed — instrumentation gone?"
    hook_cost_s = hook_calls * _per_call_cost()
    disabled_overhead = hook_cost_s / baseline_s

    recorded_overhead = recorded_s / baseline_s - 1.0
    emit(None, "Flight recorder hooks: serial Longhorn campaign (10d x 2)", [
        ("unrecorded best-of-5", "-", f"{baseline_s * 1e3:.1f} ms"),
        ("disabled hook executions", "-", f"{hook_calls}"),
        ("disabled-path cost", f"< {MAX_DISABLED_OVERHEAD:.0%}",
         f"{disabled_overhead:.3%}"),
        ("recorded best-of-5", "-", f"{recorded_s * 1e3:.1f} ms"),
        ("recorded overhead (opt-in)", f"< {MAX_RECORDED_OVERHEAD:.0%}",
         f"{recorded_overhead:+.2%}"),
        ("events recorded", "-", f"{timeline.n_events}"),
    ])

    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text())
    existing["campaign_serial_longhorn"] = {
        "days": CONFIG.days,
        "runs_per_day": CONFIG.runs_per_day,
        "unrecorded_s": baseline_s,
        "recorded_s": recorded_s,
        "hook_calls": hook_calls,
        "disabled_overhead": disabled_overhead,
        "recorded_overhead": recorded_overhead,
        "n_events": timeline.n_events,
        "check_only": CHECK_ONLY,
    }
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    if not CHECK_ONLY:
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled hooks cost {disabled_overhead:.3%} of the campaign "
            f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
        )
        assert recorded_overhead < MAX_RECORDED_OVERHEAD, (
            f"recording overhead {recorded_overhead:.2%} exceeds the "
            f"{MAX_RECORDED_OVERHEAD:.0%} regression guard"
        )
