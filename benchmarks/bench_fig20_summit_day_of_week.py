"""Fig. 20: Summit day-of-week consistency.

Paper: ~8% performance variation on every day of the week across eight
weeks, with power-outlier counts swinging by day (more on Mondays,
Wednesdays, Fridays) without moving the performance statistics —
Takeaway 9: the variability is not transient.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core.daily import day_of_week_stats, weekday_consistency


def test_fig20_summit_weekday_stats(benchmark, summit_sgemm_weeks):
    stats = benchmark(day_of_week_stats, summit_sgemm_weeks)
    assert len(stats) == 7

    rows = [
        (f"{day} perf variation / power outliers", "~8% / varies",
         f"{pct(s.performance.variation)} / {s.n_power_outliers}")
        for day, s in stats.items()
    ]
    emit(None, "Fig. 20: Summit by day of week", rows)

    variations = [s.performance.variation for s in stats.values()]
    assert min(variations) > 0.04
    assert max(variations) < 0.13


def test_fig20_consistency_summary(benchmark, summit_sgemm_weeks):
    stats = day_of_week_stats(summit_sgemm_weeks)
    summary = benchmark(weekday_consistency, stats)
    rows = [
        ("daily median drift", "~0", pct(summary["median_drift"])),
        ("daily variation spread", "small", pct(summary["variation_spread"])),
        ("power-outlier imbalance", ">1x",
         f"{summary['outlier_imbalance']:.1f}x"),
    ]
    emit(None, "Takeaway 9 on Summit", rows)

    assert summary["median_drift"] < 0.01
    assert summary["variation_spread"] < 0.05
    # Outlier counts swing day to day (partial coverage hits different
    # defective columns), while performance stays put.
    assert summary["outlier_imbalance"] > 1.0
