"""Shared fixtures for the figure/table reproduction benchmarks.

Campaigns are session-scoped: several figures read the same dataset (the
paper, too, derives Figs. 1-3 and 8 from one Longhorn SGEMM campaign).
Campaign lengths are compressed relative to the paper's 1-8 weeks — the
statistics converge long before that — and Summit day-of-week runs use
partial per-day coverage, which matches how a shared machine is actually
sampled.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the reproduced
paper tables alongside the timing results.
"""

from __future__ import annotations

import numpy as np
import pytest

from _bench_util import run_campaign
from repro.cluster import cloudlab, corona, frontera, longhorn, summit, vortex
from repro.sim import CampaignConfig
from repro.workloads import (
    bert_pretraining,
    lammps_reaxc,
    pagerank,
    resnet50,
    sgemm,
)
from repro.workloads.sgemm import SGEMM_N_AMD

#: One seed for the whole benchmark session: every figure sees the same
#: machines, so cross-figure statements ("the same nodes are outliers")
#: hold across benchmarks exactly as they did in the paper.
BENCH_SEED = 2022


@pytest.fixture(scope="session")
def longhorn_cluster():
    return longhorn(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def summit_cluster():
    return summit(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def frontera_cluster():
    return frontera(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def vortex_cluster():
    return vortex(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def corona_cluster():
    return corona(seed=BENCH_SEED)


@pytest.fixture(scope="session")
def cloudlab_cluster():
    return cloudlab(seed=BENCH_SEED)


# -- campaigns ---------------------------------------------------------------


@pytest.fixture(scope="session")
def longhorn_sgemm(longhorn_cluster):
    """Longhorn SGEMM campaign (paper: 6 weeks; here 7 days x 2 runs)."""
    return run_campaign(
        longhorn_cluster, sgemm(), CampaignConfig(days=7, runs_per_day=2)
    )


@pytest.fixture(scope="session")
def summit_sgemm(summit_cluster):
    """Summit SGEMM campaign (full fleet, 3 days)."""
    return run_campaign(
        summit_cluster, sgemm(), CampaignConfig(days=3, runs_per_day=1)
    )


@pytest.fixture(scope="session")
def summit_sgemm_weeks(summit_cluster):
    """Summit multi-week campaign for the day-of-week study (Fig. 20).

    28 days at 25% per-day coverage — the shared-machine access pattern.
    """
    return run_campaign(
        summit_cluster, sgemm(),
        CampaignConfig(days=28, runs_per_day=1, coverage=0.25),
    )


@pytest.fixture(scope="session")
def vortex_sgemm(vortex_cluster):
    """Vortex campaign; the paper reached 184 of 216 GPUs (coverage<1)."""
    return run_campaign(
        vortex_cluster, sgemm(),
        CampaignConfig(days=5, runs_per_day=2, coverage=0.85),
    )


@pytest.fixture(scope="session")
def frontera_sgemm(frontera_cluster):
    return run_campaign(
        frontera_cluster, sgemm(), CampaignConfig(days=5, runs_per_day=2)
    )


@pytest.fixture(scope="session")
def corona_sgemm(corona_cluster):
    """Corona runs the AMD-sized matrices (Table II)."""
    return run_campaign(
        corona_cluster, sgemm(n=SGEMM_N_AMD),
        CampaignConfig(days=5, runs_per_day=2),
    )


@pytest.fixture(scope="session")
def longhorn_resnet(longhorn_cluster):
    """Multi-GPU ResNet-50 (paper: 2 weeks, 3-4 runs per node)."""
    return run_campaign(
        longhorn_cluster, resnet50(), CampaignConfig(days=5, runs_per_day=3)
    )


@pytest.fixture(scope="session")
def longhorn_resnet_single(longhorn_cluster):
    return run_campaign(
        longhorn_cluster, resnet50(batch_size=16, n_gpus=1),
        CampaignConfig(days=5, runs_per_day=3),
    )


@pytest.fixture(scope="session")
def longhorn_bert(longhorn_cluster):
    """BERT pre-training (paper: 1 week, 5 runs per node)."""
    return run_campaign(
        longhorn_cluster, bert_pretraining(),
        CampaignConfig(days=5, runs_per_day=3),
    )


@pytest.fixture(scope="session")
def longhorn_lammps(longhorn_cluster):
    return run_campaign(
        longhorn_cluster, lammps_reaxc(), CampaignConfig(days=5, runs_per_day=2)
    )


@pytest.fixture(scope="session")
def longhorn_pagerank(longhorn_cluster):
    return run_campaign(
        longhorn_cluster, pagerank(), CampaignConfig(days=5, runs_per_day=2)
    )
