"""Fig. 22: SGEMM performance variation under power limits (CloudLab).

Paper: with root access on CloudLab's 12 V100s, sweeping the power limit
from 300 W down to 100 W shows kernel durations growing *and* variability
growing — 9% at 300 W versus 18% at 150 W — because DVFS is less optimized
at low budgets (Section VI-B).  Physically: at low clocks the V-f curve is
flat, so a given process spread costs twice the frequency to compensate.
"""

import numpy as np

from _bench_util import boxvar, emit, pct
from repro.sim import simulate_run
from repro.workloads import sgemm

LIMITS_W = (300.0, 250.0, 200.0, 150.0, 100.0)
PAPER_HINT = {300.0: "9%", 150.0: "18%"}


def _sweep(cluster, limit, n_runs=8):
    perfs = [
        simulate_run(cluster, sgemm(), day=0, run_index=i,
                     power_limit_w=limit).performance_ms
        for i in range(n_runs)
    ]
    return np.concatenate(perfs)


def test_fig22_power_limit_sweep(benchmark, cloudlab_cluster):
    results = {}
    for limit in LIMITS_W:
        perf = _sweep(cloudlab_cluster, limit)
        results[limit] = (boxvar(perf), float(np.median(perf)))

    rows = [
        (f"{int(limit)} W: variation / median runtime",
         f"{PAPER_HINT.get(limit, 'grows')} / grows",
         f"{pct(results[limit][0])} / {results[limit][1]:.0f} ms")
        for limit in LIMITS_W
    ]
    emit(benchmark, "Fig. 22: power-limit sweep on CloudLab", rows)

    # Runtimes grow monotonically as the cap drops.
    medians = [results[limit][1] for limit in LIMITS_W]
    assert all(b > a for a, b in zip(medians, medians[1:]))
    # Variability grows substantially at low budgets.
    assert results[150.0][0] > 1.4 * results[300.0][0]
    assert results[100.0][0] > results[300.0][0]

    benchmark(lambda: _sweep(cloudlab_cluster, 150.0, n_runs=2))


def test_fig22_admin_pinning_equivalence(benchmark, cloudlab_cluster,
                                         longhorn_sgemm):
    """Section VI-B: pinned CloudLab variability matches the big clusters."""
    from repro.core import metric_boxstats
    from repro.telemetry.sample import METRIC_PERFORMANCE

    def compare():
        pinned = boxvar(_sweep(cloudlab_cluster, 300.0, n_runs=6))
        unpinned = metric_boxstats(
            longhorn_sgemm, METRIC_PERFORMANCE, per_gpu_median=False
        ).variation
        return pinned, unpinned

    pinned, unpinned = benchmark(compare)
    emit(None, "Sec. VI-B: pinning does not remove variability",
         [("CloudLab @300 W (pinned)", "~9%", pct(pinned)),
          ("Longhorn (unpinned)", "9%", pct(unpinned))])
    # Same order of magnitude: pinning clocks/power does not remove it.
    assert 0.3 < pinned / unpinned < 3.0
