"""Scheduling-policy shoot-out on the defect-injected Longhorn fleet.

The closing claim of Section VII: a batch scheduler that knows the fleet's
per-node variability hands out fewer slow GPUs — and the users feel it in
the JCT tail.  This benchmark runs the *same* seeded job trace (Poisson
arrivals, 1/2/4/8-GPU gangs over the five paper applications) through the
discrete-event queue engine under three policies:

* ``fifo`` — the naive random placement the paper's impact numbers assume;
* ``variability-aware`` — node ranking from a characterization campaign;
* ``health-aware`` — node ranking from the online health detector.

Because job intrinsic draws are keyed by job id, the runs differ only in
where jobs land: the deltas below are the placement effect, isolated.
Asserted: variability-aware placement beats naive fifo on both the p95 JCT
and the slow-assignment rate at comparable utilization.  Results land in
``BENCH_sched.json`` for cross-commit tracking; timing assertions (wall
clock only — the quality assertions are deterministic and always run) are
skipped under ``REPRO_BENCH_CHECK_ONLY=1``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from _bench_util import emit, pct
from repro import api

#: Skip wall-clock assertions — for CI smoke runs on noisy shared runners.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

OUTPUT_PATH = pathlib.Path("BENCH_sched.json")

#: Longhorn carries forced slow-GPU defects (cabinet c002) at every seed —
#: the machine the paper's user-impact numbers come from.
SEED = 2022
SCALE = 0.5

TRACE = dict(n_jobs=120, arrival_rate_per_hour=900.0, seed=SEED)
PROFILE_DAYS = 2

POLICIES = ("fifo", "variability-aware", "health-aware")

#: Generous ceiling for the full three-policy comparison (profiling
#: campaigns included); only guards against gross regressions.
MAX_WALL_CLOCK_S = 300.0


def _run_policies():
    cluster = api.load_preset("longhorn", seed=SEED, scale=SCALE)
    trace = api.TraceConfig(**TRACE)
    results = {}
    for policy in POLICIES:
        results[policy] = api.schedule(
            cluster=cluster,
            policy=policy,
            trace=trace,
            profile_config=api.CampaignConfig(days=PROFILE_DAYS),
        )
    return results


def test_scheduling_policies():
    started = time.perf_counter()
    results = _run_policies()
    elapsed = time.perf_counter() - started

    metrics = {name: r.report.metrics for name, r in results.items()}
    naive = metrics["fifo"]
    aware = metrics["variability-aware"]

    # The tentpole claim: variability-aware placement cuts both the JCT
    # tail and the slow-assignment rate versus the naive baseline...
    assert aware["jct_p95_s"] < naive["jct_p95_s"], (naive, aware)
    assert aware["slow_assignment_rate"] < naive["slow_assignment_rate"], (
        naive, aware,
    )
    # ...at comparable utilization (same offered load, same machine — the
    # difference is bounded by the runtimes saved, not by idling).
    assert aware["utilization"] >= 0.7 * naive["utilization"], (naive, aware)

    # Determinism spot-check: the whole comparison is a pure function of
    # (seed, trace, policy), so a repeated naive run is byte-identical.
    cluster = api.load_preset("longhorn", seed=SEED, scale=SCALE)
    again = api.schedule(
        cluster=cluster, policy="fifo", trace=api.TraceConfig(**TRACE)
    )
    assert again.report.to_json() == results["fifo"].report.to_json()

    if not CHECK_ONLY:
        assert elapsed < MAX_WALL_CLOCK_S, f"took {elapsed:.0f}s"

    rows = [
        ("slow-assignment rate (fifo)", "18% (1-GPU)",
         pct(naive["slow_assignment_rate"])),
        ("slow-assignment rate (variability-aware)", "~0%",
         pct(aware["slow_assignment_rate"])),
        ("p95 JCT fifo -> variability-aware", "lower",
         f"{naive['jct_p95_s']:.0f}s -> {aware['jct_p95_s']:.0f}s"),
        ("p95 JCT fifo -> health-aware", "(reported)",
         f"{naive['jct_p95_s']:.0f}s -> "
         f"{metrics['health-aware']['jct_p95_s']:.0f}s"),
        ("utilization fifo vs variability-aware", "comparable",
         f"{naive['utilization']:.3f} vs {aware['utilization']:.3f}"),
    ]
    emit(None, "Section VII: scheduling policies on a variable fleet", rows)

    OUTPUT_PATH.write_text(
        json.dumps(
            {
                "cluster": "longhorn",
                "seed": SEED,
                "scale": SCALE,
                "trace": TRACE,
                "profile_days": PROFILE_DAYS,
                "wall_clock_s": round(elapsed, 2),
                "policies": {
                    name: {
                        "jct_p50_s": m["jct_p50_s"],
                        "jct_p95_s": m["jct_p95_s"],
                        "wait_p50_s": m["wait_p50_s"],
                        "wait_p95_s": m["wait_p95_s"],
                        "makespan_s": m["makespan_s"],
                        "utilization": m["utilization"],
                        "slow_assignment_rate": m["slow_assignment_rate"],
                        "straggler_slowdown_p95":
                            m["straggler_slowdown_p95"],
                        "energy_total_j": m["energy_total_j"],
                    }
                    for name, m in metrics.items()
                },
            },
            indent=2,
            sort_keys=True,
        )
        + "\n",
        encoding="utf-8",
    )
    print(f"\nresults written to {OUTPUT_PATH}")


if __name__ == "__main__":
    test_scheduling_policies()
