"""Scheduling-policy shoot-out on the defect-injected Longhorn fleet.

The closing claim of Section VII: a batch scheduler that knows the fleet's
per-node variability hands out fewer slow GPUs — and the users feel it in
the JCT tail.  This benchmark runs the *same* seeded job trace (Poisson
arrivals, 1/2/4/8-GPU gangs over the five paper applications) through the
discrete-event queue engine under three policies:

* ``fifo`` — the naive random placement the paper's impact numbers assume;
* ``variability-aware`` — node ranking from a characterization campaign;
* ``health-aware`` — node ranking from the online health detector.

Because job intrinsic draws are keyed by job id, the runs differ only in
where jobs land: the deltas below are the placement effect, isolated.
Asserted: variability-aware placement beats naive fifo on both the p95 JCT
and the slow-assignment rate at comparable utilization.

``test_indexed_engine_speedup`` is the scheduler hot-path benchmark: a
week-long, 10^5-job diurnal trace on the **full Summit** preset (4,608
nodes / 27,648 GPUs), sized so the daily peak slightly overruns the gang
mix's packing capacity and a real queue forms.  The same trace runs
through the indexed engine and the pre-index reference loop; the event
logs must match byte for byte and the report digests must be identical,
and the indexed engine must be >=10x faster.  Results land in
``BENCH_sched.json`` for cross-commit tracking; timing assertions (wall
clock only — the equality and quality assertions are deterministic and
always run) are skipped under ``REPRO_BENCH_CHECK_ONLY=1``, which also
downscales the hot-path case to a quarter-Summit trace so CI finishes in
minutes.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time

import numpy as np
from _bench_util import emit, pct
from repro import api
from repro.obs.tracer import Tracer, activate
from repro.sched import (
    VariabilityAwarePolicy,
    build_scheduling_report,
    event_log_lines,
    run_schedule,
)
from repro.sim.job import reference_unit_times
from repro.workloads import get_workload

#: Skip wall-clock assertions — for CI smoke runs on noisy shared runners.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

OUTPUT_PATH = pathlib.Path("BENCH_sched.json")

#: Longhorn carries forced slow-GPU defects (cabinet c002) at every seed —
#: the machine the paper's user-impact numbers come from.
SEED = 2022
SCALE = 0.5

TRACE = dict(n_jobs=120, arrival_rate_per_hour=900.0, seed=SEED)
PROFILE_DAYS = 2

POLICIES = ("fifo", "variability-aware", "health-aware")

#: Generous ceiling for the full three-policy comparison (profiling
#: campaigns included); only guards against gross regressions.
MAX_WALL_CLOCK_S = 300.0

#: The hot-path case: a week of full Summit.  Gangs of 6 need a fully
#: free node and gangs of 12 span two, so the mix's packing capacity
#: sits near 79% utilization; the work-unit range puts the weekday base
#: load just under that and the diurnal peak slightly over it — the
#: queue builds through every afternoon and drains overnight, which is
#: exactly the regime where the reference loop's per-event queue rescans
#: go quadratic.
SUMMIT_JOBS = 100_000
SUMMIT_TRACE = dict(
    n_jobs=SUMMIT_JOBS,
    arrival_rate_per_hour=600.0,
    seed=SEED,
    gang_sizes=(1, 2, 6, 12),
    gang_weights=(0.35, 0.25, 0.25, 0.15),
    diurnal_amplitude=0.15,
    peak_hour=14.0,
    day_of_week_weights=(1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.4),
    work_units_range=(21_700, 65_200),
)

#: The headline floor: indexed engine vs the pre-index reference loop.
MIN_SPEEDUP = 10.0

#: CHECK_ONLY downscale: a quarter-Summit machine and trace keep every
#: equality assertion (bytes, digests) while the reference engine stays
#: CI-sized.  Arrival rate scales with the machine so the load regime —
#: and therefore the code paths exercised — is the same.
CHECK_SCALE = 0.25
CHECK_TRACE = dict(SUMMIT_TRACE, n_jobs=4_000, arrival_rate_per_hour=150.0)


def _merge_results(section: str, payload: dict) -> None:
    """Read-modify-write one section of ``BENCH_sched.json``."""
    doc = {}
    if OUTPUT_PATH.exists():
        try:
            doc = json.loads(OUTPUT_PATH.read_text(encoding="utf-8"))
        except json.JSONDecodeError:
            doc = {}
    doc[section] = payload
    OUTPUT_PATH.write_text(
        json.dumps(doc, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def _run_policies():
    cluster = api.load_preset("longhorn", seed=SEED, scale=SCALE)
    trace = api.TraceConfig(**TRACE)
    results = {}
    for policy in POLICIES:
        results[policy] = api.schedule(
            cluster=cluster,
            policy=policy,
            trace=trace,
            profile_config=api.CampaignConfig(days=PROFILE_DAYS),
        )
    return results


def test_scheduling_policies():
    started = time.perf_counter()
    results = _run_policies()
    elapsed = time.perf_counter() - started

    metrics = {name: r.report.metrics for name, r in results.items()}
    naive = metrics["fifo"]
    aware = metrics["variability-aware"]

    # The tentpole claim: variability-aware placement cuts both the JCT
    # tail and the slow-assignment rate versus the naive baseline...
    assert aware["jct_p95_s"] < naive["jct_p95_s"], (naive, aware)
    assert aware["slow_assignment_rate"] < naive["slow_assignment_rate"], (
        naive, aware,
    )
    # ...at comparable utilization (same offered load, same machine — the
    # difference is bounded by the runtimes saved, not by idling).
    assert aware["utilization"] >= 0.7 * naive["utilization"], (naive, aware)

    # Determinism spot-check: the whole comparison is a pure function of
    # (seed, trace, policy), so a repeated naive run is byte-identical.
    cluster = api.load_preset("longhorn", seed=SEED, scale=SCALE)
    again = api.schedule(
        cluster=cluster, policy="fifo", trace=api.TraceConfig(**TRACE)
    )
    assert again.report.to_json() == results["fifo"].report.to_json()

    if not CHECK_ONLY:
        assert elapsed < MAX_WALL_CLOCK_S, f"took {elapsed:.0f}s"

    rows = [
        ("slow-assignment rate (fifo)", "18% (1-GPU)",
         pct(naive["slow_assignment_rate"])),
        ("slow-assignment rate (variability-aware)", "~0%",
         pct(aware["slow_assignment_rate"])),
        ("p95 JCT fifo -> variability-aware", "lower",
         f"{naive['jct_p95_s']:.0f}s -> {aware['jct_p95_s']:.0f}s"),
        ("p95 JCT fifo -> health-aware", "(reported)",
         f"{naive['jct_p95_s']:.0f}s -> "
         f"{metrics['health-aware']['jct_p95_s']:.0f}s"),
        ("utilization fifo vs variability-aware", "comparable",
         f"{naive['utilization']:.3f} vs {aware['utilization']:.3f}"),
    ]
    emit(None, "Section VII: scheduling policies on a variable fleet", rows)

    _merge_results(
        "policy_comparison",
        {
            "cluster": "longhorn",
            "seed": SEED,
            "scale": SCALE,
            "trace": TRACE,
            "profile_days": PROFILE_DAYS,
            "wall_clock_s": round(elapsed, 2),
            "policies": {
                name: {
                    "jct_p50_s": m["jct_p50_s"],
                    "jct_p95_s": m["jct_p95_s"],
                    "wait_p50_s": m["wait_p50_s"],
                    "wait_p95_s": m["wait_p95_s"],
                    "makespan_s": m["makespan_s"],
                    "utilization": m["utilization"],
                    "slow_assignment_rate": m["slow_assignment_rate"],
                    "straggler_slowdown_p95":
                        m["straggler_slowdown_p95"],
                    "energy_total_j": m["energy_total_j"],
                }
                for name, m in metrics.items()
            },
        },
    )
    print(f"\nresults written to {OUTPUT_PATH}")


def _node_variability_scores(cluster):
    """Worst-member SGEMM unit time per node over the fleet median.

    The cheap stand-in for a full characterization campaign: the hot-path
    case benchmarks the *engine*, so the policy inputs only need to be a
    realistic static ranking, not the campaign-derived one.
    """
    unit_times = reference_unit_times(cluster, get_workload("sgemm"))
    worst = np.zeros(cluster.topology.n_nodes)
    np.maximum.at(worst, cluster.topology.node_of_gpu, unit_times)
    return worst / np.median(unit_times)


def _timed_run(cluster, jobs, policy, engine):
    tracer = Tracer()
    started = time.perf_counter()
    with activate(tracer):
        outcome = run_schedule(cluster, jobs, policy, engine=engine)
    elapsed = time.perf_counter() - started
    return outcome, elapsed, dict(tracer.counters)


def test_indexed_engine_speedup():
    scale = CHECK_SCALE if CHECK_ONLY else 1.0
    trace = CHECK_TRACE if CHECK_ONLY else SUMMIT_TRACE

    cluster = api.load_preset("summit", seed=SEED, scale=scale)
    jobs = api.generate_trace(api.TraceConfig(**trace))
    policy = VariabilityAwarePolicy(
        _node_variability_scores(cluster), backfill=True
    )

    indexed, indexed_s, counters = _timed_run(
        cluster, jobs, policy, "indexed"
    )
    reference, reference_s, ref_counters = _timed_run(
        cluster, jobs, policy, "reference"
    )
    speedup = reference_s / indexed_s

    # Equality first — the speedup is worthless if the answers differ.
    # Event logs byte for byte, then the schema-validated reports.
    indexed_log = "\n".join(event_log_lines(indexed.events)) + "\n"
    reference_log = "\n".join(event_log_lines(reference.events)) + "\n"
    assert indexed_log == reference_log, "engines diverged: event logs"
    digests = []
    for outcome in (indexed, reference):
        report = build_scheduling_report(
            "summit", outcome, policy.describe(), cluster.topology.n_gpus,
            trace_seed=SEED,
        )
        digests.append(hashlib.sha256(report.to_json().encode()).hexdigest())
    assert digests[0] == digests[1], "engines diverged: report digests"

    # The trace must actually congest the machine — an empty queue would
    # benchmark nothing but the pricing path.  (The CHECK_ONLY downscale
    # is too short to leave its ramp-up, so the floor applies only to the
    # full week-long case.)
    waits = np.asarray([r.wait_time_s for r in indexed.records])
    if not CHECK_ONLY:
        assert (waits > 0.0).mean() > 0.1, "trace failed to form a queue"
    # Near-linearity: the indexed engine's placement probes stay within a
    # small constant of one per job no matter how deep the queue gets.
    assert counters["sched.dispatch_attempts"] <= 4 * len(jobs)

    if not CHECK_ONLY:
        assert speedup >= MIN_SPEEDUP, (
            f"indexed {indexed_s:.1f}s vs reference {reference_s:.1f}s "
            f"= {speedup:.1f}x (floor {MIN_SPEEDUP}x)"
        )

    makespan_days = indexed.makespan_s / 86400.0
    rows = [
        ("machine", "full Summit" if not CHECK_ONLY else "quarter Summit",
         f"{cluster.topology.n_nodes} nodes / {cluster.topology.n_gpus} GPUs"),
        ("trace", "~1 week", f"{len(jobs)} jobs / {makespan_days:.1f} days"),
        ("indexed engine", "(wall clock)", f"{indexed_s:.1f}s"),
        ("reference engine", "(wall clock)", f"{reference_s:.1f}s"),
        ("speedup", f">={MIN_SPEEDUP:.0f}x", f"{speedup:.1f}x"),
        ("event logs", "byte-identical", "byte-identical"),
        ("dispatch attempts/job", "<=4",
         f"{counters['sched.dispatch_attempts'] / len(jobs):.2f} "
         f"(reference: "
         f"{ref_counters['sched.dispatch_attempts'] / len(jobs):.1f})"),
    ]
    emit(None, "Scheduler hot path: indexed vs reference engine", rows)

    _merge_results(
        "summit_hot_path",
        {
            "cluster": "summit",
            "seed": SEED,
            "scale": scale,
            "check_only": CHECK_ONLY,
            "trace": {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in trace.items()
            },
            "makespan_days": round(makespan_days, 2),
            "utilization": round(
                float(
                    sum(r.runtime_s * r.n_gpus for r in indexed.records)
                    / (indexed.makespan_s * cluster.topology.n_gpus)
                ),
                4,
            ),
            "wait_frac_positive": round(float((waits > 0.0).mean()), 4),
            "indexed_wall_clock_s": round(indexed_s, 2),
            "reference_wall_clock_s": round(reference_s, 2),
            "speedup": round(speedup, 2),
            "report_digest": digests[0],
            "dispatch_attempts": {
                "indexed": counters["sched.dispatch_attempts"],
                "reference": ref_counters["sched.dispatch_attempts"],
            },
            "price_batches": counters["sched.price_batches"],
        },
    )
    print(f"\nresults written to {OUTPUT_PATH}")


if __name__ == "__main__":
    test_scheduling_policies()
    test_indexed_engine_speedup()
