"""Fig. 3: Longhorn SGEMM scatter-plot correlations.

Paper: perf-temperature weakly positive (rho = 0.46), power-performance
weakly negative (-0.35), performance-frequency strongly negative (-0.97),
power-temperature uncorrelated (-0.1).
"""

from _bench_util import emit
from repro.core.correlation import paper_correlation_pairs

PAPER_RHO = {
    "perf_vs_temperature": 0.46,
    "perf_vs_power": -0.35,
    "perf_vs_frequency": -0.97,
    "power_vs_temperature": -0.10,
}


def test_fig03_correlations(benchmark, longhorn_sgemm):
    pairs = benchmark(paper_correlation_pairs, longhorn_sgemm)

    rows = [
        (name, f"{PAPER_RHO[name]:+.2f}", f"{pairs[name].rho:+.2f}")
        for name in PAPER_RHO
    ]
    emit(benchmark, "Fig. 3: SGEMM correlations on Longhorn", rows)

    # Signs and strength classes must match the paper.
    assert pairs["perf_vs_frequency"].rho < -0.9          # strong negative
    assert pairs["perf_vs_power"].rho < -0.1              # negative
    assert pairs["perf_vs_temperature"].rho > 0.05        # weak positive
    assert abs(pairs["power_vs_temperature"].rho) < 0.45  # near zero


def test_fig03_same_temperature_wide_performance(benchmark, longhorn_sgemm):
    """Paper: GPUs at the same temperature differ by up to 200 ms (10%)."""
    import numpy as np
    from repro.telemetry.sample import METRIC_PERFORMANCE, METRIC_TEMPERATURE

    def spread_at_median_temperature():
        temp = longhorn_sgemm[METRIC_TEMPERATURE]
        perf = longhorn_sgemm[METRIC_PERFORMANCE]
        t_med = np.median(temp)
        band = np.abs(temp - t_med) <= 1.0
        return float(np.ptp(perf[band]) / np.median(perf[band]))

    spread = benchmark(spread_at_median_temperature)
    emit(None, "Fig. 3a: perf spread at fixed temperature",
         [("spread among same-temp GPUs", "~10%", f"{spread:.0%}")])
    assert spread > 0.04
