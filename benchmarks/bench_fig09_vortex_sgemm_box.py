"""Fig. 9: Vortex (water-cooled V100) SGEMM box plots.

Paper: 9% performance variation, frequencies 1330-1442 MHz (~100 MHz span),
a narrow 10 degC Q1-Q3 temperature spread (median 46 degC), and *all* GPUs
within 5 W of the 300 W limit — no low-power outliers.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig09_vortex_fleet_stats(benchmark, vortex_sgemm):
    perf = metric_boxstats(vortex_sgemm, METRIC_PERFORMANCE)
    freq = metric_boxstats(vortex_sgemm, METRIC_FREQUENCY)
    temp = metric_boxstats(vortex_sgemm, METRIC_TEMPERATURE)

    rows = [
        ("performance variation", "9%", pct(perf.variation)),
        ("frequency band", "1330-1442 MHz",
         f"{freq.whisker_lo:.0f}-{freq.whisker_hi:.0f} MHz"),
        ("temperature median", "46 C", f"{temp.median:.0f} C"),
        ("temperature Q1-Q3", "10 C", f"{temp.iqr:.0f} C"),
        ("true power within 5 W of TDP", "yes",
         f"min {vortex_sgemm['true_power_w'].min():.0f} W"),
    ]
    emit(benchmark, "Fig. 9: SGEMM on Vortex", rows)

    assert 0.04 < perf.variation < 0.14
    assert freq.whisker_lo > 1290.0
    assert 40.0 < temp.median < 52.0
    assert temp.iqr < 12.0
    assert vortex_sgemm["true_power_w"].min() > 290.0

    benchmark(lambda: metric_boxstats(vortex_sgemm, METRIC_PERFORMANCE))


def test_fig09_coverage_is_partial(benchmark, vortex_sgemm, vortex_cluster):
    """The paper reached 184 of 216 GPUs; each campaign day covers a subset."""
    def per_day_observed():
        counts = [
            int(np.unique(sub["gpu_index"]).shape[0])
            for _, sub in vortex_sgemm.groupby("day")
        ]
        return max(counts)

    n = benchmark(per_day_observed)
    emit(None, "Fig. 9: observed GPUs",
         [("GPUs measured per day", "184 of 216",
           f"{n} of {vortex_cluster.n_gpus}")])
    assert n < vortex_cluster.n_gpus
    assert n > 0.6 * vortex_cluster.n_gpus
