"""Parallel campaign executor: wall-clock speedup and exactness.

The acceptance bar for the sharded executor (docs/PARALLELISM.md): at
``workers=4`` a Longhorn-scale campaign must finish at least 2x faster
than the serial path *while producing the bit-identical dataset*.  The
speedup assertion needs real cores, so it skips on smaller machines; the
exactness assertion runs everywhere.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _bench_util import emit
from repro.sim import CampaignConfig, run_campaign
from repro.telemetry import CampaignProgress
from repro.workloads import sgemm

#: Long enough that the (day, run) grid dwarfs pool start-up: 112 runs
#: across the full 416-GPU Longhorn — a four-month campaign's worth of
#: measurements, the regime where parallel execution actually matters.
SPEEDUP_CONFIG = CampaignConfig(days=28, runs_per_day=4)

MIN_SPEEDUP = 2.0
WORKERS = 4


def _timed_campaign(cluster, workers):
    progress = CampaignProgress()
    started = time.perf_counter()
    dataset = run_campaign(
        cluster, sgemm(), SPEEDUP_CONFIG, workers=workers, progress=progress
    )
    return dataset, time.perf_counter() - started, progress


@pytest.mark.skipif(
    (os.cpu_count() or 1) < WORKERS,
    reason=f"speedup demonstration needs >= {WORKERS} cores",
)
def test_parallel_speedup_longhorn(benchmark, longhorn_cluster):
    serial_ds, serial_s, _ = _timed_campaign(longhorn_cluster, workers=None)
    parallel_ds, parallel_s, progress = _timed_campaign(
        longhorn_cluster, workers=WORKERS
    )
    speedup = serial_s / parallel_s

    emit(benchmark, "Parallel campaign executor (Longhorn, 28d x 4 runs)", [
        ("serial wall clock", "-", f"{serial_s:.2f} s"),
        ("workers=4 wall clock", "-", f"{parallel_s:.2f} s"),
        ("speedup", f">= {MIN_SPEEDUP:.0f}x", f"{speedup:.2f}x"),
        ("parallel efficiency", "-",
         f"{progress.shard_seconds / (WORKERS * parallel_s):.0%}"),
    ])

    for name in serial_ds.column_names:
        assert np.array_equal(serial_ds[name], parallel_ds[name]), name
    assert speedup >= MIN_SPEEDUP

    benchmark(lambda: None)  # timing already captured above


def test_parallel_exactness_any_machine(benchmark, longhorn_cluster):
    """The equivalence half of the bar, runnable on any core count."""
    config = CampaignConfig(days=3, runs_per_day=2)
    serial = run_campaign(longhorn_cluster, sgemm(), config)
    parallel = benchmark(
        run_campaign, longhorn_cluster, sgemm(), config, workers=WORKERS
    )
    assert serial.column_names == parallel.column_names
    for name in serial.column_names:
        assert np.array_equal(serial[name], parallel[name]), name
