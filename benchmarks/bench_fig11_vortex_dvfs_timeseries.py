"""Fig. 11: frequency/power time series of two Vortex GPUs under SGEMM.

Paper: a 10 s slice shows kernels launching, frequency rising with power,
DVFS clamping as power crosses 300 W, and the two GPUs settling at very
different clocks (median 1327 vs 1440 MHz) despite equal temperature and
power — an 8% performance difference driven purely by power management.
"""

import numpy as np

from _bench_util import emit
from repro.core import metric_boxstats
from repro.sim import simulate_timeseries
from repro.sim.engine import EngineConfig
from repro.telemetry.sample import METRIC_PERFORMANCE
from repro.workloads import sgemm


def _fast_slow_pair(dataset):
    """Indices of the fastest and slowest healthy GPUs in a campaign."""
    med = dataset.per_gpu_median(METRIC_PERFORMANCE)
    values = med[METRIC_PERFORMANCE]
    order = np.argsort(values)
    idx = med["gpu_index"]
    return int(idx[order[0]]), int(idx[order[-1]])


def test_fig11_dvfs_timeseries(benchmark, vortex_cluster, vortex_sgemm):
    fast, slow = _fast_slow_pair(vortex_sgemm)

    def trace_pair():
        return simulate_timeseries(
            vortex_cluster,
            sgemm(),
            np.array([fast, slow]),
            duration_s=20.0,
            sample_interval_s=0.1,
            engine_config=EngineConfig(thermal_time_scale=12.0),
        )

    traces = benchmark.pedantic(trace_pair, rounds=1, iterations=1)
    fast_trace, slow_trace = traces

    settled_fast = float(np.median(fast_trace.frequency_mhz[-40:]))
    settled_slow = float(np.median(slow_trace.frequency_mhz[-40:]))
    rows = [
        ("fast GPU settled frequency", "~1440 MHz", f"{settled_fast:.0f} MHz"),
        ("slow GPU settled frequency", "~1327 MHz", f"{settled_slow:.0f} MHz"),
        ("both at the power cap", "~300 W",
         f"{np.median(fast_trace.power_w[-40:]):.0f} / "
         f"{np.median(slow_trace.power_w[-40:]):.0f} W"),
        ("kernel markers in window", ">=2",
         str(fast_trace.kernel_starts_s.shape[0])),
    ]
    emit(None, "Fig. 11: DVFS time series on Vortex", rows)

    # The two GPUs settle at clearly different clocks, both below boost.
    assert settled_fast > settled_slow + 20.0
    assert settled_fast < 1530.0
    # Both are pinned at the power limit (within sensor noise).
    assert np.median(fast_trace.power_w[-40:]) > 290.0
    assert np.median(slow_trace.power_w[-40:]) > 290.0
    # The launch transient is visible: early samples reach higher clocks.
    assert slow_trace.frequency_mhz[:20].max() > settled_slow + 30.0

    print("\nslow GPU frequency trace:")
    print(slow_trace.ascii_plot("frequency_mhz", width=70, height=10))
