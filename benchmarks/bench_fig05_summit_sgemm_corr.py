"""Fig. 5: Summit SGEMM scatter correlations.

Paper: performance-frequency strongly negative (rho = -0.99);
performance-power essentially uncorrelated (-0.09); and a string of power
outliers below 290 W that all complete around 2510 ms.
"""

import numpy as np

from _bench_util import emit
from repro.core.correlation import paper_correlation_pairs
from repro.telemetry.sample import METRIC_PERFORMANCE, METRIC_POWER


def test_fig05_correlations(benchmark, summit_sgemm):
    pairs = benchmark(paper_correlation_pairs, summit_sgemm)
    rows = [
        ("perf_vs_frequency", "-0.99", f"{pairs['perf_vs_frequency'].rho:+.2f}"),
        ("perf_vs_power", "-0.09", f"{pairs['perf_vs_power'].rho:+.2f}"),
    ]
    emit(benchmark, "Fig. 5: SGEMM correlations on Summit", rows)

    assert pairs["perf_vs_frequency"].rho < -0.85
    # Power decouples on Summit: much weaker than Longhorn's -0.35.
    assert abs(pairs["perf_vs_power"].rho) < 0.45


def test_fig05_power_outlier_string(benchmark, summit_sgemm):
    """The sub-290 W outliers cluster at a common slow runtime (~2510 ms)."""
    def outlier_runtime_band():
        power = summit_sgemm[METRIC_POWER]
        perf = summit_sgemm[METRIC_PERFORMANCE]
        low = power < 290.0
        return (
            int(low.sum()),
            float(np.median(perf[low])),
            float(np.median(perf[~low])),
        )

    n_low, t_low, t_bulk = benchmark(outlier_runtime_band)
    rows = [
        ("sub-290 W observations", ">0", str(n_low)),
        ("their median runtime vs fleet", "~2510 vs ~2350 ms",
         f"{t_low:.0f} vs {t_bulk:.0f} ms"),
    ]
    emit(None, "Fig. 5b: the power-outlier string", rows)
    assert n_low > 0
    assert t_low > t_bulk * 1.02  # power-capped GPUs are consistently slower
