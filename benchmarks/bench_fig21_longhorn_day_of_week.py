"""Fig. 21: Longhorn day-of-week consistency.

Paper: consistent performance variability on every day of the week (around
3% per-day in their per-day plots), with occasional extra outliers on
specific days.  The phenomenon persists regardless of when you measure.
"""

import numpy as np

from _bench_util import emit, pct, run_campaign
from repro.core.daily import day_of_week_stats, weekday_consistency
from repro.sim import CampaignConfig
from repro.workloads import sgemm


def test_fig21_longhorn_weekday_stats(benchmark, longhorn_cluster):
    dataset = run_campaign(
        longhorn_cluster, sgemm(),
        CampaignConfig(days=14, runs_per_day=1, coverage=0.6),
    )
    stats = benchmark(day_of_week_stats, dataset)
    assert len(stats) == 7

    rows = [
        (f"{day} perf variation / perf outliers", "consistent",
         f"{pct(s.performance.variation)} / {s.n_performance_outliers}")
        for day, s in stats.items()
    ]
    emit(None, "Fig. 21: Longhorn by day of week", rows)

    summary = weekday_consistency(stats)
    emit(None, "Takeaway 9 on Longhorn",
         [("daily median drift", "~0", pct(summary["median_drift"])),
          ("daily variation spread", "small",
           pct(summary["variation_spread"]))])

    assert summary["median_drift"] < 0.015
    assert summary["variation_spread"] < 0.08
    variations = [s.performance.variation for s in stats.values()]
    assert min(variations) > 0.03
