"""Real host-CPU microkernels through the paper's analysis pipeline.

The artifact-equivalent path: genuinely *measured* (not simulated) GEMM,
SpMV, and STREAM timings flow through the same dataset and statistics code
as the cluster campaigns.  Also the one place pytest-benchmark times real
numerical work.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.hostbench import (
    HostBenchConfig,
    gemm_kernel,
    run_host_benchmark,
    spmv_kernel,
    stream_kernel,
)
from repro.telemetry.sample import METRIC_PERFORMANCE


def test_hostbench_gemm(benchmark):
    kernel = gemm_kernel(n=256)
    benchmark(kernel.run)

    dataset = run_host_benchmark(
        kernel, HostBenchConfig(blocks=6, reps_per_block=7)
    )
    stats = metric_boxstats(dataset, METRIC_PERFORMANCE)
    gflops = float(np.median(dataset["achieved_gflops"]))
    emit(None, "Host GEMM through the pipeline",
         [("median kernel duration", "real", f"{stats.median:.2f} ms"),
          ("achieved throughput", "real", f"{gflops:.1f} GFLOP/s"),
          ("block-to-block variation", "measured", pct(stats.variation))])
    assert stats.median > 0
    assert gflops > 0.1


def test_hostbench_spmv(benchmark):
    kernel = spmv_kernel(n=30_000)
    benchmark(kernel.run)

    dataset = run_host_benchmark(
        kernel, HostBenchConfig(blocks=5, reps_per_block=6)
    )
    gbs = float(np.median(dataset["achieved_gbs"]))
    emit(None, "Host SpMV through the pipeline",
         [("achieved traffic", "real", f"{gbs:.2f} GB/s")])
    assert gbs > 0.01


def test_hostbench_stream(benchmark):
    kernel = stream_kernel(n=2_000_000)
    benchmark(kernel.run)

    dataset = run_host_benchmark(
        kernel, HostBenchConfig(blocks=5, reps_per_block=6)
    )
    gbs = float(np.median(dataset["achieved_gbs"]))
    emit(None, "Host STREAM through the pipeline",
         [("achieved bandwidth", "real", f"{gbs:.1f} GB/s")])
    # Streaming beats random gathers on any machine.
    assert gbs > 1.0
