"""Fig. 23 (Appendix B-A): Summit row H, per-column breakdown.

Paper: most of row H's columns are clean; the outliers concentrate in a
handful of columns (13, 14, 28, 33, 36, 50), with columns 33/36 showing
outliers across all four metrics.
"""

import numpy as np

from _bench_util import emit, grouped_box_art
from repro.core import grouped_boxstats, metric_boxstats
from repro.telemetry.sample import METRIC_PERFORMANCE, METRIC_POWER


def _row_h(summit_sgemm):
    return summit_sgemm.where(row="h")


def test_fig23_rowh_column_breakdown(benchmark, summit_sgemm):
    row_h = _row_h(summit_sgemm)
    grouped = benchmark(
        grouped_boxstats, row_h, METRIC_PERFORMANCE, "column"
    )
    assert len(grouped) == 36
    print("\nFig. 23 (row H kernel duration by column, first 12):")
    print(grouped_box_art(grouped))


def test_fig23_outliers_concentrate_in_few_columns(benchmark, summit_sgemm):
    row_h = _row_h(summit_sgemm)

    def outlier_columns():
        # The paper's Fig. 24 caption uses "at least one reported power
        # level < 290 W" as the outlier criterion for this population.
        power = row_h[METRIC_POWER]
        cols = row_h["column"]
        mask = power < 290.0
        cols_with, counts = np.unique(cols[mask], return_counts=True)
        return cols_with, counts

    cols_with, counts = benchmark(outlier_columns)
    total_cols = 36
    rows = [
        ("columns with power outliers", "6-ish of 29",
         f"{cols_with.shape[0]} of {total_cols}"),
        ("busiest columns", "13,14,28,33,36,50",
         ",".join(str(c) for c in cols_with[np.argsort(counts)[::-1][:6]])),
    ]
    emit(None, "Fig. 23: row-H outlier concentration", rows)

    # Concentration: far fewer columns carry outliers than exist.
    assert 0 < cols_with.shape[0] <= total_cols // 2
    # Column 36 (the forced power-delivery cluster) is among them.
    assert 36 in set(int(c) for c in cols_with)
