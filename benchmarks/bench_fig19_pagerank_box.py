"""Fig. 19: PageRank (rajat30) on Longhorn.

Paper: like LAMMPS, frequency pins at boost and performance varies only
~1%, while median power still varies ~22% — Takeaway 8.  PageRank differs
from LAMMPS in mechanism: memory-*latency* bound (61% dependency stalls)
rather than bandwidth bound.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
)


def test_fig19_pagerank_stats(benchmark, longhorn_pagerank):
    perf = metric_boxstats(longhorn_pagerank, METRIC_PERFORMANCE)
    power = metric_boxstats(longhorn_pagerank, METRIC_POWER)
    freq = longhorn_pagerank[METRIC_FREQUENCY]

    rows = [
        ("performance variation", "1%", pct(perf.variation)),
        ("power variation", "22%", pct(power.variation)),
        ("frequency pinned at boost", "yes", pct((freq == 1530.0).mean())),
        ("kernel duration above 1 ms floor", ">1 ms",
         f"{perf.median:.1f} ms"),
    ]
    emit(benchmark, "Fig. 19: PageRank on Longhorn", rows)

    assert perf.variation < 0.03
    assert 0.08 < power.variation < 0.5
    assert (freq == 1530.0).mean() > 0.9
    assert perf.median > 1.0

    benchmark(lambda: metric_boxstats(longhorn_pagerank, METRIC_PERFORMANCE))


def test_fig19_real_spmv_substrate(benchmark):
    """The workload's parameters derive from a real pull-based PageRank."""
    import scipy.sparse as sp

    from repro.workloads.pagerank import (
        derive_spmv_phase,
        pagerank_pull,
        synthesize_circuit_graph,
    )

    adj = synthesize_circuit_graph(n_nodes=30_000)
    rank, iterations = benchmark.pedantic(
        pagerank_pull, args=(adj,), rounds=3, iterations=1
    )
    phase = derive_spmv_phase(adj)
    rows = [
        ("rank vector sums to 1", "1.0", f"{rank.sum():.6f}"),
        ("iterations to converge", "<200", str(iterations)),
        ("SpMV FLOPs per sweep", "2*nnz", f"{phase.compute_flop:.2e}"),
    ]
    emit(None, "Fig. 19: real SpMV PageRank substrate", rows)
    assert abs(rank.sum() - 1.0) < 1e-9
    assert iterations < 200
