"""Fig. 18: LAMMPS (REAXC) on Longhorn.

Paper: the memory-bound extreme — frequency saturates at 1530 MHz, median
power <= 180 W, performance varies by *less than 1%*, yet power still
varies ~20% and temperatures spread 8 degC (Q1-Q3).  Takeaway 7.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig18_lammps_stats(benchmark, longhorn_lammps):
    perf = metric_boxstats(longhorn_lammps, METRIC_PERFORMANCE)
    power = metric_boxstats(longhorn_lammps, METRIC_POWER)
    temp = metric_boxstats(longhorn_lammps, METRIC_TEMPERATURE)
    freq = longhorn_lammps[METRIC_FREQUENCY]

    rows = [
        ("performance variation", "<1%", pct(perf.variation)),
        ("power variation", "20%", pct(power.variation)),
        ("median power", "<=180 W", f"{power.median:.0f} W"),
        ("frequency pinned at boost", "yes", pct((freq == 1530.0).mean())),
        ("temperature Q1-Q3", "8 C", f"{temp.iqr:.0f} C"),
    ]
    emit(benchmark, "Fig. 18: LAMMPS on Longhorn", rows)

    assert perf.variation < 0.03
    assert 0.08 < power.variation < 0.45
    assert power.median < 200.0
    assert (freq == 1530.0).mean() > 0.9
    assert 2.0 < temp.iqr < 16.0

    benchmark(lambda: metric_boxstats(longhorn_lammps, METRIC_PERFORMANCE))


def test_fig18_memory_bound_insensitivity(
    benchmark, longhorn_lammps, longhorn_sgemm
):
    """Takeaway 7/8: memory-bound work can use bad GPUs nearly for free."""
    def variation_ratio():
        lammps = metric_boxstats(longhorn_lammps, METRIC_PERFORMANCE).variation
        sg = metric_boxstats(longhorn_sgemm, METRIC_PERFORMANCE).variation
        return sg / lammps

    ratio = benchmark(variation_ratio)
    emit(None, "Takeaway 7: SGEMM/LAMMPS variation ratio",
         [("compute vs memory-bound variability", ">=9x", f"{ratio:.1f}x")])
    assert ratio > 3.0
