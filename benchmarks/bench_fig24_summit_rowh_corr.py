"""Fig. 24 (Appendix B-A): correlations among row-H GPUs with power outliers.

Paper: within the sub-290 W population, performance and frequency remain
well correlated, but the power outliers complete around a common ~2510 ms
while drawing anywhere from 250-285 W — power decouples from runtime; and
their temperatures are unremarkable (water cooling does its job).
"""

import numpy as np

from _bench_util import emit
from repro.core.correlation import pearson
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig24_rowh_outlier_correlations(benchmark, summit_sgemm):
    row_h = summit_sgemm.where(row="h")

    def analyze():
        low_power = row_h.filter(row_h[METRIC_POWER] < 290.0)
        rho_pf = pearson(low_power[METRIC_PERFORMANCE],
                         low_power[METRIC_FREQUENCY])
        runtime_spread = float(np.ptp(low_power[METRIC_PERFORMANCE])
                               / np.median(low_power[METRIC_PERFORMANCE]))
        power_span = float(np.ptp(low_power[METRIC_POWER]))
        temp_max = float(low_power[METRIC_TEMPERATURE].max())
        return low_power.n_rows, rho_pf, runtime_spread, power_span, temp_max

    n, rho_pf, runtime_spread, power_span, temp_max = benchmark(analyze)
    rows = [
        ("sub-290 W row-H observations", ">0", str(n)),
        ("rho(perf, freq) among them", "correlated", f"{rho_pf:+.2f}"),
        ("their power span", "250-285 W (~35 W)", f"{power_span:.0f} W"),
        ("their temperatures", "unremarkable (<62 C)", f"max {temp_max:.0f} C"),
    ]
    emit(None, "Fig. 24: row-H power-outlier population", rows)

    assert n >= 5
    assert rho_pf < -0.5          # frequency still explains runtime
    assert power_span > 10.0      # wide power range at similar runtimes
    assert temp_max < 70.0        # no thermal signature (water cooling)
