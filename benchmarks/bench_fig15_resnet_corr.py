"""Fig. 15: multi-GPU ResNet-50 scatter plots on Longhorn.

Paper: iteration duration and frequency are almost uncorrelated (rho =
-0.01) because most runs sit at 1530 MHz; duration and power are negatively
correlated (-0.48); and the c002 stragglers form the paradoxical cloud —
max clocks, terrible iteration times, power as low as 76 W — because the
healthy GPUs on a sick node spend iterations busy-waiting.
"""

import numpy as np

from _bench_util import emit
from repro.core.correlation import paper_correlation_pairs
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
)


def test_fig15_correlations(benchmark, longhorn_resnet):
    pairs = benchmark(paper_correlation_pairs, longhorn_resnet)
    rows = [
        ("perf_vs_frequency", "-0.01",
         f"{pairs['perf_vs_frequency'].rho:+.2f}"),
        ("perf_vs_power", "-0.48", f"{pairs['perf_vs_power'].rho:+.2f}"),
    ]
    emit(benchmark, "Fig. 15: ResNet-50 correlations", rows)

    # Much weaker frequency coupling than SGEMM's -0.97, negative power
    # coupling — the paper's qualitative contrast.
    assert pairs["perf_vs_frequency"].rho > -0.75
    assert -0.8 < pairs["perf_vs_power"].rho < -0.15


def test_fig15_c002_straggler_cloud(benchmark, longhorn_resnet):
    """Max-frequency, slow, low-power points concentrated in c002."""
    def straggler_profile():
        perf = longhorn_resnet[METRIC_PERFORMANCE]
        freq = longhorn_resnet[METRIC_FREQUENCY]
        power = longhorn_resnet[METRIC_POWER]
        cab = longhorn_resnet["cabinet"]
        slow = perf > np.median(perf) * 1.3
        at_max = freq == 1530.0
        cloud = slow & at_max
        cabs, counts = np.unique(cab[cloud], return_counts=True)
        top_cabinet = str(cabs[np.argmax(counts)]) if cloud.any() else ""
        return (
            int(cloud.sum()),
            float(power[cloud].min()) if cloud.any() else np.nan,
            top_cabinet,
        )

    n_cloud, p_min, top_cabinet = benchmark(straggler_profile)
    rows = [
        ("slow runs at 1530 MHz", ">0", str(n_cloud)),
        ("their minimum power", "76 W", f"{p_min:.0f} W"),
        ("most common cabinet in cloud", "c002", top_cabinet),
    ]
    emit(None, "Fig. 15: the c002 straggler cloud", rows)

    # Some stragglers come from the sick c002 silicon, others from rare
    # pathological runs on arbitrary nodes — both clouds exist in Fig. 15.
    assert n_cloud > 0
    assert p_min < 160.0        # far below the healthy-median power
    assert top_cabinet == "c002"
