"""Ablation: reactive engine vs fixed-point steady-state solver.

The campaign pipeline uses the analytic steady-state solve (fast, fleet
scale); the time-series figures use the reactive engine (transients).  The
two must agree at equilibrium — this benchmark quantifies the agreement and
the speed gap that justifies having both.
"""

import numpy as np

from _bench_util import emit
from repro.sim.engine import Engine, EngineConfig
from repro.workloads import sgemm


def test_ablation_engine_agrees_with_steady(benchmark, cloudlab_cluster):
    fleet = cloudlab_cluster.fleet
    wl = sgemm()
    phase = wl.phases[0]

    def engine_settled():
        engine = Engine(fleet, wl, EngineConfig(thermal_time_scale=25.0))
        engine.run_for(40.0)
        return engine

    engine = benchmark.pedantic(engine_settled, rounds=1, iterations=1)
    op = fleet.controller.solve_steady(
        phase.activity, phase.dram_utilization,
        fleet.throughput_efficiency(), fleet.power_cap_w(),
    )

    f_gap = np.abs(engine.frequency_mhz() - op.f_effective_mhz)
    t_gap = np.abs(engine.state.temperature_c - op.temperature_c)
    rows = [
        ("max frequency disagreement", "<= few p-states",
         f"{f_gap.max():.1f} MHz"),
        ("max temperature disagreement", "< sensor noise x few",
         f"{t_gap.max():.1f} C"),
    ]
    emit(None, "Ablation: engine vs steady-state solver", rows)

    assert f_gap.max() <= 4 * 7.5
    assert t_gap.max() < 6.0


def test_ablation_steady_solver_speed(benchmark, cloudlab_cluster):
    """The fixed-point solve is what makes 27k-GPU campaigns feasible."""
    fleet = cloudlab_cluster.fleet
    wl = sgemm()
    phase = wl.phases[0]

    op = benchmark(
        fleet.controller.solve_steady,
        phase.activity,
        phase.dram_utilization,
        fleet.throughput_efficiency(),
        fleet.power_cap_w(),
    )
    assert op.n == fleet.n
