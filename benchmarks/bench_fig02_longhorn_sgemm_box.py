"""Fig. 2: Longhorn SGEMM box plots (frequency, duration, power, temperature).

Paper: 9% performance variation; GPUs configured at 1530 MHz actually run
1300-1440 MHz (11% frequency variation); wide temperature spread; some
power outliers near 250 W.
"""

import numpy as np

from _bench_util import emit, grouped_box_art, metric_summary_lines, pct
from repro.core import grouped_boxstats, metric_boxstats
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig02_longhorn_box_plots(benchmark, longhorn_sgemm):
    perf = metric_boxstats(longhorn_sgemm, METRIC_PERFORMANCE)
    freq = metric_boxstats(longhorn_sgemm, METRIC_FREQUENCY)
    power = metric_boxstats(longhorn_sgemm, METRIC_POWER)
    temp = metric_boxstats(longhorn_sgemm, METRIC_TEMPERATURE)

    rows = [
        ("performance variation", "9%", pct(perf.variation)),
        ("frequency variation", "11%", pct(freq.variation)),
        ("frequency band (bulk)", "1300-1440 MHz",
         f"{freq.whisker_lo:.0f}-{freq.whisker_hi:.0f} MHz"),
        ("temperature median", "~66 C", f"{temp.median:.0f} C"),
        ("temperature whisker span", ">=25 C",
         f"{temp.range:.0f} C"),
        ("low power outliers", "~250 W",
         f"min {longhorn_sgemm[METRIC_POWER].min():.0f} W"),
        ("power median", "~297 W", f"{power.median:.0f} W"),
    ]
    emit(benchmark, "Fig. 2: SGEMM on Longhorn", rows)
    print(metric_summary_lines(longhorn_sgemm))

    assert 0.05 < perf.variation < 0.16
    assert 0.05 < freq.variation < 0.16
    assert 1280.0 <= freq.whisker_lo and freq.whisker_hi <= 1470.0
    assert 60.0 < temp.median < 75.0
    assert temp.range >= 20.0
    assert longhorn_sgemm[METRIC_POWER].min() < 280.0

    benchmark(lambda: metric_boxstats(longhorn_sgemm, METRIC_PERFORMANCE))


def test_fig02_per_cabinet_grouping(benchmark, longhorn_sgemm):
    """Fig. 2 colors points by cabinet; the grouped view must build."""
    grouped = benchmark(
        grouped_boxstats, longhorn_sgemm, METRIC_PERFORMANCE, "cabinet"
    )
    assert len(grouped) == 35  # 104 nodes / 3 per cabinet
    print("\nFig. 2b (performance by cabinet):")
    print(grouped_box_art(grouped))
