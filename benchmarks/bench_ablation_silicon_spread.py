"""Ablation: process (voltage-offset) spread vs fleet performance variation.

The silicon lottery is the model's primary variability mechanism: under a
TDP-capped compute load the fleet's performance variation should scale
roughly linearly with the V-f curve spread, and vanish as the spread goes
to zero.  This is the knob calibrated against the paper's 8-9%.
"""

import numpy as np

from _bench_util import boxvar, emit, pct
from repro.cluster.cluster import Cluster
from repro.cluster.cooling import WaterCooling
from repro.cluster.topology import cabinet_topology
from repro.gpu.defects import DefectConfig
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100
from repro.sim import simulate_run
from repro.workloads import sgemm

SIGMAS = (0.0, 0.005, 0.010, 0.020)


def _cluster(sigma_v):
    return Cluster(
        name=f"sigma-{sigma_v}",
        spec=V100,
        topology=cabinet_topology("ablation", 60, 4, 3),
        cooling=WaterCooling(node_sigma_c=0.0),
        silicon_config=SiliconConfig(
            voltage_offset_sigma=sigma_v,
            leakage_log_sigma=0.0,
            thermal_resistance_log_sigma=0.0,
            compute_efficiency_sigma=0.0,
        ),
        defect_config=DefectConfig.none(),
        run_noise_sigma=0.0,
        seed=7,
    )


def test_ablation_voltage_offset_sigma(benchmark):
    variations = {}
    for sigma in SIGMAS:
        run = simulate_run(_cluster(sigma), sgemm())
        variations[sigma] = boxvar(run.performance_ms)

    rows = [
        (f"sigma_v = {sigma:.3f}", "variation grows with sigma",
         pct(variations[sigma]))
        for sigma in SIGMAS
    ]
    emit(benchmark, "Ablation: process spread -> performance variation", rows)

    ordered = [variations[s] for s in SIGMAS]
    assert all(b > a for a, b in zip(ordered, ordered[1:]))
    # No spread, (almost) no variation: only ladder quantization remains.
    assert variations[0.0] < 0.01
    # The calibrated sigma reproduces the paper's 8-9% band.
    assert 0.05 < variations[0.010] < 0.13

    benchmark(lambda: simulate_run(_cluster(0.010), sgemm()))


def test_ablation_frequency_spread_tracks_voltage_spread(benchmark):
    """Settled-frequency dispersion is ~proportional to sigma_v."""
    def spread(sigma):
        run = simulate_run(_cluster(sigma), sgemm())
        return float(run.true_frequency_mhz.std())

    narrow = spread(0.005)
    wide = benchmark.pedantic(spread, args=(0.020,), rounds=1, iterations=1)
    emit(None, "Ablation: frequency dispersion",
         [("std(f) at sigma 0.005", "--", f"{narrow:.1f} MHz"),
          ("std(f) at sigma 0.020", "~4x larger", f"{wide:.1f} MHz")])
    assert 2.0 < wide / narrow < 7.0
