"""Ablation: how much of the tail is defects vs bulk process spread.

The paper's outliers (1.5x slow GPUs, 250 W power outliers) are distinct
pathologies, not the tail of the process distribution.  Removing the defect
population should eliminate the extreme outliers while leaving the bulk
variation (the 8-9%) intact.
"""

import numpy as np

from _bench_util import boxvar, emit, pct
from repro.cluster.cluster import Cluster
from repro.cluster.cooling import WaterCooling
from repro.cluster.topology import cabinet_topology
from repro.gpu.defects import DefectConfig
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100
from repro.sim import simulate_run
from repro.workloads import sgemm

DEFECTS_ON = DefectConfig(
    power_delivery_rate=0.01, sick_slow_rate=0.01, hot_runner_rate=0.01
)


def _cluster(defect_config):
    return Cluster(
        name="ablation-defects",
        spec=V100,
        topology=cabinet_topology("ablation", 80, 4, 3),
        cooling=WaterCooling(),
        silicon_config=SiliconConfig(),
        defect_config=defect_config,
        run_noise_sigma=0.001,
        seed=31,
    )


def test_ablation_defect_population(benchmark):
    with_defects = simulate_run(_cluster(DEFECTS_ON), sgemm())
    without = simulate_run(_cluster(DefectConfig.none()), sgemm())

    def worst(run):
        return float(run.performance_ms.max() / np.median(run.performance_ms))

    rows = [
        ("bulk variation (defects on)", "~8%",
         pct(boxvar(with_defects.performance_ms))),
        ("bulk variation (defects off)", "~8%",
         pct(boxvar(without.performance_ms))),
        ("worst GPU (defects on)", "~1.5x", f"{worst(with_defects):.2f}x"),
        ("worst GPU (defects off)", "~1.05x", f"{worst(without):.2f}x"),
        ("min power (defects on)", "~255 W",
         f"{with_defects.true_power_w.min():.0f} W"),
        ("min power (defects off)", "~297 W",
         f"{without.true_power_w.min():.0f} W"),
    ]
    emit(benchmark, "Ablation: defect population on/off", rows)

    # Bulk variation barely moves (outliers are excluded from it by
    # construction)...
    assert abs(boxvar(with_defects.performance_ms)
               - boxvar(without.performance_ms)) < 0.03
    # ...but the extreme tail and the power outliers are defect-driven.
    assert worst(with_defects) > 1.2
    assert worst(without) < 1.12
    assert with_defects.true_power_w.min() < 290.0
    assert without.true_power_w.min() > 290.0

    benchmark(lambda: simulate_run(_cluster(DEFECTS_ON), sgemm()))
