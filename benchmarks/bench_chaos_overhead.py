"""Chaos-injection hooks: the cost of the fault-plan lookup, on and off.

The chaos layer (docs/CHAOS.md) injects faults through two hook sites —
``Cluster.fleet_for_day`` and ``plan_shards`` both call
``active_fault_plan(cluster)`` — and makes the same promises the
tracer/timeline hooks do, measured the same way as
``bench_timeline_overhead.py``:

1. **Zero perturbation** — a campaign with a *dormant* plan attached
   (onset far past the last day) produces CSV text byte-identical to a
   campaign with no plan at all: the hook branches on
   ``plan.affects(day)`` and falls through to the exact unfaulted path.
   Asserted unconditionally.
2. **Unmeasurable overhead when disabled** — with no plan attached, each
   hook site is one ``getattr`` plus a ``None`` branch.  A wall-clock
   A/B cannot resolve that against scheduler noise, so this benchmark
   counts the hook executions in a real campaign (by wrapping each
   instrumented module's ``active_fault_plan`` reference), microbenches
   the per-call cost, and asserts the product stays under
   ``MAX_DISABLED_OVERHEAD`` of the campaign wall clock.

Timing assertions are skipped under ``REPRO_BENCH_CHECK_ONLY=1`` (CI
smoke on noisy shared runners); the equality assertions always run.
Results land in ``BENCH_chaos.json`` for cross-commit tracking.
"""

from __future__ import annotations

import json
import os
import pathlib
import time

from _bench_util import emit
from repro.chaos import FaultSchedule, Scenario, StuckPState, compile_plan
from repro.cluster import cluster as cluster_mod
from repro.cluster import longhorn
from repro.cluster.cluster import active_fault_plan
from repro.sim import CampaignConfig, run_campaign
from repro.sim import parallel as parallel_mod
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

#: Skip timing assertions (equality always asserts) — for CI smoke runs.
CHECK_ONLY = os.environ.get("REPRO_BENCH_CHECK_ONLY") == "1"

#: Ceiling for the disabled path: hook executions x per-call cost.
MAX_DISABLED_OVERHEAD = 0.02

#: Best-of count; the minimum of several runs strips scheduler noise.
REPEATS = 5

OUTPUT_PATH = pathlib.Path("BENCH_chaos.json")

CONFIG = CampaignConfig(days=10, runs_per_day=2)

#: Every module that calls ``active_fault_plan()`` at a hook site.
HOOK_MODULES = (cluster_mod, parallel_mod)


def _dormant_scenario() -> Scenario:
    """A real compiled plan whose schedule never activates in CONFIG."""
    return Scenario(
        name="dormant",
        description="onset far past the campaign; exercises only the hooks",
        faults=(
            StuckPState(
                FaultSchedule(onset_day=10_000),
                frequency_cap_frac=0.5,
                scope="node",
                index=0,
            ),
        ),
    )


def _timed_campaign(with_plan: bool = False):
    """One serial Longhorn campaign on a fresh cluster (cold fleet cache)."""
    cluster = longhorn(seed=2022)
    if with_plan:
        cluster.set_fault_plan(compile_plan(_dormant_scenario(), cluster))
    started = time.perf_counter()
    dataset = run_campaign(cluster, sgemm(), CONFIG, workers=1)
    return dataset, time.perf_counter() - started


def _count_hook_executions():
    """Run one plan-free campaign counting every active_fault_plan() call."""
    calls = 0

    def counting_active_fault_plan(cluster):
        nonlocal calls
        calls += 1
        return active_fault_plan(cluster)

    for module in HOOK_MODULES:
        assert module.active_fault_plan is active_fault_plan, module.__name__
        module.active_fault_plan = counting_active_fault_plan
    try:
        _timed_campaign()
    finally:
        for module in HOOK_MODULES:
            module.active_fault_plan = active_fault_plan
    return calls


def _per_call_cost(n=200_000):
    cluster = longhorn(seed=2022)
    started = time.perf_counter()
    for _ in range(n):
        active_fault_plan(cluster)
    return (time.perf_counter() - started) / n


def test_chaos_overhead():
    baseline_ds, baseline_s = None, float("inf")
    dormant_ds, dormant_s = None, float("inf")
    for _ in range(REPEATS):
        dataset, elapsed = _timed_campaign()
        baseline_ds, baseline_s = dataset, min(baseline_s, elapsed)
        dataset, elapsed = _timed_campaign(with_plan=True)
        dormant_ds, dormant_s = dataset, min(dormant_s, elapsed)

    # Guarantee 1: a dormant plan perturbs nothing — byte-identical CSV.
    assert dataset_to_csv_text(dormant_ds) == dataset_to_csv_text(baseline_ds)

    # Guarantee 2: the disabled path, measured directly.
    hook_calls = _count_hook_executions()
    assert hook_calls > 0, "no hook sites executed — instrumentation gone?"
    hook_cost_s = hook_calls * _per_call_cost()
    disabled_overhead = hook_cost_s / baseline_s

    dormant_overhead = dormant_s / baseline_s - 1.0
    emit(None, "Chaos injection hooks: serial Longhorn campaign (10d x 2)", [
        ("plan-free best-of-5", "-", f"{baseline_s * 1e3:.1f} ms"),
        ("disabled hook executions", "-", f"{hook_calls}"),
        ("disabled-path cost", f"< {MAX_DISABLED_OVERHEAD:.0%}",
         f"{disabled_overhead:.3%}"),
        ("dormant-plan best-of-5", "-", f"{dormant_s * 1e3:.1f} ms"),
        ("dormant-plan overhead", "-", f"{dormant_overhead:+.2%}"),
    ])

    existing = {}
    if OUTPUT_PATH.exists():
        existing = json.loads(OUTPUT_PATH.read_text())
    existing["campaign_serial_longhorn"] = {
        "days": CONFIG.days,
        "runs_per_day": CONFIG.runs_per_day,
        "plan_free_s": baseline_s,
        "dormant_plan_s": dormant_s,
        "hook_calls": hook_calls,
        "disabled_overhead": disabled_overhead,
        "dormant_overhead": dormant_overhead,
        "check_only": CHECK_ONLY,
    }
    OUTPUT_PATH.write_text(json.dumps(existing, indent=2) + "\n")

    if not CHECK_ONLY:
        assert disabled_overhead < MAX_DISABLED_OVERHEAD, (
            f"disabled hooks cost {disabled_overhead:.3%} of the campaign "
            f"(ceiling {MAX_DISABLED_OVERHEAD:.0%})"
        )


if __name__ == "__main__":
    test_chaos_overhead()
