"""Fig. 26 (Appendix B-B): Summit row H, column 36, per-node breakdown.

Paper: of the column's 16 nodes, a specific subset (~7) produce the
outliers while the rest are clean; nodes 10 and 11 dominate the frequency/
performance/power outliers; the *only* temperature outliers sit on node 2 —
which has no performance or power outliers at all.
"""

import numpy as np

from _bench_util import emit
from repro.core import node_outlier_counts
from repro.telemetry.sample import (
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig26_col36_node_breakdown(benchmark, summit_sgemm):
    col36 = summit_sgemm.where(row="h", column=36)
    assert col36.n_rows > 0

    counts = benchmark(node_outlier_counts, col36)

    n_nodes_total = np.unique(col36["node_label"]).shape[0]
    nodes_with = sorted(counts)
    rows = [
        ("nodes in the column", "16", str(n_nodes_total)),
        ("nodes with any outlier", "~7", str(len(nodes_with))),
        ("example outlier nodes", "n02, n10, n11 ...",
         ",".join(n.rsplit("-", 1)[-1] for n in nodes_with[:6])),
    ]
    emit(None, "Fig. 26: row H column 36 node breakdown", rows)

    assert n_nodes_total == 16
    assert 2 <= len(nodes_with) <= 12  # a subset, not everyone


def test_fig26_node2_temperature_only(benchmark, summit_sgemm):
    """Node 2's outliers are exclusively thermal (hot-runner TIM defect)."""
    col36 = summit_sgemm.where(row="h", column=36)

    def node2_profile():
        counts = node_outlier_counts(
            col36,
            metrics=(METRIC_PERFORMANCE, METRIC_POWER, METRIC_TEMPERATURE),
        )
        return counts.get("rowh-col36-n02", {})

    node2 = benchmark(node2_profile)
    emit(None, "Fig. 26: rowh-col36-n02",
         [("temperature outliers", ">=1",
           str(node2.get(METRIC_TEMPERATURE, 0))),
          ("performance outliers", "0",
           str(node2.get(METRIC_PERFORMANCE, 0)))])

    assert node2.get(METRIC_TEMPERATURE, 0) >= 1
    # Water cooling keeps the hot runner performing normally.
    assert node2.get(METRIC_PERFORMANCE, 0) <= 1
