"""Fig. 6: Corona (AMD MI60) SGEMM box plots.

Paper: 7% runtime variation; frequency shows much less variability than the
NVIDIA clusters (coarse DPM levels); power IQR ~2% and *no* GPU reaches the
300 W TDP; node group c115 is the single severe outlier at ~165 W, running
near the slowdown temperature.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import grouped_boxstats, metric_boxstats
from repro.gpu.specs import MI60
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)


def test_fig06_corona_fleet_stats(benchmark, corona_sgemm):
    bulk = corona_sgemm.filter(corona_sgemm["cabinet"] != "c115")
    perf = metric_boxstats(bulk, METRIC_PERFORMANCE)
    freq = metric_boxstats(bulk, METRIC_FREQUENCY)
    power = metric_boxstats(bulk, METRIC_POWER)
    temp = metric_boxstats(bulk, METRIC_TEMPERATURE)

    rows = [
        ("runtime variation", "7%", pct(perf.variation)),
        ("frequency variation (coarse ladder)", "small",
         pct(freq.variation)),
        ("power variation", "2%", pct(power.variation)),  # see EXPERIMENTS.md
        ("max power (never 300 W)", "<300 W",
         f"{corona_sgemm[METRIC_POWER].max():.0f} W"),
        ("temperature near slowdown", "<=99 C",
         f"max {temp.whisker_hi:.0f} C"),
    ]
    emit(benchmark, "Fig. 6: SGEMM on Corona", rows)

    assert 0.04 < perf.variation < 0.15
    assert power.variation < 0.12
    assert corona_sgemm["true_power_w"].max() < 300.0
    assert temp.whisker_hi <= 99.5

    benchmark(lambda: metric_boxstats(bulk, METRIC_PERFORMANCE))


def test_fig06_coarse_dpm_levels(benchmark, corona_sgemm):
    """Reported frequencies sit on the 8-level AMD ladder (Section IV-D)."""
    def distinct_levels():
        return np.unique(corona_sgemm[METRIC_FREQUENCY]).shape[0]

    n_levels = benchmark(distinct_levels)
    emit(None, "Fig. 6a: AMD frequency granularity",
         [("distinct reported frequencies", f"<= {MI60.n_pstates}",
           str(n_levels))])
    assert n_levels <= MI60.n_pstates


def test_fig06_c115_outlier(benchmark, corona_sgemm):
    """The c115 group: hot, slow, and ~165 W (Figs. 6-7)."""
    def c115_profile():
        c115 = corona_sgemm.where(cabinet="c115")
        rest = corona_sgemm.filter(corona_sgemm["cabinet"] != "c115")
        return (
            float(np.median(c115[METRIC_POWER])),
            float(np.median(c115[METRIC_PERFORMANCE])
                  / np.median(rest[METRIC_PERFORMANCE])),
            float(np.median(c115[METRIC_TEMPERATURE])),
        )

    power, slowdown, temp = benchmark(c115_profile)
    rows = [
        ("c115 power", "165 W", f"{power:.0f} W"),
        ("c115 slowdown vs median GPU", "clear outlier", f"{slowdown:.2f}x"),
        ("c115 temperature", "~99 C (near slowdown)", f"{temp:.0f} C"),
    ]
    emit(None, "Fig. 6: node group c115", rows)
    assert power < 230.0
    assert slowdown > 1.2
    assert temp > 90.0
