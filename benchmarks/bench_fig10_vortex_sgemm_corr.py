"""Fig. 10: Vortex SGEMM scatter correlations.

Paper: duration-frequency strongly negative (rho = -0.98);
duration-temperature essentially uncorrelated (0.04) — water cooling
decouples temperature from performance (unlike air-cooled Longhorn's 0.46).
"""

from _bench_util import emit
from repro.core.correlation import paper_correlation_pairs


def test_fig10_correlations(benchmark, vortex_sgemm):
    pairs = benchmark(paper_correlation_pairs, vortex_sgemm)
    rows = [
        ("perf_vs_frequency", "-0.98",
         f"{pairs['perf_vs_frequency'].rho:+.2f}"),
        ("perf_vs_temperature", "+0.04",
         f"{pairs['perf_vs_temperature'].rho:+.2f}"),
    ]
    emit(benchmark, "Fig. 10: SGEMM correlations on Vortex", rows)

    assert pairs["perf_vs_frequency"].rho < -0.9
    assert abs(pairs["perf_vs_temperature"].rho) < 0.35


def test_fig10_water_weakens_temp_coupling(
    benchmark, vortex_sgemm, longhorn_sgemm
):
    """Cooling comparison: air couples temperature to performance more."""
    def couplings():
        v = paper_correlation_pairs(vortex_sgemm)["perf_vs_temperature"].rho
        l = paper_correlation_pairs(longhorn_sgemm)["perf_vs_temperature"].rho
        return v, l

    rho_vortex, rho_longhorn = benchmark(couplings)
    emit(None, "Fig. 10 vs Fig. 3: cooling and the temp coupling",
         [("Vortex (water) rho(perf, T)", "+0.04", f"{rho_vortex:+.2f}"),
          ("Longhorn (air) rho(perf, T)", "+0.46", f"{rho_longhorn:+.2f}")])
    assert rho_longhorn > rho_vortex
