"""Fig. 17: multi-GPU BERT pre-training on Longhorn.

Paper: median power ~40 W below ResNet's (less compute-intense GEMMs);
still large power variability (~87%); lower performance variability (8%);
and the outlier nodes are the *same* c002 nodes as ResNet's (Takeaway 6).
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import flag_outlier_gpus, metric_boxstats, persistent_outliers
from repro.telemetry.sample import METRIC_PERFORMANCE, METRIC_POWER


def test_fig17_bert_stats(benchmark, longhorn_bert, longhorn_resnet):
    perf = metric_boxstats(longhorn_bert, METRIC_PERFORMANCE,
                           per_gpu_median=False)
    power = metric_boxstats(longhorn_bert, METRIC_POWER,
                            per_gpu_median=False)
    resnet_power = metric_boxstats(longhorn_resnet, METRIC_POWER,
                                   per_gpu_median=False)

    rows = [
        ("performance variation", "8%", pct(perf.variation)),
        ("power variation", "87%", pct(power.variation)),
        ("median power below ResNet", "~40 W",
         f"{resnet_power.median - power.median:.0f} W"),
    ]
    emit(benchmark, "Fig. 17: BERT on Longhorn", rows)

    assert 0.04 < perf.variation < 0.16
    assert power.variation > 0.4
    assert resnet_power.median - power.median > 10.0

    benchmark(lambda: metric_boxstats(
        longhorn_bert, METRIC_PERFORMANCE, per_gpu_median=False
    ))


def test_fig17_takeaway6_shared_outlier_nodes(
    benchmark, longhorn_bert, longhorn_resnet
):
    """BERT's and ResNet-50's outlier nodes are the same."""
    def overlap():
        bert_report = flag_outlier_gpus(longhorn_bert)
        resnet_report = flag_outlier_gpus(longhorn_resnet)
        shared = persistent_outliers([bert_report, resnet_report])
        return bert_report, resnet_report, shared

    bert_report, resnet_report, shared = benchmark(overlap)
    rows = [
        ("BERT outlier nodes", "c002...",
         ",".join(list(bert_report.node_labels)[:3])),
        ("ResNet outlier nodes", "c002...",
         ",".join(list(resnet_report.node_labels)[:3])),
        ("GPUs flagged by both", ">0", str(len(shared))),
    ]
    emit(None, "Takeaway 6: persistent outliers across ML apps", rows)

    assert shared
    assert set(bert_report.node_labels) & set(resnet_report.node_labels)
