"""Section VII: impact on users and application-aware placement.

Paper: a single-GPU SGEMM job on Longhorn has an ~18% chance of landing on
a GPU 6-7% slower than the fastest ones (9% on Summit); a 4-GPU job on
Longhorn hits a slow GPU 40-50% of the time.  Operators can mitigate by
scheduling compute-intense work onto low-variability nodes.
"""

from _bench_util import emit, pct
from repro.core import plan_placements, slow_assignment_probability
from repro.workloads import bert_pretraining, lammps_reaxc, pagerank, sgemm


def test_sec7_slow_assignment_probabilities(
    benchmark, longhorn_sgemm, summit_sgemm
):
    lh_single = slow_assignment_probability(
        longhorn_sgemm, n_gpus=1, slow_threshold=0.06
    )
    lh_node = slow_assignment_probability(
        longhorn_sgemm, n_gpus=4, slow_threshold=0.06
    )
    summit_single = slow_assignment_probability(
        summit_sgemm, n_gpus=1, slow_threshold=0.06
    )

    rows = [
        ("Longhorn single-GPU job", "18%", pct(lh_single)),
        ("Longhorn 4-GPU job", "40-50%", pct(lh_node)),
        ("Summit single-GPU job", "9%", pct(summit_single)),
    ]
    emit(benchmark, "Sec. VII: chance of drawing a slow GPU", rows)

    assert 0.03 < lh_single < 0.40
    assert lh_node > 1.8 * lh_single        # multi-GPU amplification
    assert 0.2 < lh_node < 0.75
    assert summit_single < lh_single * 2.5

    benchmark(lambda: slow_assignment_probability(longhorn_sgemm, n_gpus=4))


def test_sec7_variability_aware_placement(benchmark, longhorn_sgemm):
    workloads = [sgemm(), bert_pretraining(), lammps_reaxc(), pagerank()]
    plan = benchmark(plan_placements, longhorn_sgemm, workloads)

    rows = []
    for name in ("SGEMM", "BERT", "LAMMPS", "PageRank"):
        rows.append((
            f"{name}: planned vs random slowdown",
            "planned <= random",
            f"{plan.expected_slowdowns[name]:.3f}x vs "
            f"{plan.baseline_slowdowns[name]:.3f}x",
        ))
    emit(None, "Sec. VII: application-aware placement", rows)

    # Sensitive workloads benefit; memory-bound ones barely care.
    assert plan.expected_slowdowns["SGEMM"] <= plan.baseline_slowdowns["SGEMM"]
    assert plan.expected_slowdowns["PageRank"] < 1.02
    # Every workload got a distinct node.
    assert len(set(plan.assignments.values())) == len(workloads)
