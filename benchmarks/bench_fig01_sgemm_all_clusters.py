"""Fig. 1: normalized SGEMM runtime across the five clusters.

Paper: every cluster shows 5-9% performance variation with outliers up to
~1.5x the median GPU, despite identical architecture and SKU within each
cluster.
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import metric_boxstats, normalized_performance
from repro.core.report import ascii_histogram
from repro.telemetry.sample import METRIC_PERFORMANCE

#: Paper-reported SGEMM performance variation per cluster (Sections IV-B..F).
PAPER_VARIATION = {
    "Longhorn": 0.09,
    "Summit": 0.08,
    "Vortex": 0.09,
    "Frontera": 0.05,
    "Corona": 0.07,
}


def test_fig01_normalized_runtime(
    benchmark,
    longhorn_sgemm,
    summit_sgemm,
    vortex_sgemm,
    frontera_sgemm,
    corona_sgemm,
):
    datasets = {
        "Longhorn": longhorn_sgemm,
        "Summit": summit_sgemm,
        "Vortex": vortex_sgemm,
        "Frontera": frontera_sgemm,
        "Corona": corona_sgemm,
    }

    rows = []
    for name, ds in datasets.items():
        stats = metric_boxstats(ds, METRIC_PERFORMANCE)
        normalized = normalized_performance(ds)
        worst = float(normalized.max())
        rows.append((
            f"{name} variation / worst-vs-median",
            f"{pct(PAPER_VARIATION[name])} / <=1.5x",
            f"{pct(stats.variation)} / {worst:.2f}x",
        ))
        # Shape assertions: significant variation everywhere, bounded tails.
        assert 0.5 * PAPER_VARIATION[name] < stats.variation \
            < 2.2 * PAPER_VARIATION[name]
        assert 1.02 < worst < 2.2
        # Normalization property of Fig. 1's y-axis.
        assert np.median(normalized) == 1.0
    emit(benchmark, "Fig. 1: normalized SGEMM runtime, all clusters", rows)
    print("\nLonghorn normalized-runtime distribution (Fig. 1, leftmost box):")
    print(ascii_histogram(normalized_performance(datasets["Longhorn"]),
                          bins=10, width=40))

    benchmark(lambda: normalized_performance(datasets["Longhorn"]))


def test_fig01_every_cluster_has_outliers(
    benchmark, longhorn_sgemm, summit_sgemm, corona_sgemm
):
    """All clusters 'contain several outliers' (Fig. 1 caption)."""
    counts = {}
    for name, ds in (("Longhorn", longhorn_sgemm), ("Summit", summit_sgemm),
                     ("Corona", corona_sgemm)):
        stats = metric_boxstats(ds, METRIC_PERFORMANCE)
        counts[name] = stats.n_outliers
        assert stats.n_outliers >= 1
    emit(benchmark, "Fig. 1: performance outlier counts",
         [(f"{k} outlier GPUs", ">=1", str(v)) for k, v in counts.items()])

    benchmark(lambda: metric_boxstats(longhorn_sgemm, METRIC_PERFORMANCE))
