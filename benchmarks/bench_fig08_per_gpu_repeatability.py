"""Fig. 8: normalized performance variation *within* a GPU across runs.

Paper: median per-GPU variation of 0.44% (Longhorn), 0.12% (Summit), and
6.06% (Corona) — runs are repeatable on NVIDIA, noisy on AMD, and in all
cases "ill-performing GPUs are consistently ill-performing" (the noisiest
GPUs are not the slowest ones).
"""

import numpy as np

from _bench_util import emit, pct
from repro.core import per_gpu_repeatability
from repro.core.repeatability import repeatability_summary

PAPER_MEDIANS = {
    "Longhorn": 0.0044,
    "Summit": 0.0012,
    "Corona": 0.0606,
}


def test_fig08_repeatability_medians(
    benchmark, longhorn_sgemm, summit_sgemm, corona_sgemm
):
    datasets = {
        "Longhorn": longhorn_sgemm,
        "Summit": summit_sgemm,
        "Corona": corona_sgemm,
    }
    medians = {}
    for name, ds in datasets.items():
        rep = per_gpu_repeatability(ds)
        medians[name] = float(np.median(rep["repeat_variation"]))

    rows = [
        (f"{name} median per-GPU variation", pct(PAPER_MEDIANS[name]),
         pct(medians[name]))
        for name in datasets
    ]
    emit(benchmark, "Fig. 8: per-GPU repeatability", rows)

    # Orders of magnitude must match: Summit < Longhorn << Corona.
    assert medians["Summit"] < medians["Longhorn"] < medians["Corona"]
    assert medians["Longhorn"] < 0.02
    assert medians["Corona"] > 0.015

    benchmark(lambda: per_gpu_repeatability(longhorn_sgemm))


def test_fig08_noisy_gpus_are_not_the_slowest(benchmark, longhorn_sgemm):
    """Paper: repeatability outliers 'do not correspond to the worst
    performing GPUs'."""
    summary = benchmark(repeatability_summary, longhorn_sgemm)
    emit(None, "Fig. 8: noise vs slowness",
         [("noisiest GPU", "not among slowest", summary.worst_gpu_label),
          ("worst repeat variation", "<=12%",
           pct(summary.worst_variation))])
    assert summary.worst_variation < 0.15
