#!/usr/bin/env python
"""Regenerate the golden campaign fixtures under tests/golden/.

Run from the repository root::

    PYTHONPATH=src python tools/regen_golden.py [name ...]

With no arguments every fixture in ``tests.golden.GOLDEN_CAMPAIGNS`` is
rebuilt; pass fixture names to rebuild a subset.  Output is written with a
zeroed gzip mtime, so an unchanged simulation produces byte-identical
files and a clean ``git status``.

Only regenerate when a change is *intended* to alter the simulated
streams — the whole point of the fixtures is to make unintended stream
changes fail ``tests/test_golden.py``.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT))
sys.path.insert(0, str(REPO_ROOT / "src"))

from tests.golden import GOLDEN_CAMPAIGNS, write_golden  # noqa: E402


def main(argv: list[str]) -> int:
    names = argv or sorted(GOLDEN_CAMPAIGNS)
    unknown = [n for n in names if n not in GOLDEN_CAMPAIGNS]
    if unknown:
        known = ", ".join(sorted(GOLDEN_CAMPAIGNS))
        print(f"unknown fixture(s): {', '.join(unknown)} (known: {known})",
              file=sys.stderr)
        return 2
    for name in names:
        path = write_golden(name)
        size = path.stat().st_size
        print(f"wrote {path.relative_to(REPO_ROOT)} ({size} bytes)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
