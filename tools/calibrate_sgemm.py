"""Calibration dashboard: SGEMM headline numbers for every cluster preset.

Run after changing silicon/spec/cooling parameters; compares against the
paper's reported values (comments).  Not part of the installed package.
"""
import numpy as np

from repro.cluster import longhorn, summit, frontera, vortex, corona

SGEMM_FLOPS = {"V100": 3.33e13, "RTX5000": 3.33e13, "MI60": 2.97e13}


def boxvar(x):
    q1, q2, q3 = np.percentile(x, [25, 50, 75])
    iqr = q3 - q1
    inl = x[(x >= q1 - 1.5 * iqr) & (x <= q3 + 1.5 * iqr)]
    return (inl.max() - inl.min()) / q2


def measure(cl, seed=0):
    fl = cl.fleet
    rng = np.random.default_rng(seed)
    op = fl.controller.solve_steady(
        1.0, 0.35, fl.throughput_efficiency(), fl.power_cap_w(),
        f_cap_mhz=fl.frequency_cap_mhz(), rng=rng)
    t = SGEMM_FLOPS[fl.spec.name] / (
        op.f_effective_mhz * fl.spec.compute_throughput * fl.throughput_efficiency())
    t = t * (1.0 + rng.normal(0, cl.run_noise_sigma, fl.n))
    P = op.power_w * fl.silicon.power_sensor_gain + rng.normal(0, 1.0, fl.n)
    T = op.temperature_c + rng.normal(0, 0.7, fl.n)
    return op, t, P, T


def report(name, cl, paper):
    op, t, P, T = measure(cl)
    rho = lambda a, b: np.corrcoef(a, b)[0, 1]
    print(f"{name:9s} var={boxvar(t):.3f} fvar={boxvar(op.f_effective_mhz):.3f} "
          f"fmed={np.median(op.f_effective_mhz):5.0f} pmed={np.median(P):5.1f} "
          f"tmed={np.median(T):4.1f} tq13={np.percentile(T,75)-np.percentile(T,25):4.1f} "
          f"r_tf={rho(t,op.f_effective_mhz):+.2f} r_tT={rho(t,T):+.2f} "
          f"r_tP={rho(t,P):+.2f} r_PT={rho(P,T):+.2f} worst={t.max()/np.median(t):.2f}x")
    print(f"{'paper':>9s} {paper}")


if __name__ == "__main__":
    report("Longhorn", longhorn(seed=1),
           "var=0.09 fvar=0.11 fmed~1370 pmed~297 tmed=66 r_tf=-0.97 r_tT=+0.46 r_tP=-0.35 r_PT=-0.10")
    report("Summit", summit(seed=1),
           "var=0.08 fmed~1390 temps 40-62 r_tf=-0.99 r_tP=-0.09 worst~1.5x")
    report("Vortex", vortex(seed=1),
           "var=0.09 fmed~1390 (1330-1442) tmed=46 tq13~10 r_tf=-0.98 r_tT=+0.04 P within 5W of 300")
    report("Frontera", frontera(seed=1),
           "var=0.05 fvar=0.07 tmed=76 tq13=4 r_tP=-0.96 r_PT=-0.10 c197 ~1.4x slower")
    report("Corona", corona(seed=1),
           "var=0.07 r_tf=-0.76 pmed<300 tmed~hot c115=165W r_tT=+0.20 r_tP=-0.48 worst~1.5x")
