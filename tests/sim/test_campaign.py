"""Tests for measurement campaigns."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim.campaign import CampaignConfig, run_campaign
from repro.workloads import sgemm


class TestConfig:
    def test_defaults(self):
        cfg = CampaignConfig()
        assert cfg.days == 7
        assert cfg.coverage == 1.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            CampaignConfig(days=0)
        with pytest.raises(ConfigError):
            CampaignConfig(coverage=0.0)
        with pytest.raises(ConfigError):
            CampaignConfig(runs_per_day=0)

    def test_power_limit_must_be_positive(self):
        with pytest.raises(ConfigError, match="power_limit_w"):
            CampaignConfig(power_limit_w=0.0)
        with pytest.raises(ConfigError, match="power_limit_w"):
            CampaignConfig(power_limit_w=-150.0)
        # None (unlimited) and a positive cap both construct fine.
        assert CampaignConfig(power_limit_w=None).power_limit_w is None
        assert CampaignConfig(power_limit_w=225.0).power_limit_w == 225.0


class TestCampaign:
    def test_schema(self, sgemm_dataset):
        for column in ("cluster", "workload", "day", "weekday", "run",
                       "gpu_index", "gpu_label", "node_label", "cabinet",
                       "performance_ms", "frequency_mhz", "power_w",
                       "temperature_c", "true_power_w", "defect_kind"):
            assert column in sgemm_dataset

    def test_row_count(self, small_longhorn, sgemm_dataset):
        expected = small_longhorn.n_gpus * 3 * 2  # days x runs_per_day
        assert sgemm_dataset.n_rows == expected

    def test_weekday_labels(self, sgemm_dataset):
        days = dict(zip(sgemm_dataset["day"], sgemm_dataset["weekday"]))
        assert days[0] == "Monday"
        assert days[2] == "Wednesday"

    def test_deterministic(self, small_longhorn):
        a = run_campaign(small_longhorn, sgemm(), CampaignConfig(days=1))
        b = run_campaign(small_longhorn, sgemm(), CampaignConfig(days=1))
        np.testing.assert_array_equal(a["performance_ms"], b["performance_ms"])

    def test_partial_coverage(self, small_longhorn):
        ds = run_campaign(
            small_longhorn, sgemm(), CampaignConfig(days=1, coverage=0.5)
        )
        covered_nodes = np.unique(ds["node_label"]).shape[0]
        assert covered_nodes == small_longhorn.n_nodes // 2

    def test_coverage_varies_by_day(self, small_longhorn):
        ds = run_campaign(
            small_longhorn, sgemm(), CampaignConfig(days=2, coverage=0.5)
        )
        day0 = set(ds.where(day=0)["node_label"])
        day1 = set(ds.where(day=1)["node_label"])
        assert day0 != day1

    def test_grid_cluster_gets_row_column(self, small_summit):
        ds = run_campaign(small_summit, sgemm(), CampaignConfig(days=1))
        assert "row" in ds
        assert "column" in ds
        assert set(np.unique(ds["row"])) <= set("abcdefgh")

    def test_day_conditions_shift_temperatures(self, small_longhorn):
        ds = run_campaign(small_longhorn, sgemm(), CampaignConfig(days=7))
        temps = ds.group_reduce("day", "temperature_c")
        values = np.array(list(temps.values()))
        assert np.ptp(values) > 0.5  # facility drift is visible
