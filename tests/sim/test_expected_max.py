"""Regression tests for E[max of k normals] — the bulk-sync jitter amplifier.

Before :func:`repro.sim.run.expected_max_of_normals`, job widths missing
from the calibrated table silently fell back to 1.0, understating the
bulk-synchronous jitter amplification for (say) 5- or 7-GPU jobs.  The
function must return the calibrated constants for the table widths (the
committed golden campaigns depend on those exact values) and accurate
order-statistic means everywhere else.
"""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.run import EXPECTED_MAX_OF_NORMALS, expected_max_of_normals

#: Reference E[max of k standard normals] to 5 decimals (Harter 1961).
REFERENCE = {5: 1.16296, 7: 1.35218, 10: 1.53875, 16: 1.76599}


class TestTableWidths:
    def test_table_values_returned_exactly(self):
        for k, value in EXPECTED_MAX_OF_NORMALS.items():
            assert expected_max_of_normals(k) == value

    def test_k1_is_zero(self):
        assert expected_max_of_normals(1) == 0.0


class TestArbitraryWidths:
    @pytest.mark.parametrize("k", sorted(REFERENCE))
    def test_matches_published_order_statistics(self, k):
        assert expected_max_of_normals(k) == pytest.approx(
            REFERENCE[k], abs=1e-4
        )

    def test_monotone_in_k(self):
        values = [expected_max_of_normals(k) for k in range(1, 33)]
        diffs = np.diff(values)
        # The table holds 3-decimal calibrated constants amid exact
        # integrals, so allow rounding-size dips but no real decreases.
        assert np.all(diffs > -2e-3)
        assert expected_max_of_normals(32) > expected_max_of_normals(8)

    def test_memoized(self):
        assert expected_max_of_normals(23) is not None
        from repro.sim.run import _EMAX_CACHE
        assert 23 in _EMAX_CACHE

    def test_invalid_width_raises(self):
        with pytest.raises(SimulationError):
            expected_max_of_normals(0)
        with pytest.raises(SimulationError):
            expected_max_of_normals(-3)
