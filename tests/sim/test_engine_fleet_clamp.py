"""Batched vs sequential fast-cap clamp in the reactive engine.

Under ``solver="fleet"`` the engine's hardware fast-cap clamp evaluates
all candidate drop levels in one flat power-model call instead of
round-by-round.  The candidate levels depend only on the entry p-state
and temperature is frozen during the clamp, so the batched path must be
*bit-identical* to the sequential one — states, power readings, and the
``engine.clamp_reevaluations`` counter all match exactly.
"""

import numpy as np
import pytest

from repro.cluster import cloudlab
from repro.gpu.dvfs import SOLVER_FLEET, SOLVER_LADDER
from repro.obs import Tracer, activate
from repro.sim.engine import Engine, EngineConfig
from repro.workloads import sgemm

STATE_ARRAYS = ("pstate_index", "temperature_c", "kernel_active",
                "compute_remaining", "memory_remaining",
                "gap_remaining_s", "kernels_completed")


def make_engine(solver, power_limit=None, batched=None, n=8, seed=11):
    """Fresh engine over its own fleet (no state shared between engines)."""
    fleet = cloudlab(seed=seed).fleet.take(np.arange(n))
    fleet.controller.solver = solver
    engine = Engine(fleet, sgemm(), EngineConfig(thermal_time_scale=10.0),
                    power_limit_w=power_limit)
    if batched is not None:
        # Force the clamp execution shape independently of the solver so
        # the test isolates the clamp path from the control-tick solver.
        engine._batched_clamp = batched
    return engine


def run_traced(engine, seconds=10.0):
    tracer = Tracer()
    with activate(tracer):
        engine.run_for(seconds)
    return tracer.counters


def assert_states_identical(a, b):
    for field in STATE_ARRAYS:
        lhs, rhs = getattr(a.state, field), getattr(b.state, field)
        assert lhs.dtype == rhs.dtype, field
        assert np.array_equal(lhs, rhs), field
    assert a.state.kernel_start_times == b.state.kernel_start_times
    assert a.state.time_s == b.state.time_s


class TestBatchedClampEquivalence:
    @pytest.mark.parametrize("limit", [None, 200.0, 160.0])
    def test_states_and_counters_identical(self, limit):
        # Same solver on both engines; only the clamp execution shape
        # differs, so any divergence is the batched clamp's fault.
        batched = make_engine(SOLVER_FLEET, limit, batched=True)
        sequential = make_engine(SOLVER_FLEET, limit, batched=False)
        c_batched = run_traced(batched)
        c_sequential = run_traced(sequential)
        assert_states_identical(batched, sequential)
        assert c_batched == c_sequential
        if limit is not None:
            # Tight caps must actually exercise the clamp.
            assert c_batched.get("engine.clamp_reevaluations", 0) > 0

    @pytest.mark.parametrize("limit", [None, 160.0])
    def test_fleet_engine_matches_ladder_engine(self, limit):
        # Full-stack differential: fleet solver + batched clamp vs ladder
        # solver + sequential clamp, end to end.
        fleet_eng = make_engine(SOLVER_FLEET, limit)
        ladder_eng = make_engine(SOLVER_LADDER, limit)
        assert fleet_eng._batched_clamp
        assert not ladder_eng._batched_clamp
        c_fleet = run_traced(fleet_eng)
        c_ladder = run_traced(ladder_eng)
        assert_states_identical(fleet_eng, ladder_eng)
        assert c_fleet == c_ladder


class TestClampMonotonicity:
    """The clamp only ever steps p-states *down* (regression guard)."""

    def _warmed_engine(self):
        engine = make_engine(SOLVER_FLEET, None)
        engine.run_for(3.0)
        return engine

    def test_batched_clamp_never_raises_pstates(self):
        engine = self._warmed_engine()
        power = engine.instantaneous_power()
        # A cap below every board power forces all GPUs through all
        # clamp rounds.
        cap_fast = np.full(engine.n, power.min() * 0.25)
        over_idx = np.flatnonzero(power > cap_fast)
        assert over_idx.size == engine.n
        idx_before = engine.state.pstate_index.copy()
        reevals = engine._clamp_fast_cap_batched(power, over_idx, cap_fast)
        idx_after = engine.state.pstate_index
        assert np.all(idx_after <= idx_before)
        assert np.all(idx_after >= 0)
        # Nothing feasible: every GPU pays the full round budget.
        assert reevals == engine.n * 4

    def test_batched_clamp_partial_feasibility(self):
        engine = self._warmed_engine()
        power = engine.instantaneous_power()
        # One-rung-down feasible for everyone: single round charged.
        cap_fast = power * 0.999
        over_idx = np.flatnonzero(power > cap_fast)
        idx_before = engine.state.pstate_index.copy()
        reevals = engine._clamp_fast_cap_batched(power, over_idx, cap_fast)
        assert np.all(engine.state.pstate_index <= idx_before)
        assert reevals >= over_idx.size

    def test_clamped_power_matches_reported_power(self):
        # The power array the clamp writes back must equal a fresh
        # evaluation at the post-clamp state, bit for bit.
        engine = self._warmed_engine()
        power = engine.instantaneous_power()
        cap_fast = power * 0.8
        over_idx = np.flatnonzero(power > cap_fast)
        engine._clamp_fast_cap_batched(power, over_idx, cap_fast)
        fresh = engine.instantaneous_power()
        assert np.array_equal(power, fresh)
