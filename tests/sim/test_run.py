"""Tests for the single-run simulator."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.gpu.defects import DefectType
from repro.sim.run import EXPECTED_MAX_OF_NORMALS, simulate_run
from repro.workloads import lammps_reaxc, resnet50, sgemm


class TestBasics:
    def test_shapes(self, small_longhorn):
        result = simulate_run(small_longhorn, sgemm())
        n = small_longhorn.n_gpus
        assert result.n == n
        for field in ("performance_ms", "frequency_mhz", "power_w",
                      "temperature_c"):
            assert getattr(result, field).shape == (n,)

    def test_deterministic(self, small_longhorn):
        a = simulate_run(small_longhorn, sgemm(), day=2, run_index=1)
        b = simulate_run(small_longhorn, sgemm(), day=2, run_index=1)
        np.testing.assert_array_equal(a.performance_ms, b.performance_ms)
        np.testing.assert_array_equal(a.power_w, b.power_w)

    def test_runs_differ(self, small_longhorn):
        a = simulate_run(small_longhorn, sgemm(), day=2, run_index=1)
        b = simulate_run(small_longhorn, sgemm(), day=2, run_index=2)
        assert not np.array_equal(a.performance_ms, b.performance_ms)

    def test_gpu_subset(self, small_longhorn):
        subset = np.arange(8)
        result = simulate_run(small_longhorn, sgemm(), gpu_indices=subset)
        assert result.n == 8
        np.testing.assert_array_equal(result.gpu_indices, subset)

    def test_sensor_quantization(self, small_longhorn):
        result = simulate_run(small_longhorn, sgemm())
        spec = small_longhorn.spec
        assert np.all(np.isin(result.frequency_mhz, spec.pstate_array()))
        np.testing.assert_array_equal(
            result.temperature_c, np.round(result.temperature_c)
        )

    def test_sgemm_throttles_below_boost(self, small_longhorn):
        result = simulate_run(small_longhorn, sgemm())
        assert np.median(result.true_frequency_mhz) < small_longhorn.spec.f_max_mhz
        assert result.power_capped.mean() > 0.5

    def test_memory_bound_runs_at_boost(self, small_longhorn):
        result = simulate_run(small_longhorn, lammps_reaxc())
        at_max = result.true_frequency_mhz == small_longhorn.spec.f_max_mhz
        assert at_max.mean() > 0.9


class TestPowerLimit:
    def test_requires_admin(self, small_longhorn):
        with pytest.raises(SimulationError, match="administrative"):
            simulate_run(small_longhorn, sgemm(), power_limit_w=150.0)

    def test_lower_limit_slower(self, tiny_cloudlab):
        full = simulate_run(tiny_cloudlab, sgemm(), power_limit_w=300.0)
        capped = simulate_run(tiny_cloudlab, sgemm(), power_limit_w=150.0)
        assert np.median(capped.performance_ms) > np.median(full.performance_ms)
        assert np.all(capped.true_power_w <= 150.0 + 1e-9)


class TestMultiGpu:
    def test_node_iteration_shared(self, small_longhorn):
        result = simulate_run(small_longhorn, resnet50())
        perf = result.performance_ms.reshape(-1, 4)
        assert np.all(perf == perf[:, :1])  # bulk-synchronous: shared time

    def test_misaligned_allocation_rejected(self, small_longhorn):
        with pytest.raises(SimulationError, match="single nodes"):
            simulate_run(
                small_longhorn, resnet50(),
                gpu_indices=np.arange(2, 10),  # straddles two nodes
            )

    def test_wrong_multiple_rejected(self, small_longhorn):
        with pytest.raises(SimulationError, match="divide"):
            simulate_run(small_longhorn, resnet50(), gpu_indices=np.arange(6))

    def test_oversized_job_rejected(self, small_longhorn):
        with pytest.raises(SimulationError, match="per job"):
            simulate_run(small_longhorn, resnet50(batch_size=64, n_gpus=8))

    def test_straggler_neighbours_wait_at_low_power(self, small_longhorn):
        """Fig. 15: healthy GPUs on a sick node report max clocks but low power."""
        cl = small_longhorn
        sick = np.flatnonzero(cl.defects.kind == int(DefectType.SICK_SLOW))
        assert sick.shape[0] > 0
        result = simulate_run(cl, resnet50())
        node_of = cl.topology.node_of_gpu
        sick_nodes = set(node_of[sick])
        healthy_mask = cl.defects.kind == int(DefectType.NONE)
        neighbour = healthy_mask & np.isin(node_of, list(sick_nodes))
        clean = healthy_mask & ~np.isin(node_of, list(sick_nodes))
        # Neighbours run at (or near) boost clock...
        assert np.median(result.true_frequency_mhz[neighbour]) \
            >= np.median(result.true_frequency_mhz[clean]) - 10.0
        # ...but burn much less power while waiting.
        assert (np.median(result.true_power_w[neighbour])
                < np.median(result.true_power_w[clean]) - 20.0)
        # And their node's iteration time is much worse.
        assert (np.median(result.performance_ms[neighbour])
                > 1.2 * np.median(result.performance_ms[clean]))


class TestJitterAmplification:
    def test_expected_max_table_monotone(self):
        ks = sorted(EXPECTED_MAX_OF_NORMALS)
        values = [EXPECTED_MAX_OF_NORMALS[k] for k in ks]
        assert values == sorted(values)
        assert EXPECTED_MAX_OF_NORMALS[1] == 0.0
