"""Campaign-level solver cross-checks and solver telemetry.

``REPRO_DVFS_SOLVER=grid`` must reproduce the default (ladder) campaign
dataset bit for bit — including on Corona, where AMD DPM dithering draws
per-run RNG inside ``solve_steady`` and would drift on the first
miscounted draw.  Fresh clusters are built per solver so the per-(day,
shard) fleet cache cannot leak a controller constructed under the other
solver default.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import corona, longhorn
from repro.gpu.dvfs import SOLVER_FLEET, SOLVER_GRID, SOLVER_LADDER
from repro.sim import CampaignConfig, run_campaign
from repro.telemetry.progress import CampaignProgress
from repro.workloads import sgemm
from repro.workloads.sgemm import SGEMM_N_AMD

CONFIG = CampaignConfig(days=2, runs_per_day=2, coverage=0.9)


def assert_datasets_identical(a, b):
    assert a.column_names == b.column_names
    assert a.n_rows == b.n_rows
    for name in a.column_names:
        x, y = a[name], b[name]
        assert x.dtype == y.dtype, f"column {name!r} dtype differs"
        assert np.array_equal(x, y), f"column {name!r} differs"


def run_with_solver(monkeypatch, make_cluster, workload, solver,
                    workers=None, progress=None):
    monkeypatch.setenv("REPRO_DVFS_SOLVER", solver)
    try:
        return run_campaign(make_cluster(), workload, CONFIG,
                            workers=workers, progress=progress)
    finally:
        monkeypatch.delenv("REPRO_DVFS_SOLVER")


def test_grid_solver_reproduces_longhorn_campaign(monkeypatch):
    make = lambda: longhorn(seed=13, scale=0.25)
    ladder = run_with_solver(monkeypatch, make, sgemm(), SOLVER_LADDER)
    grid = run_with_solver(monkeypatch, make, sgemm(), SOLVER_GRID)
    assert_datasets_identical(ladder, grid)


def test_grid_solver_reproduces_corona_dither_campaign(monkeypatch):
    # The AMD cluster: every solve dithers, so this fails on the first
    # RNG draw the ladder search would add or skip relative to the scan.
    make = lambda: corona(seed=13, scale=0.3)
    workload = sgemm(n=SGEMM_N_AMD)
    ladder = run_with_solver(monkeypatch, make, workload, SOLVER_LADDER)
    grid = run_with_solver(monkeypatch, make, workload, SOLVER_GRID)
    assert_datasets_identical(ladder, grid)


def test_fleet_solver_reproduces_longhorn_campaign(monkeypatch):
    make = lambda: longhorn(seed=13, scale=0.25)
    ladder = run_with_solver(monkeypatch, make, sgemm(), SOLVER_LADDER)
    fleet = run_with_solver(monkeypatch, make, sgemm(), SOLVER_FLEET)
    assert_datasets_identical(ladder, fleet)


def test_fleet_solver_reproduces_corona_dither_campaign(monkeypatch):
    make = lambda: corona(seed=13, scale=0.3)
    workload = sgemm(n=SGEMM_N_AMD)
    ladder = run_with_solver(monkeypatch, make, workload, SOLVER_LADDER)
    fleet = run_with_solver(monkeypatch, make, workload, SOLVER_FLEET)
    assert_datasets_identical(ladder, fleet)


def test_fleet_solver_parallel_matches_serial(monkeypatch):
    make = lambda: longhorn(seed=13, scale=0.25)
    serial = run_with_solver(monkeypatch, make, sgemm(), SOLVER_FLEET)
    sharded = run_with_solver(monkeypatch, make, sgemm(), SOLVER_FLEET,
                              workers=2)
    assert_datasets_identical(serial, sharded)


def test_solve_counters_invariant_across_solvers_and_workers(monkeypatch):
    # A batched solve counts as n per-GPU solves in one batch, so the
    # campaign-total solve/batch counters depend only on the campaign
    # shape — never on the solver mode or the shard plan.
    make = lambda: longhorn(seed=13, scale=0.25)
    totals = {}
    for solver in (SOLVER_LADDER, SOLVER_FLEET, SOLVER_GRID):
        for workers in (None, 2):
            progress = CampaignProgress()
            run_with_solver(monkeypatch, make, sgemm(), solver,
                            workers=workers, progress=progress)
            stats = progress.solver_stats
            totals[(solver, workers)] = (stats.solves, stats.batches)
    reference = totals[(SOLVER_LADDER, None)]
    assert reference[0] > 0 and reference[1] > 0
    assert all(t == reference for t in totals.values()), totals


def test_progress_surfaces_solver_stats(small_longhorn):
    progress = CampaignProgress()
    run_campaign(small_longhorn, sgemm(), CONFIG, progress=progress)
    stats = progress.solver_stats
    assert stats.solves > 0
    assert stats.dense_cells > stats.columns_evaluated
    assert stats.dense_fraction_avoided > 0.5
    assert "solver skipped" in progress.summary()
    assert all(t.solver is not None for t in progress.timings)
