"""Tests for the time-stepped reactive engine."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine, EngineConfig
from repro.workloads import resnet50, sgemm


@pytest.fixture()
def fleet(tiny_cloudlab):
    return tiny_cloudlab.fleet.take(np.arange(4))


class TestConstruction:
    def test_multi_phase_rejected(self, fleet):
        with pytest.raises(SimulationError, match="single-phase"):
            Engine(fleet, resnet50())

    def test_dt_exceeding_control_interval_rejected(self, fleet):
        with pytest.raises(SimulationError, match="control interval"):
            Engine(fleet, sgemm(), EngineConfig(dt_s=1.0))

    def test_invalid_config(self):
        with pytest.raises(Exception):
            EngineConfig(dt_s=0.0)


class TestDynamics:
    def test_kernels_complete(self, fleet):
        engine = Engine(fleet, sgemm())
        engine.run_for(12.0)
        assert np.all(engine.state.kernels_completed >= 2)
        assert len(engine.state.kernel_start_times) >= 2

    def test_dvfs_throttles_under_compute(self, fleet):
        engine = Engine(fleet, sgemm())
        engine.run_for(10.0)
        assert np.median(engine.frequency_mhz()) < fleet.spec.f_max_mhz

    def test_power_settles_near_cap(self, fleet):
        engine = Engine(fleet, sgemm())
        engine.run_for(15.0)
        p = engine.instantaneous_power()
        assert np.all(p < fleet.spec.tdp_w * 1.05)
        assert np.median(p) > fleet.spec.tdp_w * 0.9

    def test_temperature_rises_from_coolant(self, fleet):
        engine = Engine(fleet, sgemm())
        t0 = engine.state.temperature_c.copy()
        engine.run_for(20.0)
        assert np.all(engine.state.temperature_c > t0 + 5.0)

    def test_engine_matches_steady_solver(self, fleet):
        """Cross-validation: the reactive engine converges to the fixed point."""
        wl = sgemm()
        engine = Engine(fleet, wl, EngineConfig(thermal_time_scale=20.0))
        engine.run_for(40.0)
        phase = wl.phases[0]
        op = fleet.controller.solve_steady(
            phase.activity, phase.dram_utilization,
            fleet.throughput_efficiency(), fleet.power_cap_w(),
        )
        # Same ladder neighbourhood: within 3 p-states (the reactive
        # controller oscillates around the cap; gaps between kernels let
        # it boost briefly).
        f_engine = engine.frequency_mhz()
        assert np.all(
            np.abs(f_engine - op.f_effective_mhz) <= 3 * 7.5 + 1e-9
        )
        # Temperatures agree within a few degrees.
        assert np.all(
            np.abs(engine.state.temperature_c - op.temperature_c) < 6.0
        )

    def test_power_limit_respected_between_controls(self, fleet):
        engine = Engine(fleet, sgemm(), power_limit_w=150.0)
        engine.run_for(20.0)
        # After settling, instantaneous power hovers near 150 W.
        assert np.median(engine.instantaneous_power()) < 165.0

    def test_frequency_ceiling(self, tiny_cloudlab):
        fleet = tiny_cloudlab.fleet.take(np.arange(2))
        fleet.defects.frequency_cap_frac[:] = 0.6
        engine = Engine(fleet, sgemm())
        engine.run_for(5.0)
        assert np.all(engine.frequency_mhz() <= 0.6 * fleet.spec.f_max_mhz + 7.5)

    def test_run_for_rejects_nonpositive(self, fleet):
        engine = Engine(fleet, sgemm())
        with pytest.raises(SimulationError):
            engine.run_for(0.0)
