"""Tests for the pathological-run mechanism (extreme ML stragglers)."""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sim import simulate_run
from repro.workloads import resnet50
from repro.workloads.base import KernelPhase, Workload


def _workload(rate, n_gpus=1, slowdown=(2.0, 3.0)):
    return Workload(
        name="probe",
        phases=(KernelPhase("k", 1e12, 1e6, 0.5, 0.3),),
        n_gpus=n_gpus,
        units_per_run=100,
        performance_metric="kernel_ms" if n_gpus == 1 else "iteration_ms",
        pathological_run_rate=rate,
        pathological_slowdown=slowdown,
    )


class TestValidation:
    def test_rate_bounds(self):
        with pytest.raises(ConfigError):
            _workload(rate=0.9)
        with pytest.raises(ConfigError):
            _workload(rate=-0.1)

    def test_slowdown_bounds(self):
        with pytest.raises(ConfigError):
            _workload(rate=0.1, slowdown=(0.5, 2.0))
        with pytest.raises(ConfigError):
            _workload(rate=0.1, slowdown=(3.0, 2.0))


class TestSingleGpu:
    def test_zero_rate_has_no_tail(self, small_longhorn):
        clean = simulate_run(small_longhorn, _workload(0.0))
        med = np.median(clean.performance_ms)
        assert clean.performance_ms.max() < med * 1.6

    def test_pathological_runs_create_tail(self, small_longhorn):
        hit = simulate_run(small_longhorn, _workload(0.15))
        med = np.median(hit.performance_ms)
        assert hit.performance_ms.max() > med * 1.8

    def test_pathological_gpus_draw_less_power(self, small_longhorn):
        result = simulate_run(small_longhorn, _workload(0.25))
        med = np.median(result.performance_ms)
        slow = result.performance_ms > med * 1.7
        assert slow.any()
        # A stalled job barely exercises the GPU: low power at normal clocks.
        assert (np.median(result.true_power_w[slow])
                < np.median(result.true_power_w[~slow]) - 30.0)


class TestMultiGpu:
    def test_event_shared_across_the_job(self, small_longhorn):
        wl = _workload(0.25, n_gpus=4)
        result = simulate_run(small_longhorn, wl)
        perf = result.performance_ms.reshape(-1, 4)
        assert np.all(perf == perf[:, :1])

    def test_resnet_default_rates(self):
        assert resnet50().pathological_run_rate > \
            resnet50(batch_size=16, n_gpus=1).pathological_run_rate

    def test_rate_scales_tail_mass(self, small_longhorn):
        def tail_fraction(rate, seed_offset):
            counts = []
            for i in range(4):
                result = simulate_run(
                    small_longhorn, _workload(rate, n_gpus=4),
                    day=0, run_index=seed_offset + i,
                )
                med = np.median(result.performance_ms)
                counts.append((result.performance_ms > 1.7 * med).mean())
            return float(np.mean(counts))

        rare = tail_fraction(0.02, 0)
        common = tail_fraction(0.30, 100)
        assert common > rare
