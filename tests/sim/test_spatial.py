"""Tests for spatial/temporal interference effects (Section VII extension)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.spatial import (
    NEIGHBOR_COUPLING_C_PER_W,
    simulate_with_neighbors,
    spatial_penalty,
    temporal_soak_slowdown,
)
from repro.workloads import lammps_reaxc, resnet50, sgemm


class TestSpatial:
    def test_result_shapes(self, small_longhorn):
        result = simulate_with_neighbors(small_longhorn, sgemm())
        assert result.probe_gpu_indices.shape[0] == small_longhorn.n_nodes
        assert result.performance_idle_ms.shape == result.slowdown.shape

    def test_neighbors_preheat_air_cooled_probes(self, small_longhorn):
        result = simulate_with_neighbors(small_longhorn, sgemm())
        preheat = result.temperature_shared_c - result.temperature_idle_c
        assert np.median(preheat) > 3.0
        assert np.median(result.slowdown) >= 1.0

    def test_air_couples_more_than_water(self, small_longhorn, small_vortex):
        air = spatial_penalty(small_longhorn, sgemm())
        water = spatial_penalty(small_vortex, sgemm())
        assert air["median_preheat_c"] > water["median_preheat_c"]
        assert air["median_slowdown"] >= water["median_slowdown"]

    def test_idle_neighbors_are_the_exclusive_protocol(self, small_longhorn):
        """With activity 0 the 'shared' case collapses to the idle one."""
        result = simulate_with_neighbors(
            small_longhorn, sgemm(), neighbor_activity=0.02,
            neighbor_dram=0.02,
        )
        np.testing.assert_allclose(
            result.performance_shared_ms, result.performance_idle_ms,
            rtol=0.02,
        )

    def test_hotter_neighbors_hurt_more(self, small_longhorn):
        light = spatial_penalty(small_longhorn, sgemm(), neighbor_activity=0.3)
        heavy = spatial_penalty(small_longhorn, sgemm(), neighbor_activity=0.9)
        assert heavy["median_preheat_c"] > light["median_preheat_c"]

    def test_multi_gpu_workload_rejected(self, small_longhorn):
        with pytest.raises(SimulationError):
            simulate_with_neighbors(small_longhorn, resnet50())

    def test_coupling_table_ordering(self):
        assert (NEIGHBOR_COUPLING_C_PER_W["air"]
                > NEIGHBOR_COUPLING_C_PER_W["oil"]
                > NEIGHBOR_COUPLING_C_PER_W["water"])

    def test_deterministic(self, small_longhorn):
        a = simulate_with_neighbors(small_longhorn, sgemm(), run_index=3)
        b = simulate_with_neighbors(small_longhorn, sgemm(), run_index=3)
        np.testing.assert_array_equal(
            a.performance_shared_ms, b.performance_shared_ms
        )


class TestTemporal:
    def test_short_job_after_hot_job_is_slower(self, small_longhorn):
        slowdown = temporal_soak_slowdown(
            small_longhorn, sgemm(), idle_gap_s=5.0, job_duration_s=60.0
        )
        assert slowdown > 1.01

    def test_penalty_decays_with_gap(self, small_longhorn):
        short_gap = temporal_soak_slowdown(small_longhorn, sgemm(), 5.0, 60.0)
        long_gap = temporal_soak_slowdown(small_longhorn, sgemm(), 600.0, 60.0)
        assert short_gap > long_gap
        assert long_gap == pytest.approx(1.0, abs=0.01)

    def test_penalty_decays_with_duration(self, small_longhorn):
        short_job = temporal_soak_slowdown(small_longhorn, sgemm(), 5.0, 60.0)
        long_job = temporal_soak_slowdown(small_longhorn, sgemm(), 5.0, 3600.0)
        assert short_job > long_job
        assert long_job == pytest.approx(1.0, abs=0.01)

    def test_memory_bound_immune(self, small_longhorn):
        slowdown = temporal_soak_slowdown(
            small_longhorn, lammps_reaxc(), 5.0, 60.0
        )
        assert slowdown == pytest.approx(1.0, abs=0.01)

    def test_validation(self, small_longhorn):
        with pytest.raises(Exception):
            temporal_soak_slowdown(small_longhorn, sgemm(), -1.0, 60.0)
        with pytest.raises(Exception):
            temporal_soak_slowdown(small_longhorn, sgemm(), 5.0, 0.0)
