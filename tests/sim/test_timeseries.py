"""Tests for continuous telemetry traces."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.timeseries import simulate_timeseries
from repro.workloads import sgemm


class TestTimeseries:
    def test_one_trace_per_gpu(self, tiny_cloudlab):
        traces = simulate_timeseries(
            tiny_cloudlab, sgemm(), np.array([0, 5]), duration_s=8.0
        )
        assert len(traces) == 2
        assert traces[0].label == tiny_cloudlab.topology.gpu_labels[0]

    def test_sampling_interval(self, tiny_cloudlab):
        traces = simulate_timeseries(
            tiny_cloudlab, sgemm(), np.array([0]), duration_s=5.0,
            sample_interval_s=0.2,
        )
        assert traces[0].interval_s == pytest.approx(0.2, rel=0.1)

    def test_kernel_markers_recorded(self, tiny_cloudlab):
        traces = simulate_timeseries(
            tiny_cloudlab, sgemm(), np.array([0]), duration_s=8.0
        )
        assert traces[0].kernel_starts_s.shape[0] >= 2

    def test_dvfs_transient_visible(self, tiny_cloudlab):
        """Fig. 11's shape: frequency rises at launch, then settles lower."""
        traces = simulate_timeseries(
            tiny_cloudlab, sgemm(), np.array([0]), duration_s=10.0,
            sample_interval_s=0.05,
        )
        f = traces[0].frequency_mhz
        assert f.max() > f[-1]           # initial boost above the settle point
        spec = tiny_cloudlab.spec
        assert f[-1] < spec.f_max_mhz    # settled below boost

    def test_power_approaches_tdp(self, tiny_cloudlab):
        traces = simulate_timeseries(
            tiny_cloudlab, sgemm(), np.array([0]), duration_s=10.0
        )
        p = traces[0].power_w
        assert p[-1] > 0.85 * tiny_cloudlab.spec.tdp_w

    def test_empty_selection_rejected(self, tiny_cloudlab):
        with pytest.raises(SimulationError):
            simulate_timeseries(
                tiny_cloudlab, sgemm(), np.array([]), duration_s=1.0
            )

    def test_power_limit_needs_admin(self, small_longhorn):
        with pytest.raises(SimulationError, match="administrative"):
            simulate_timeseries(
                small_longhorn, sgemm(), np.array([0]), duration_s=1.0,
                power_limit_w=100.0,
            )
