"""Serial ≡ parallel equivalence harness for the sharded campaign executor.

The parallel executor is only trustworthy because these tests hold: for
every cluster preset, for workers ∈ {1, 2, 4}, for both shard shapes
(whole-run shards and forced within-run GPU shards), the campaign dataset
is **exactly** equal to the serial execution — every column, including the
``true_*`` ground truth, compared with ``np.array_equal`` / object
equality, not tolerances.

Serial references are computed once per (preset, shard shape) and cached
for the session; each parametrized case re-executes only the parallel
side.  The cross-preset matrix is marked ``slow`` so the quick loop
(``pytest -m "not slow"``) keeps a single-preset smoke test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim import CampaignConfig, ParallelConfig, run_campaign
from repro.workloads import resnet50, sgemm
from repro.workloads.sgemm import SGEMM_N_AMD

#: Small but multi-day, multi-run, partial-coverage: exercises the per-day
#: coverage draw, the run loop, and the merge order all at once.
EQUIV_CONFIG = CampaignConfig(days=2, runs_per_day=2, coverage=0.9)

#: Forces several GPU shards per run even on the small test clusters.
FORCED_SHARD_GPUS = 24

PRESET_FIXTURES = (
    "small_longhorn",
    "small_summit",
    "small_vortex",
    "small_frontera",
    "small_corona",
    "tiny_cloudlab",
)

WORKER_COUNTS = (1, 2, 4)
SHARD_SHAPES = ("whole-run", "gpu-sharded")


def _shape_config(shape: str, workers: int | None) -> ParallelConfig:
    if shape == "gpu-sharded":
        return ParallelConfig(
            workers=workers, max_gpus_per_shard=FORCED_SHARD_GPUS
        )
    return ParallelConfig(workers=workers)


def _workload_for(cluster):
    # Corona is the AMD machine; run its Table-II matrix size so the
    # dither path (the only RNG consumer inside solve_steady) is covered.
    if cluster.name == "Corona":
        return sgemm(n=SGEMM_N_AMD)
    return sgemm()


@pytest.fixture(scope="session")
def serial_reference_cache():
    return {}


@pytest.fixture(params=PRESET_FIXTURES)
def preset_cluster(request):
    return request.getfixturevalue(request.param)


def serial_reference(cache, cluster, shape):
    key = (cluster.name, shape)
    if key not in cache:
        cache[key] = run_campaign(
            cluster,
            _workload_for(cluster),
            EQUIV_CONFIG,
            parallel=_shape_config(shape, workers=None),
        )
    return cache[key]


def assert_datasets_identical(serial, parallel):
    assert serial.column_names == parallel.column_names
    assert serial.n_rows == parallel.n_rows
    for name in serial.column_names:
        a, b = serial[name], parallel[name]
        assert a.dtype == b.dtype, f"column {name!r} dtype differs"
        assert np.array_equal(a, b), f"column {name!r} differs"


def test_smoke_longhorn_workers_4(small_longhorn, serial_reference_cache):
    """Quick-loop guard: the acceptance-criterion call shape, one preset."""
    serial = serial_reference(serial_reference_cache, small_longhorn,
                              "whole-run")
    parallel = run_campaign(
        small_longhorn, sgemm(), EQUIV_CONFIG, workers=4
    )
    assert_datasets_identical(serial, parallel)


@pytest.mark.slow
@pytest.mark.parametrize("shape", SHARD_SHAPES)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_parallel_equals_serial_on_every_preset(
    preset_cluster, workers, shape, serial_reference_cache
):
    serial = serial_reference(serial_reference_cache, preset_cluster, shape)
    parallel = run_campaign(
        preset_cluster,
        _workload_for(preset_cluster),
        EQUIV_CONFIG,
        parallel=_shape_config(shape, workers=workers),
    )
    assert_datasets_identical(serial, parallel)


@pytest.mark.slow
def test_thread_backend_equals_serial(small_longhorn, serial_reference_cache):
    serial = serial_reference(serial_reference_cache, small_longhorn,
                              "gpu-sharded")
    threaded = run_campaign(
        small_longhorn,
        sgemm(),
        EQUIV_CONFIG,
        parallel=ParallelConfig(
            workers=4, backend="thread", max_gpus_per_shard=FORCED_SHARD_GPUS
        ),
    )
    assert_datasets_identical(serial, threaded)


@pytest.mark.slow
def test_multi_gpu_workload_sharded_equivalence(small_longhorn):
    """Bulk-synchronous jobs must never straddle shard boundaries."""
    config = CampaignConfig(days=1, runs_per_day=2)
    serial = run_campaign(
        small_longhorn, resnet50(), config,
        parallel=ParallelConfig(max_gpus_per_shard=FORCED_SHARD_GPUS),
    )
    parallel = run_campaign(
        small_longhorn, resnet50(), config,
        parallel=ParallelConfig(
            workers=4, max_gpus_per_shard=FORCED_SHARD_GPUS
        ),
    )
    assert_datasets_identical(serial, parallel)


@pytest.mark.slow
def test_power_limit_campaign_equivalence(tiny_cloudlab):
    """The admin-access path (Section VI-B) parallelizes exactly too."""
    config = CampaignConfig(days=2, runs_per_day=3, power_limit_w=200.0)
    serial = run_campaign(tiny_cloudlab, sgemm(), config)
    parallel = run_campaign(tiny_cloudlab, sgemm(), config, workers=2)
    assert_datasets_identical(serial, parallel)
