"""Batched job pricing is draw-for-draw identical to one-job-at-a-time.

The indexed engine prices a whole dispatch round through
:func:`~repro.sim.job.sample_job_runtimes`; byte-identical event logs
require that the batch reproduce the sequential
:func:`~repro.sim.job.sample_job_runtime` results *bitwise* — every job's
draws come from its own private stream, so batching order and batch
composition must be unobservable.
"""

import numpy as np
import pytest

from repro.cluster import get_preset
from repro.sim.job import (
    JobPricingRequest,
    reference_unit_times,
    sample_job_runtime,
    sample_job_runtimes,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def cluster():
    return get_preset("longhorn", seed=11, scale=0.25)


def _rng(cluster, job_id):
    return cluster.rng_factory.child(f"sched-job-{job_id}").generator("run")


def _requests(cluster):
    """A mixed round: widths 1/2/4/8, several workloads, one shared node."""
    shapes = [
        ("sgemm", [5], 50),
        ("resnet50", [8, 9], 40),
        ("pagerank", [12, 13, 14, 15], 80),
        ("bert", [16, 17, 18, 19, 20, 21, 22, 23], 30),  # spans 2 nodes
        ("lammps", [6], 90),  # shares node 1 with job 0's neighborhood
    ]
    return [
        JobPricingRequest(
            workload=get_workload(name),
            gpu_indices=np.asarray(gpus, dtype=np.int64),
            work_units=units,
            rng=_rng(cluster, job_id),
        )
        for job_id, (name, gpus, units) in enumerate(shapes)
    ]


def _assert_bitwise_equal(batch, singles):
    assert len(batch) == len(singles)
    for got, want in zip(batch, singles):
        assert got.runtime_s == want.runtime_s
        assert got.job_unit_ms == want.job_unit_ms
        assert got.energy_j == want.energy_j
        assert got.gang_imbalance == want.gang_imbalance
        assert got.n_gpus == want.n_gpus


class TestBatchEqualsSequential:
    @pytest.mark.parametrize("day", (0, 3))
    def test_mixed_round_bitwise(self, cluster, day):
        batch = sample_job_runtimes(cluster, _requests(cluster), day=day)
        singles = [
            sample_job_runtime(
                cluster,
                request.workload,
                request.gpu_indices,
                day=day,
                work_units=request.work_units,
                rng=_rng(cluster, job_id),
            )
            for job_id, request in enumerate(_requests(cluster))
        ]
        _assert_bitwise_equal(batch, singles)

    def test_singleton_batch_bitwise(self, cluster):
        request = _requests(cluster)[2]
        batch = sample_job_runtimes(cluster, [request], day=1)
        single = sample_job_runtime(
            cluster, request.workload, request.gpu_indices, day=1,
            work_units=request.work_units, rng=_rng(cluster, 2),
        )
        _assert_bitwise_equal(batch, [single])

    def test_batch_composition_is_unobservable(self, cluster):
        """A job prices the same whether batched with 0 or 4 neighbors."""
        alone = sample_job_runtimes(cluster, [_requests(cluster)[1]], day=0)
        together = sample_job_runtimes(cluster, _requests(cluster), day=0)
        _assert_bitwise_equal([together[1]], alone)

    def test_empty_round(self, cluster):
        assert sample_job_runtimes(cluster, [], day=0) == []

    def test_dither_fleet_falls_back_bitwise(self):
        """AMD presets dither the DVFS controller (solver draws consume an
        rng), so batching must take the sequential fallback — and still
        equal the one-at-a-time path exactly."""
        corona = get_preset("corona", seed=11, scale=0.1)
        workload = get_workload("sgemm-amd")
        requests = [
            JobPricingRequest(
                workload=workload,
                gpu_indices=np.asarray(gpus, dtype=np.int64),
                work_units=25,
                rng=_rng(corona, job_id),
            )
            for job_id, gpus in enumerate(([0], [2, 3]))
        ]
        batch = sample_job_runtimes(corona, requests, day=0)
        singles = [
            sample_job_runtime(
                corona, workload, request.gpu_indices, day=0,
                work_units=25, rng=_rng(corona, job_id),
            )
            for job_id, request in enumerate(requests)
        ]
        _assert_bitwise_equal(batch, singles)


class TestSolverPassthrough:
    @pytest.mark.parametrize("name", ("sgemm", "pagerank"))
    def test_fleet_solver_reference_times_bitwise(self, cluster, name):
        workload = get_workload(name)
        default = reference_unit_times(cluster, workload, day=2)
        fleet = reference_unit_times(
            cluster, workload, day=2, solver="fleet"
        )
        np.testing.assert_array_equal(default, fleet)
