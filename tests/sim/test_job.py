"""Tests for per-job runtime sampling (the scheduler's pricing model)."""

import numpy as np
import pytest

from repro.cluster import get_preset
from repro.errors import SimulationError
from repro.sim.job import (
    DEFAULT_SYNC_OVERHEAD_MS,
    reference_unit_times,
    sample_job_runtime,
)
from repro.workloads import get_workload


@pytest.fixture(scope="module")
def cluster():
    return get_preset("longhorn", seed=11, scale=0.25)


@pytest.fixture(scope="module")
def sgemm():
    return get_workload("sgemm")


def _job_rng(cluster, job_id):
    return cluster.rng_factory.child(f"sched-job-{job_id}").generator("run")


class TestReferenceUnitTimes:
    def test_shape_and_positivity(self, cluster, sgemm):
        ref = reference_unit_times(cluster, sgemm)
        assert ref.shape == (cluster.topology.n_gpus,)
        assert np.all(ref > 0)

    def test_deterministic(self, cluster, sgemm):
        a = reference_unit_times(cluster, sgemm, day=2)
        b = reference_unit_times(cluster, sgemm, day=2)
        np.testing.assert_array_equal(a, b)

    def test_varies_across_fleet(self, cluster, sgemm):
        ref = reference_unit_times(cluster, sgemm)
        assert ref.max() > ref.min()


class TestSampleJobRuntime:
    def test_single_gpu_job(self, cluster, sgemm):
        perf = sample_job_runtime(
            cluster, sgemm, np.asarray([5]), work_units=50,
            rng=_job_rng(cluster, 0),
        )
        assert perf.n_gpus == 1
        assert perf.runtime_s == pytest.approx(
            perf.job_unit_ms * 50 / 1000.0
        )
        assert perf.gang_imbalance == pytest.approx(1.0)
        assert perf.energy_j > 0

    def test_gang_is_gated_by_slowest_member(self, cluster, sgemm):
        perf = sample_job_runtime(
            cluster, sgemm, np.arange(4), work_units=50,
            rng=_job_rng(cluster, 1),
        )
        assert perf.job_unit_ms > perf.unit_time_ms.max()
        assert perf.gang_imbalance >= 1.0

    def test_multi_node_gang_pays_more_sync(self, cluster, sgemm):
        same_seed = lambda: _job_rng(cluster, 2)  # noqa: E731
        one_node = sample_job_runtime(
            cluster, sgemm, np.arange(4), work_units=50, rng=same_seed()
        )
        # same four GPU count, spanning two nodes (4 GPUs/node preset)
        two_node = sample_job_runtime(
            cluster, sgemm, np.asarray([0, 1, 4, 5]), work_units=50,
            rng=same_seed(),
        )
        # sync overhead grows with spanned nodes; the drawn members differ,
        # so compare the sync term indirectly via the model constant
        assert DEFAULT_SYNC_OVERHEAD_MS > 0
        assert two_node.job_unit_ms > 0 and one_node.job_unit_ms > 0

    def test_same_rng_stream_reproduces_exactly(self, cluster, sgemm):
        a = sample_job_runtime(
            cluster, sgemm, np.arange(4), work_units=50,
            rng=_job_rng(cluster, 3),
        )
        b = sample_job_runtime(
            cluster, sgemm, np.arange(4), work_units=50,
            rng=_job_rng(cluster, 3),
        )
        assert a.job_unit_ms == b.job_unit_ms
        assert a.energy_j == b.energy_j
        np.testing.assert_array_equal(a.unit_time_ms, b.unit_time_ms)

    def test_different_jobs_draw_differently(self, cluster, sgemm):
        a = sample_job_runtime(
            cluster, sgemm, np.arange(4), work_units=50,
            rng=_job_rng(cluster, 4),
        )
        b = sample_job_runtime(
            cluster, sgemm, np.arange(4), work_units=50,
            rng=_job_rng(cluster, 5),
        )
        assert a.job_unit_ms != b.job_unit_ms

    def test_work_units_scale_runtime_linearly(self, cluster, sgemm):
        short = sample_job_runtime(
            cluster, sgemm, np.arange(2), work_units=10,
            rng=_job_rng(cluster, 6),
        )
        long = sample_job_runtime(
            cluster, sgemm, np.arange(2), work_units=100,
            rng=_job_rng(cluster, 6),
        )
        assert long.runtime_s == pytest.approx(10 * short.runtime_s)

    def test_empty_gang_rejected(self, cluster, sgemm):
        with pytest.raises(SimulationError):
            sample_job_runtime(
                cluster, sgemm, np.asarray([], dtype=np.int64),
                rng=_job_rng(cluster, 7),
            )

    def test_bad_work_units_rejected(self, cluster, sgemm):
        with pytest.raises(SimulationError):
            sample_job_runtime(
                cluster, sgemm, np.asarray([0]), work_units=0,
                rng=_job_rng(cluster, 8),
            )
