"""Edge cases of the sharded campaign executor (beyond equivalence).

The serial/parallel equivalence matrix lives in
``test_parallel_equivalence.py``; here we pin the executor's contract:
backend resolution, shard planning, degenerate worker counts, coverage
re-sampling, progress accounting, and error propagation with shard
context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigError, SimulationError
from repro.sim import CampaignConfig, ParallelConfig, plan_shards, run_campaign
from repro.sim import parallel as parallel_mod
from repro.telemetry import CampaignProgress
from repro.workloads import sgemm


def assert_datasets_identical(a, b):
    assert a.column_names == b.column_names
    for name in a.column_names:
        assert np.array_equal(a[name], b[name]), f"column {name!r} differs"


class TestParallelConfig:
    def test_defaults(self):
        cfg = ParallelConfig()
        assert cfg.effective_workers == 1
        assert cfg.resolved_backend() == "serial"
        assert cfg.max_gpus_per_shard == parallel_mod.DEFAULT_MAX_GPUS_PER_SHARD

    def test_auto_backend_picks_process_for_fanout(self):
        assert ParallelConfig(workers=4).resolved_backend() == "process"

    def test_workers_1_resolves_to_serial(self):
        assert ParallelConfig(workers=1).resolved_backend() == "serial"

    def test_explicit_backend_wins(self):
        cfg = ParallelConfig(workers=4, backend="serial")
        assert cfg.resolved_backend() == "serial"
        cfg = ParallelConfig(workers=2, backend="thread")
        assert cfg.resolved_backend() == "thread"

    def test_validation(self):
        with pytest.raises(ConfigError):
            ParallelConfig(workers=0)
        with pytest.raises(ConfigError):
            ParallelConfig(backend="gpu")
        with pytest.raises(ConfigError):
            ParallelConfig(max_gpus_per_shard=0)

    def test_workers_and_parallel_are_exclusive(self, small_longhorn):
        with pytest.raises(ConfigError):
            run_campaign(
                small_longhorn, sgemm(), CampaignConfig(days=1),
                workers=2, parallel=ParallelConfig(workers=2),
            )


class TestShardPlan:
    def test_single_shard_by_default(self, small_longhorn):
        tasks = plan_shards(
            small_longhorn, sgemm(), CampaignConfig(days=2, runs_per_day=3)
        )
        assert len(tasks) == 6  # days x runs, one shard each
        assert all(t.n_shards == 1 for t in tasks)
        assert all(t.n_gpus == small_longhorn.n_gpus for t in tasks)

    def test_sharding_is_node_aligned_and_complete(self, small_longhorn):
        width = small_longhorn.topology.gpus_per_node
        parallel = ParallelConfig(max_gpus_per_shard=3 * width - 1)
        tasks = plan_shards(
            small_longhorn, sgemm(), CampaignConfig(days=1), parallel
        )
        assert len(tasks) > 1
        for task in tasks:
            assert task.n_gpus % width == 0
            assert task.n_gpus <= 2 * width
        merged = np.concatenate([t.gpu_indices for t in tasks])
        np.testing.assert_array_equal(
            merged, np.arange(small_longhorn.n_gpus)
        )

    def test_plan_is_independent_of_workers(self, small_longhorn):
        config = CampaignConfig(days=2, coverage=0.5)
        plans = [
            plan_shards(
                small_longhorn, sgemm(), config,
                ParallelConfig(workers=w, max_gpus_per_shard=16),
            )
            for w in (None, 2, 8)
        ]
        for other in plans[1:]:
            assert len(other) == len(plans[0])
            for a, b in zip(plans[0], other):
                assert (a.day, a.run_index, a.shard_index, a.n_shards) == (
                    b.day, b.run_index, b.shard_index, b.n_shards
                )
                np.testing.assert_array_equal(a.gpu_indices, b.gpu_indices)

    def test_node_wider_than_bound_becomes_singleton_shard(self, small_longhorn):
        parallel = ParallelConfig(max_gpus_per_shard=1)
        tasks = plan_shards(
            small_longhorn, sgemm(), CampaignConfig(days=1), parallel
        )
        width = small_longhorn.topology.gpus_per_node
        assert all(t.n_gpus == width for t in tasks)


class TestExecutorEdgeCases:
    def test_workers_1_never_builds_a_pool(self, small_longhorn, monkeypatch):
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("workers=1 must stay on the serial path")

        monkeypatch.setattr(parallel_mod, "_make_executor", boom)
        ds = run_campaign(
            small_longhorn, sgemm(), CampaignConfig(days=1), workers=1
        )
        assert ds.n_rows == small_longhorn.n_gpus

    def test_worker_count_exceeding_shard_count(self, small_longhorn):
        config = CampaignConfig(days=1, runs_per_day=1)
        serial = run_campaign(small_longhorn, sgemm(), config)
        wide = run_campaign(small_longhorn, sgemm(), config, workers=16)
        assert_datasets_identical(serial, wide)

    def test_partial_coverage_resamples_per_day(self, small_longhorn):
        config = CampaignConfig(days=2, runs_per_day=1, coverage=0.5)
        parallel = run_campaign(
            small_longhorn, sgemm(), config, workers=2
        )
        serial = run_campaign(small_longhorn, sgemm(), config)
        assert_datasets_identical(serial, parallel)
        day0 = set(parallel.where(day=0)["node_label"])
        day1 = set(parallel.where(day=1)["node_label"])
        assert day0 != day1  # the coverage draw is per-day, not per-campaign

    def test_worker_error_propagates_with_shard_context(self, small_longhorn):
        # Longhorn grants no admin access, so the power limit makes every
        # shard's simulate_run raise inside the worker process.
        config = CampaignConfig(days=2, power_limit_w=200.0)
        with pytest.raises(SimulationError) as excinfo:
            run_campaign(small_longhorn, sgemm(), config, workers=2)
        message = str(excinfo.value)
        assert "campaign shard failed" in message
        assert "day=" in message and "run=" in message
        assert "administrative access" in message  # original cause retained

    def test_serial_error_carries_the_same_context(self, small_longhorn):
        config = CampaignConfig(days=1, power_limit_w=200.0)
        with pytest.raises(SimulationError, match="campaign shard failed"):
            run_campaign(small_longhorn, sgemm(), config)


class TestProgress:
    def test_counters_and_timings(self, small_longhorn):
        progress = CampaignProgress()
        config = CampaignConfig(days=2, runs_per_day=2)
        ds = run_campaign(
            small_longhorn, sgemm(), config, workers=2, progress=progress
        )
        assert progress.total_shards == 4
        assert progress.n_done == 4
        assert progress.rows_done == ds.n_rows
        assert progress.shard_seconds > 0.0
        assert progress.wall_seconds > 0.0
        assert all(t.duration_s > 0.0 for t in progress.timings)
        assert "4/4 shards" in progress.summary()

    def test_on_shard_callback_fires_per_shard(self, small_longhorn):
        seen = []
        progress = CampaignProgress(on_shard=seen.append)
        run_campaign(
            small_longhorn, sgemm(), CampaignConfig(days=3),
            progress=progress,
        )
        assert len(seen) == 3
        assert {t.day for t in seen} == {0, 1, 2}
        assert all("GPUs in" in t.describe() for t in seen)

    def test_sharded_timings_identify_shards(self, small_longhorn):
        progress = CampaignProgress()
        run_campaign(
            small_longhorn, sgemm(), CampaignConfig(days=1),
            parallel=ParallelConfig(workers=2, max_gpus_per_shard=16),
            progress=progress,
        )
        timings = progress.timings
        assert len(timings) > 1
        assert all(t.n_shards == len(timings) for t in timings)
        assert sorted(t.shard_index for t in timings) == list(
            range(len(timings))
        )
