"""Tests for unit helpers."""

from hypothesis import given, strategies as st

from repro import units


def test_ms_roundtrip():
    assert units.ms_to_s(1500.0) == 1.5
    assert units.s_to_ms(1.5) == 1500.0


@given(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False))
def test_ms_s_inverse(x):
    assert abs(units.s_to_ms(units.ms_to_s(x)) - x) < 1e-6


def test_mhz_to_hz():
    assert units.mhz_to_hz(1530.0) == 1.53e9


def test_hours_to_s():
    assert units.hours_to_s(2.0) == 7200.0


@given(st.floats(min_value=-200, max_value=2000, allow_nan=False))
def test_celsius_kelvin_inverse(c):
    assert abs(units.kelvin_to_celsius(units.celsius_to_kelvin(c)) - c) < 1e-9


def test_reference_temperatures_ordering():
    assert units.CHILLED_WATER_C < units.ROOM_AIR_SUPPLY_C
    assert units.LEAKAGE_REFERENCE_C > 0
