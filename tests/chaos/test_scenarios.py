"""The incident scenario catalog: schema validation, round-trips, lookup."""

import pytest

from repro.chaos import (
    SCENARIO_SCHEMA,
    SCENARIOS,
    Scenario,
    get_scenario,
    list_scenarios,
    scenario_from_dict,
    scenario_to_dict,
    validate_scenario,
)
from repro.errors import ConfigError

CATALOG = (
    "cascading-thermal",
    "maintenance-window",
    "power-emergency",
    "pump-degradation",
    "stuck-pstate-cabinet",
    "summer-heatwave",
)


class TestCatalog:
    def test_ships_the_six_incidents(self):
        assert list_scenarios() == CATALOG
        assert set(SCENARIOS) == set(CATALOG)

    def test_every_entry_is_schema_valid_and_round_trips(self):
        for name in list_scenarios():
            scenario = get_scenario(name)
            doc = scenario_to_dict(scenario)
            validate_scenario(doc)
            assert scenario_from_dict(doc) == scenario

    def test_unknown_name_lists_the_catalog(self):
        with pytest.raises(ConfigError, match="pump-degradation"):
            get_scenario("volcano")

    def test_fault_labels_are_positional_and_stable(self):
        scenario = get_scenario("cascading-thermal")
        labels = scenario.fault_labels()
        assert labels[0] == "fault-00-coolant_pump_degradation"
        assert len(labels) == len(scenario.faults)
        assert len(set(labels)) == len(labels)


class TestScenarioValidation:
    def test_needs_at_least_one_fault(self):
        with pytest.raises(ConfigError, match="at least one fault"):
            Scenario(name="idle", description="nothing happens", faults=())

    def test_needs_a_name_and_description(self):
        faults = get_scenario("pump-degradation").faults
        with pytest.raises(ConfigError):
            Scenario(name="", description="d", faults=faults)
        with pytest.raises(ConfigError):
            Scenario(name="n", description="", faults=faults)

    def test_from_dict_rejects_missing_fields(self):
        doc = scenario_to_dict(get_scenario("pump-degradation"))
        del doc["description"]
        with pytest.raises(ConfigError):
            scenario_from_dict(doc)

    def test_from_dict_rejects_wrong_schema_version(self):
        doc = scenario_to_dict(get_scenario("pump-degradation"))
        doc["schema_version"] = 99
        with pytest.raises(ConfigError):
            scenario_from_dict(doc)

    def test_from_dict_revalidates_fault_specs(self):
        doc = scenario_to_dict(get_scenario("summer-heatwave"))
        doc["faults"][1]["power_cap_frac"] = 2.0
        with pytest.raises(ConfigError):
            scenario_from_dict(doc)

    def test_schema_requires_the_catalog_fields(self):
        assert SCENARIO_SCHEMA["required"] == [
            "schema_version", "name", "description", "faults",
        ]
