"""End-to-end scoring: scorecards, the chaos timeline, replay, facade."""

import dataclasses

import pytest

from repro.api import ChaosRequest, chaos, execute_request
from repro.chaos import (
    get_scenario,
    score_scenario,
    validate_scorecard,
)
from repro.errors import ConfigError
from repro.obs.replay import TimelineReplayer, load_replayer
from repro.obs.timeline import (
    TimelineRecorder,
    canonical_json,
    timeline_lines,
    write_timeline,
)
from repro.service.wire import build_response, validate_response

#: One fast shape shared by every run in this module.
SMALL = dict(cluster_name="longhorn", seed=2022, scale=0.25, days=6,
             runs_per_day=2, n_jobs=12)


def run_scenario(name="cascading-thermal", **over):
    kwargs = {**SMALL, **over}
    timeline = kwargs.pop("timeline", None)
    return score_scenario(get_scenario(name), timeline=timeline, **kwargs)


@pytest.fixture(scope="module")
def scored():
    """One recorded cascading-thermal run: (result, timeline)."""
    timeline = TimelineRecorder()
    return run_scenario(timeline=timeline, workers=1), timeline


class TestScorecard:
    def test_scorecard_is_schema_valid(self, scored):
        result, _ = scored
        validate_scorecard(result.scorecard)

    def test_detection_accounts_for_every_detectable_fault(self, scored):
        result, _ = scored
        det = result.scorecard["detection"]
        detectable = sum(
            1 for f in result.scorecard["faults"] if f["detectable"]
        )
        assert detectable == 3
        assert det["detected"] + det["missed"] == detectable
        assert det["detected"] >= 1
        assert set(det["latency_days"]) == set(
            result.scenario.fault_labels()
        )
        for fault in result.scorecard["faults"]:
            latency = det["latency_days"][fault["label"]]
            if not fault["detectable"]:
                assert latency is None
            elif latency is not None:
                assert latency >= 0

    def test_campaign_section_compares_against_baseline(self, scored):
        result, _ = scored
        camp = result.scorecard["campaign"]
        assert camp["rows"] == camp["rows_baseline"]  # no node loss here
        assert camp["perf_delta_frac"] == pytest.approx(
            camp["perf_p50_ms"] / camp["perf_p50_baseline_ms"] - 1.0
        )

    def test_render_summarizes_the_incident(self, scored):
        result, _ = scored
        text = result.render()
        assert "cascading-thermal" in text
        assert "detected=" in text
        assert "fault-00-coolant_pump_degradation" in text

    def test_node_loss_shrinks_the_faulted_campaign(self):
        result = run_scenario("stuck-pstate-cabinet", days=6)
        camp = result.scorecard["campaign"]
        assert camp["rows"] < camp["rows_baseline"]
        det = result.scorecard["detection"]
        # Node loss is undetectable by construction.
        assert det["latency_days"]["fault-01-node_loss"] is None


class TestDeterminism:
    def test_scorecard_and_timeline_are_worker_independent(self, scored):
        result_w1, timeline_w1 = scored
        timeline_w2 = TimelineRecorder()
        result_w2 = run_scenario(timeline=timeline_w2, workers=2)
        assert (canonical_json(result_w2.scorecard)
                == canonical_json(result_w1.scorecard))
        assert timeline_lines(timeline_w2) == timeline_lines(timeline_w1)

    def test_scorecard_is_solver_independent(self, scored):
        result_default, _ = scored
        result_fleet = run_scenario(solver="fleet", workers=2)
        assert (canonical_json(result_fleet.scorecard)
                == canonical_json(result_default.scorecard))


class TestChaosTimeline:
    def test_events_declare_the_scenario_before_the_campaign(self, scored):
        _, timeline = scored
        events = timeline.events()
        assert events[0].layer == "chaos"
        assert events[0].kind == "scenario_begin"
        onsets = [e for e in events if e.kind == "fault_onset"]
        assert [e.entity for e in onsets] == list(
            get_scenario("cascading-thermal").fault_labels()
        )
        assert events[-1].kind == "chaos_scorecard"

    def test_replay_check_rederives_the_detection_claims(self, scored):
        _, timeline = scored
        checks = TimelineReplayer(timeline.events()).check()
        assert checks and all(c.ok for c in checks)
        assert any("chaos_scorecard" in c.name for c in checks)

    def test_tampered_detection_claim_fails_closed(self, scored):
        _, timeline = scored
        events = list(timeline.events())
        claim = events[-1]
        assert claim.kind == "chaos_scorecard"
        payload = tuple(
            (key, value + 1 if key == "detected" else value)
            for key, value in claim.payload
        )
        events[-1] = dataclasses.replace(claim, payload=payload)
        checks = TimelineReplayer(tuple(events)).check()
        bad = [c for c in checks if "chaos_scorecard" in c.name]
        assert bad and not bad[0].ok

    def test_round_trips_through_the_jsonl_file(self, scored, tmp_path):
        _, timeline = scored
        path = tmp_path / "chaos.jsonl"
        write_timeline(timeline, path)
        replayer = load_replayer(path)
        assert replayer.events == timeline.events()
        assert all(c.ok for c in replayer.check())
        assert replayer.layer("chaos")
        with pytest.raises(ValueError, match="unknown layer"):
            replayer.layer("weather")


class TestFacadeAndWire:
    REQUEST = ChaosRequest(scenario="pump-degradation", seed=2022,
                           scale=0.25, days=4, runs_per_day=1, n_jobs=8)

    @pytest.fixture(scope="class")
    def dispatched(self):
        return execute_request(self.REQUEST)

    def test_execute_request_returns_a_valid_scorecard(self, dispatched):
        validate_scorecard(dispatched.scorecard)
        assert dispatched.scorecard["scenario"] == "pump-degradation"
        assert dispatched.scorecard["days"] == 4

    def test_wire_response_carries_the_scorecard(self, dispatched):
        payload = build_response(self.REQUEST, dispatched)
        assert validate_response(payload) == "chaos"
        assert payload["scorecard"] == dispatched.scorecard

    def test_request_and_kwargs_are_mutually_exclusive(self):
        with pytest.raises(ConfigError, match="request="):
            chaos(request=self.REQUEST, scenario="pump-degradation")

    def test_chaos_needs_a_scenario(self):
        with pytest.raises(ConfigError):
            chaos()

    def test_request_validates_eagerly(self):
        with pytest.raises(ConfigError):
            ChaosRequest(days=0)
        with pytest.raises(ConfigError):
            ChaosRequest(scenario="")
