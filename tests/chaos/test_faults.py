"""Fault specs: schedule math, eager validation, dict round-trips."""

import pytest

from repro.chaos import (
    FAULT_KINDS,
    CoolantPumpDegradation,
    FaultSchedule,
    InletTemperatureDrift,
    NodeLoss,
    PowerCapDirective,
    StuckPState,
    fault_from_dict,
    fault_to_dict,
)
from repro.errors import ConfigError


class TestFaultSchedule:
    def test_step_onset(self):
        s = FaultSchedule(onset_day=3)
        assert [s.severity(d) for d in range(6)] == [0.0, 0.0, 0.0, 1.0, 1.0, 1.0]
        assert not s.active(2)
        assert s.active(3)

    def test_linear_ramp_reaches_full_severity(self):
        s = FaultSchedule(onset_day=2, ramp_days=3)
        assert s.severity(1) == 0.0
        assert s.severity(2) == pytest.approx(0.25)
        assert s.severity(3) == pytest.approx(0.50)
        assert s.severity(5) == 1.0
        assert s.severity(500) == 1.0

    def test_recovery_day_is_exclusive(self):
        s = FaultSchedule(onset_day=1, recovery_day=4)
        assert s.active(3)
        assert s.severity(4) == 0.0
        assert not s.active(4)

    @pytest.mark.parametrize("kwargs", [
        dict(onset_day=-1),
        dict(onset_day=True),
        dict(onset_day=0, ramp_days=-2),
        dict(onset_day=3, recovery_day=3),
        dict(onset_day=3, recovery_day=1),
    ])
    def test_invalid_schedules_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            FaultSchedule(**kwargs)


#: One valid spec per fault family, used for round-trip tests.
SPECS = (
    CoolantPumpDegradation(FaultSchedule(onset_day=1, ramp_days=2),
                           coolant_rise_c=5.0),
    InletTemperatureDrift(FaultSchedule(onset_day=0), drift_c=4.0,
                          scope="row", index=1),
    StuckPState(FaultSchedule(onset_day=2, recovery_day=6),
                frequency_cap_frac=0.7, scope="cabinet", index=2),
    PowerCapDirective(FaultSchedule(onset_day=1), power_cap_frac=0.8),
    NodeLoss(FaultSchedule(onset_day=3), scope="node", index=4, count=2),
)


class TestFaultSpecs:
    def test_catalog_covers_five_families(self):
        assert sorted(FAULT_KINDS) == [
            "coolant_pump_degradation",
            "inlet_temperature_drift",
            "node_loss",
            "power_cap_directive",
            "stuck_pstate",
        ]

    def test_detectability_split(self):
        detectable = {k for k, cls in FAULT_KINDS.items() if cls.detectable}
        # Uniform caps and vanished nodes leave no relative outlier for the
        # Tukey-fence detector; everything else must be scoreable.
        assert detectable == {
            "coolant_pump_degradation",
            "inlet_temperature_drift",
            "stuck_pstate",
        }

    @pytest.mark.parametrize("fault", SPECS, ids=lambda f: f.kind)
    def test_dict_round_trip(self, fault):
        doc = fault_to_dict(fault)
        assert doc["kind"] == fault.kind
        assert fault_from_dict(doc) == fault

    @pytest.mark.parametrize("build", [
        lambda: CoolantPumpDegradation(FaultSchedule(0), coolant_rise_c=0.0),
        lambda: CoolantPumpDegradation(FaultSchedule(0), coolant_rise_c=99.0),
        lambda: InletTemperatureDrift(FaultSchedule(0), drift_c=4.0,
                                      scope="node"),
        lambda: StuckPState(FaultSchedule(0), frequency_cap_frac=1.5),
        lambda: StuckPState(FaultSchedule(0), frequency_cap_frac=0.5,
                            index=-1),
        lambda: PowerCapDirective(FaultSchedule(0), power_cap_frac=0.0),
        lambda: NodeLoss(FaultSchedule(0), count=0),
        lambda: NodeLoss(FaultSchedule(0), scope="row"),
    ])
    def test_invalid_specs_rejected(self, build):
        with pytest.raises(ConfigError):
            build()

    def test_from_dict_rejects_unknown_kind(self):
        with pytest.raises(ConfigError, match="unknown fault kind"):
            fault_from_dict({"kind": "gremlins",
                             "schedule": {"onset_day": 0}})

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            fault_from_dict({
                "kind": "node_loss",
                "schedule": {"onset_day": 0},
                "blast_radius": 3,
            })

    def test_from_dict_requires_a_schedule(self):
        with pytest.raises(ConfigError, match="schedule"):
            fault_from_dict({"kind": "power_cap_directive",
                             "power_cap_frac": 0.8})

    def test_to_dict_rejects_non_faults(self):
        with pytest.raises(ConfigError, match="not a fault spec"):
            fault_to_dict(FaultSchedule(onset_day=0))
