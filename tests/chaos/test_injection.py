"""Injection hooks: compiled plans, fleet effects, determinism guarantees."""

import numpy as np
import pytest

from repro.chaos import (
    CoolantPumpDegradation,
    FaultSchedule,
    InletTemperatureDrift,
    NodeLoss,
    PowerCapDirective,
    Scenario,
    StuckPState,
    compile_plan,
)
from repro.cluster import longhorn, summit
from repro.errors import ConfigError
from repro.sim import CampaignConfig, run_campaign
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

CONFIG = CampaignConfig(days=6, runs_per_day=1)


def fresh_cluster(scale=0.25, seed=11):
    """A private Longhorn instance (fixtures are shared; plans mutate)."""
    return longhorn(seed=seed, scale=scale)


def one_fault(fault) -> Scenario:
    return Scenario(name="probe", description="single-fault probe",
                    faults=(fault,))


def faulted_campaign(scenario, *, workers=1, scale=0.25, seed=11):
    cluster = fresh_cluster(scale=scale, seed=seed)
    cluster.set_fault_plan(compile_plan(scenario, cluster))
    return cluster, run_campaign(cluster, sgemm(), CONFIG, workers=workers)


@pytest.fixture(scope="module")
def baseline():
    return run_campaign(fresh_cluster(), sgemm(), CONFIG, workers=1)


class TestCompilePlan:
    def test_cabinet_scope_resolves_to_its_gpus(self):
        cluster = fresh_cluster()
        topo = cluster.topology
        plan = compile_plan(one_fault(StuckPState(
            FaultSchedule(onset_day=0), frequency_cap_frac=0.6,
            scope="cabinet", index=1,
        )), cluster)
        fault = plan.faults[0]
        nodes = np.flatnonzero(topo.cabinet_of_node == 1)
        np.testing.assert_array_equal(
            fault.gpu_indices,
            np.flatnonzero(np.isin(topo.node_of_gpu, nodes)),
        )
        assert fault.node_labels == tuple(topo.node_labels[i] for i in nodes)
        assert fault.lost_nodes == frozenset()

    def test_fleet_wide_faults_have_no_targets(self):
        cluster = fresh_cluster()
        plan = compile_plan(one_fault(PowerCapDirective(
            FaultSchedule(onset_day=0), power_cap_frac=0.8,
        )), cluster)
        assert plan.faults[0].gpu_indices is None
        assert plan.faults[0].node_labels == ()

    def test_row_scope_requires_a_grid_topology(self):
        drift = InletTemperatureDrift(FaultSchedule(onset_day=0),
                                      drift_c=4.0, scope="row", index=0)
        with pytest.raises(ConfigError, match="grid topology"):
            compile_plan(one_fault(drift), fresh_cluster())
        grid = summit(seed=11, scale=0.0625)
        plan = compile_plan(one_fault(drift), grid)
        assert plan.faults[0].gpu_indices.shape[0] > 0

    def test_out_of_range_index_rejected(self):
        cluster = fresh_cluster()
        fault = StuckPState(FaultSchedule(onset_day=0),
                            frequency_cap_frac=0.6, scope="node",
                            index=10_000)
        with pytest.raises(ConfigError, match="out of range"):
            compile_plan(one_fault(fault), cluster)

    def test_set_fault_plan_rejects_mismatched_topology(self):
        plan = compile_plan(one_fault(PowerCapDirective(
            FaultSchedule(onset_day=0), power_cap_frac=0.8,
        )), fresh_cluster(scale=0.25))
        other = fresh_cluster(scale=0.5)
        with pytest.raises(ConfigError, match="compiled for"):
            other.set_fault_plan(plan)


class TestPlanQueries:
    def test_effects_are_pure_functions_of_the_day(self):
        cluster = fresh_cluster()
        plan = compile_plan(one_fault(CoolantPumpDegradation(
            FaultSchedule(onset_day=2, ramp_days=1), coolant_rise_c=6.0,
        )), cluster)
        assert not plan.affects(1)
        assert plan.affects(2)
        np.testing.assert_allclose(plan.coolant_delta_c(2), 3.0)
        np.testing.assert_allclose(plan.coolant_delta_c(3), 6.0)
        assert plan.coolant_delta_c(1) is None
        assert plan.defect_multipliers(3) is None

    def test_overlapping_caps_compose_by_tighter_minimum(self):
        cluster = fresh_cluster()
        scenario = Scenario(
            name="double-cap", description="two stuck p-states overlap",
            faults=(
                StuckPState(FaultSchedule(onset_day=0),
                            frequency_cap_frac=0.8, scope="node", index=0),
                StuckPState(FaultSchedule(onset_day=0),
                            frequency_cap_frac=0.6, scope="cabinet", index=0),
            ),
        )
        plan = compile_plan(scenario, cluster)
        _, freq = plan.defect_multipliers(0)
        node0_gpus = np.flatnonzero(cluster.topology.node_of_gpu == 0)
        np.testing.assert_allclose(freq[node0_gpus], 0.6)

    def test_node_loss_does_not_mark_the_fleet_affected(self):
        cluster = fresh_cluster()
        plan = compile_plan(one_fault(NodeLoss(
            FaultSchedule(onset_day=1), scope="node", index=0,
        )), cluster)
        # Losing nodes changes the shard plan, never the day fleet.
        assert not plan.affects(1)
        assert plan.lost_nodes(0) == frozenset()
        assert plan.lost_nodes(1) == frozenset({0})


class TestCampaignEffects:
    def test_thermal_fault_perturbs_only_post_onset_days(self, baseline):
        _, faulted = faulted_campaign(one_fault(CoolantPumpDegradation(
            FaultSchedule(onset_day=3), coolant_rise_c=8.0,
        )))
        day = baseline.column("day")
        temp_base = baseline.column("temperature_c")
        temp_fault = faulted.column("temperature_c")
        np.testing.assert_array_equal(temp_fault[day < 3], temp_base[day < 3])
        assert (np.median(temp_fault[day >= 3])
                > np.median(temp_base[day >= 3]))

    def test_targeted_drift_leaves_other_cabinets_untouched(self, baseline):
        cluster, faulted = faulted_campaign(one_fault(InletTemperatureDrift(
            FaultSchedule(onset_day=0), drift_c=8.0, scope="cabinet", index=1,
        )))
        topo = cluster.topology
        targets = {
            topo.node_labels[i]
            for i in np.flatnonzero(topo.cabinet_of_node == 1)
        }
        hit = np.asarray([
            label in targets for label in faulted.column("node_label")
        ])
        temp_base = baseline.column("temperature_c")
        temp_fault = faulted.column("temperature_c")
        np.testing.assert_array_equal(temp_fault[~hit], temp_base[~hit])
        assert np.median(temp_fault[hit]) > np.median(temp_base[hit])
        assert not np.array_equal(temp_fault[hit], temp_base[hit])

    def test_node_loss_removes_rows_only_while_active(self, baseline):
        cluster, faulted = faulted_campaign(one_fault(NodeLoss(
            FaultSchedule(onset_day=2, recovery_day=4), scope="node", index=0,
        )))
        lost_label = cluster.topology.node_labels[0]
        day = faulted.column("day")
        node = faulted.column("node_label")
        for d in range(CONFIG.days):
            present = set(node[day == d])
            assert (lost_label in present) == (d not in (2, 3))
        # Days outside the outage window are byte-identical to baseline.
        base_day = baseline.column("day")
        untouched = ~np.isin(base_day, (2, 3))
        np.testing.assert_array_equal(
            faulted.column("performance_ms")[~np.isin(day, (2, 3))],
            baseline.column("performance_ms")[untouched],
        )

    def test_power_cap_directive_lowers_power_not_rows(self, baseline):
        _, faulted = faulted_campaign(one_fault(PowerCapDirective(
            FaultSchedule(onset_day=0), power_cap_frac=0.75,
        )))
        assert faulted.n_rows == baseline.n_rows
        assert (np.median(faulted.column("power_w"))
                < np.median(baseline.column("power_w")))


class TestDeterminism:
    SCENARIO = Scenario(
        name="mixed", description="every effect channel at once",
        faults=(
            CoolantPumpDegradation(FaultSchedule(onset_day=1, ramp_days=1),
                                   coolant_rise_c=5.0),
            StuckPState(FaultSchedule(onset_day=2), frequency_cap_frac=0.7,
                        scope="cabinet", index=1),
            PowerCapDirective(FaultSchedule(onset_day=3),
                              power_cap_frac=0.85),
            NodeLoss(FaultSchedule(onset_day=4), scope="node", index=0),
        ),
    )

    def test_byte_identical_across_worker_counts(self):
        _, serial = faulted_campaign(self.SCENARIO, workers=1)
        _, parallel = faulted_campaign(self.SCENARIO, workers=2)
        assert dataset_to_csv_text(serial) == dataset_to_csv_text(parallel)

    def test_dormant_plan_is_byte_identical_to_no_plan(self, baseline):
        dormant = Scenario(
            name="dormant", description="onset past the campaign",
            faults=(PowerCapDirective(FaultSchedule(onset_day=10_000),
                                      power_cap_frac=0.5),),
        )
        _, faulted = faulted_campaign(dormant)
        assert dataset_to_csv_text(faulted) == dataset_to_csv_text(baseline)

    def test_plan_survives_pickling_with_the_cluster(self):
        import pickle

        cluster = fresh_cluster()
        cluster.set_fault_plan(compile_plan(self.SCENARIO, cluster))
        clone = pickle.loads(pickle.dumps(cluster))
        assert clone.fault_plan is not None
        assert clone.fault_plan.lost_nodes(4) == frozenset({0})
