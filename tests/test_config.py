"""Tests for dataclass-config helpers."""

import dataclasses

import pytest

from repro.config import (
    asdict_shallow,
    config_from_dict,
    config_to_dict,
    dump_json,
    load_json,
    require,
    require_in_range,
    require_positive,
)
from repro.errors import ConfigError


@dataclasses.dataclass(frozen=True)
class Inner:
    gain: float = 1.5


@dataclasses.dataclass(frozen=True)
class Outer:
    name: str = "x"
    count: int = 3
    inner: Inner = dataclasses.field(default_factory=Inner)
    weights: tuple[float, ...] = (1.0, 2.0)


class TestRequire:
    def test_passes_when_true(self):
        require(True, "never")

    def test_raises_config_error(self):
        with pytest.raises(ConfigError, match="broken"):
            require(False, "broken")

    @pytest.mark.parametrize("value", [0.0, -1.0, float("nan"), float("inf")])
    def test_require_positive_rejects(self, value):
        with pytest.raises(ConfigError):
            require_positive(value, "v")

    def test_require_positive_accepts(self):
        require_positive(0.001, "v")

    def test_require_in_range(self):
        require_in_range(0.5, 0.0, 1.0, "v")
        with pytest.raises(ConfigError):
            require_in_range(1.5, 0.0, 1.0, "v")


class TestDictConversion:
    def test_roundtrip(self):
        obj = Outer(name="y", count=5, inner=Inner(gain=2.0), weights=(3.0,))
        data = config_to_dict(obj)
        back = config_from_dict(Outer, data)
        assert back == obj

    def test_nested_becomes_dict(self):
        data = config_to_dict(Outer())
        assert data["inner"] == {"gain": 1.5}

    def test_tuple_becomes_list_and_back(self):
        data = config_to_dict(Outer())
        assert data["weights"] == [1.0, 2.0]
        assert config_from_dict(Outer, data).weights == (1.0, 2.0)

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown keys"):
            config_from_dict(Outer, {"name": "x", "bogus": 1})

    def test_non_dataclass_rejected(self):
        with pytest.raises(TypeError):
            config_to_dict({"not": "a dataclass"})
        with pytest.raises(TypeError):
            config_from_dict(dict, {})

    def test_asdict_shallow_keeps_nested_objects(self):
        obj = Outer()
        shallow = asdict_shallow(obj)
        assert shallow["inner"] is obj.inner

    def test_asdict_shallow_rejects_non_dataclass(self):
        with pytest.raises(TypeError):
            asdict_shallow(42)


class TestJsonRoundtrip:
    def test_dump_and_load(self, tmp_path):
        obj = Outer(name="z", count=9)
        path = tmp_path / "cfg.json"
        dump_json(obj, path)
        assert load_json(Outer, path) == obj
