"""Tests for telemetry traces."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.trace import TelemetryTrace


def make_trace(n=100, interval=0.1, label="gpu-0"):
    t = np.arange(n) * interval
    return TelemetryTrace(
        time_s=t,
        frequency_mhz=1400.0 + 50.0 * np.sin(t),
        power_w=290.0 + 5.0 * np.cos(t),
        temperature_c=np.full(n, 55.0),
        kernel_starts_s=np.array([0.5, 3.0, 7.5]),
        label=label,
    )


class TestBasics:
    def test_properties(self):
        trace = make_trace(100, 0.1)
        assert trace.n_samples == 100
        assert trace.duration_s == pytest.approx(9.9)
        assert trace.interval_s == pytest.approx(0.1)

    def test_channel_length_mismatch_rejected(self):
        with pytest.raises(TelemetryError):
            TelemetryTrace(
                time_s=np.arange(3, dtype=float),
                frequency_mhz=np.zeros(2),
                power_w=np.zeros(3),
                temperature_c=np.zeros(3),
            )

    def test_non_monotone_time_rejected(self):
        with pytest.raises(TelemetryError):
            TelemetryTrace(
                time_s=np.array([0.0, 2.0, 1.0]),
                frequency_mhz=np.zeros(3),
                power_w=np.zeros(3),
                temperature_c=np.zeros(3),
            )

    def test_interval_needs_two_samples(self):
        trace = make_trace(1)
        with pytest.raises(TelemetryError):
            _ = trace.interval_s


class TestWindow:
    def test_window_slices_samples_and_markers(self):
        trace = make_trace(100, 0.1)
        win = trace.window(2.0, 5.0)
        assert win.time_s[0] >= 2.0
        assert win.time_s[-1] <= 5.0
        np.testing.assert_array_equal(win.kernel_starts_s, [3.0])

    def test_empty_window_rejected(self):
        trace = make_trace()
        with pytest.raises(TelemetryError):
            trace.window(50.0, 60.0)
        with pytest.raises(TelemetryError):
            trace.window(5.0, 5.0)

    def test_label_preserved(self):
        assert make_trace(label="x").window(0.0, 1.0).label == "x"


class TestDownsample:
    def test_downsample(self):
        trace = make_trace(100)
        down = trace.downsample(10)
        assert down.n_samples == 10
        assert down.frequency_mhz[1] == trace.frequency_mhz[10]

    def test_invalid_factor(self):
        with pytest.raises(TelemetryError):
            make_trace().downsample(0)


class TestSummaryAndPlot:
    def test_summary_fields(self):
        summary = make_trace().summary()
        assert summary["temperature_c_median"] == 55.0
        assert summary["power_w_max"] <= 295.0
        assert set(k.rsplit("_", 1)[1] for k in summary) == {
            "median", "min", "max"
        }

    def test_ascii_plot_dimensions(self):
        art = make_trace().ascii_plot("power_w", width=40, height=8)
        lines = art.splitlines()
        assert len(lines) == 9  # header + rows
        assert all(len(line) <= 40 for line in lines[1:])

    def test_ascii_plot_unknown_channel(self):
        with pytest.raises(TelemetryError):
            make_trace().ascii_plot("voltage")

    def test_ascii_plot_needs_samples(self):
        with pytest.raises(TelemetryError):
            make_trace(1).ascii_plot("power_w")
