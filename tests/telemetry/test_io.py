"""Tests for CSV persistence."""

import numpy as np
import pytest

from repro.errors import DatasetError
from repro.telemetry.dataset import MeasurementDataset
from repro.telemetry.io import read_csv, write_csv


@pytest.fixture()
def dataset():
    return MeasurementDataset({
        "gpu_label": np.array(["a", "b"], dtype=object),
        "day": np.array([0, 3], dtype=np.int64),
        "power_w": np.array([297.5, 255.0]),
        "power_capped": np.array([True, False]),
    })


class TestRoundtrip:
    def test_plain_csv(self, dataset, tmp_path):
        path = tmp_path / "data.csv"
        write_csv(dataset, path)
        back = read_csv(path)
        assert back.column_names == dataset.column_names
        np.testing.assert_array_equal(back["gpu_label"], dataset["gpu_label"])
        np.testing.assert_allclose(back["power_w"], dataset["power_w"])
        assert back["day"].dtype == np.int64
        assert back["power_capped"].dtype == bool
        np.testing.assert_array_equal(back["power_capped"], [True, False])

    def test_gzipped_csv(self, dataset, tmp_path):
        path = tmp_path / "data.csv.gz"
        write_csv(dataset, path)
        back = read_csv(path)
        np.testing.assert_allclose(back["power_w"], dataset["power_w"])
        # And the file really is gzip.
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_campaign_dataset_roundtrip(self, sgemm_dataset, tmp_path):
        path = tmp_path / "campaign.csv.gz"
        write_csv(sgemm_dataset, path)
        back = read_csv(path)
        assert back.n_rows == sgemm_dataset.n_rows
        np.testing.assert_allclose(
            back["performance_ms"], sgemm_dataset["performance_ms"]
        )


class TestErrors:
    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DatasetError):
            read_csv(path)

    def test_header_without_types(self, tmp_path):
        path = tmp_path / "naked.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(DatasetError, match="dtype annotation"):
            read_csv(path)

    def test_unknown_kind(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a:q\n1\n")
        with pytest.raises(DatasetError, match="unknown column kind"):
            read_csv(path)

    def test_ragged_row(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("a:f,b:f\n1,2\n3\n")
        with pytest.raises(DatasetError, match="fields"):
            read_csv(path)
