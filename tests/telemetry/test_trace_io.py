"""Tests for telemetry-trace JSON persistence."""

import gzip
import json

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry.io import read_trace_json, write_trace_json
from repro.telemetry.trace import TelemetryTrace


@pytest.fixture()
def trace():
    t = np.arange(50) * 0.1
    return TelemetryTrace(
        time_s=t,
        frequency_mhz=1400.0 + 30.0 * np.sin(t),
        power_w=295.0 + np.cos(t),
        temperature_c=np.full(50, 55.0),
        kernel_starts_s=np.array([0.4, 2.2]),
        label="rowh-col36-n10-2",
    )


class TestRoundtrip:
    def test_plain_json(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_trace_json(trace, path)
        back = read_trace_json(path)
        np.testing.assert_allclose(back.time_s, trace.time_s)
        np.testing.assert_allclose(back.power_w, trace.power_w)
        np.testing.assert_allclose(back.kernel_starts_s, trace.kernel_starts_s)
        assert back.label == trace.label

    def test_gzipped_json(self, trace, tmp_path):
        path = tmp_path / "trace.json.gz"
        write_trace_json(trace, path)
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        back = read_trace_json(path)
        np.testing.assert_allclose(back.frequency_mhz, trace.frequency_mhz)

    def test_simulated_trace_roundtrip(self, tiny_cloudlab, tmp_path):
        from repro.sim import simulate_timeseries
        from repro.workloads import sgemm

        original = simulate_timeseries(
            tiny_cloudlab, sgemm(), np.array([0]), duration_s=3.0
        )[0]
        path = tmp_path / "sim.json"
        write_trace_json(original, path)
        back = read_trace_json(path)
        assert back.n_samples == original.n_samples
        assert back.summary() == original.summary()


class TestErrors:
    def test_unknown_version_rejected(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_trace_json(trace, path)
        payload = json.loads(path.read_text())
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(TelemetryError, match="format version"):
            read_trace_json(path)

    def test_missing_field_rejected(self, trace, tmp_path):
        path = tmp_path / "trace.json"
        write_trace_json(trace, path)
        payload = json.loads(path.read_text())
        del payload["power_w"]
        path.write_text(json.dumps(payload))
        with pytest.raises(TelemetryError, match="missing trace field"):
            read_trace_json(path)
