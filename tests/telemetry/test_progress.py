"""Tests for campaign progress rates and ETA (repro.telemetry.progress)."""

import pytest

from repro.telemetry.progress import CampaignProgress, ShardTiming


def _timing(day=0, run_index=0, shard_index=0, n_shards=1, n_rows=8,
            duration_s=0.01):
    return ShardTiming(day=day, run_index=run_index, shard_index=shard_index,
                       n_shards=n_shards, n_rows=n_rows,
                       duration_s=duration_s)


class TestZeroElapsed:
    """The zero-elapsed-time division edge case, in every rate property."""

    def test_rates_before_begin_are_zero(self):
        progress = CampaignProgress()
        assert progress.shards_per_second == 0.0
        assert progress.runs_per_second == 0.0
        assert progress.eta_seconds is None

    def test_rates_with_clock_pinned_at_begin(self, monkeypatch):
        import repro.telemetry.progress as mod

        progress = CampaignProgress()
        frozen = 1000.0
        monkeypatch.setattr(mod.time, "perf_counter", lambda: frozen)
        progress.begin(total_shards=4)
        progress.record(_timing())
        # perf_counter has not advanced: elapsed is exactly 0.0
        assert progress.wall_seconds == 0.0
        assert progress.shards_per_second == 0.0
        assert progress.runs_per_second == 0.0
        assert progress.eta_seconds is None  # no rate -> no estimate
        assert "ETA" not in progress.summary()


class TestRates:
    def _advanced(self, monkeypatch, elapsed=2.0):
        import repro.telemetry.progress as mod

        clock = {"now": 1000.0}
        monkeypatch.setattr(mod.time, "perf_counter", lambda: clock["now"])
        progress = CampaignProgress()
        progress.begin(total_shards=4)
        clock["now"] += elapsed
        return progress

    def test_shards_per_second(self, monkeypatch):
        progress = self._advanced(monkeypatch, elapsed=2.0)
        progress.record(_timing(run_index=0))
        progress.record(_timing(run_index=1))
        assert progress.shards_per_second == pytest.approx(1.0)

    def test_runs_per_second_counts_complete_runs_only(self, monkeypatch):
        progress = self._advanced(monkeypatch, elapsed=2.0)
        # run 0 complete (both shards), run 1 half done
        progress.record(_timing(run_index=0, shard_index=0, n_shards=2))
        progress.record(_timing(run_index=0, shard_index=1, n_shards=2))
        progress.record(_timing(run_index=1, shard_index=1, n_shards=2))
        assert progress.runs_per_second == pytest.approx(0.5)

    def test_eta_from_observed_rate(self, monkeypatch):
        progress = self._advanced(monkeypatch, elapsed=2.0)
        progress.record(_timing(run_index=0))
        progress.record(_timing(run_index=1))
        # 2 done in 2 s -> 1 shard/s -> 2 remaining -> 2 s
        assert progress.eta_seconds == pytest.approx(2.0)

    def test_eta_zero_when_done(self, monkeypatch):
        progress = self._advanced(monkeypatch, elapsed=2.0)
        for i in range(4):
            progress.record(_timing(run_index=i))
        assert progress.eta_seconds == 0.0

    def test_summary_includes_rate_and_eta(self, monkeypatch):
        progress = self._advanced(monkeypatch, elapsed=2.0)
        progress.record(_timing(run_index=0))
        line = progress.summary()
        assert "shards/s" in line
        assert "ETA" in line

    def test_summary_omits_eta_when_complete(self, monkeypatch):
        progress = self._advanced(monkeypatch, elapsed=2.0)
        for i in range(4):
            progress.record(_timing(run_index=i))
        assert "ETA" not in progress.summary()
