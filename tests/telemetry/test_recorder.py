"""Tests for the trace recorder."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.gpu.specs import V100
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.sample import SensorModel


def make_recorder(n=2, interval=0.1, rng=None):
    return TraceRecorder(
        labels=[f"g{i}" for i in range(n)],
        pstates_mhz=V100.pstate_array(),
        power_gain=np.ones(n),
        rng=rng if rng is not None else np.random.default_rng(0),
        interval_s=interval,
    )


def push_n(recorder, count, dt=0.1):
    for k in range(count):
        recorder.push(
            (k + 1) * dt,
            np.full(recorder.n_tracks, 1402.0),
            np.full(recorder.n_tracks, 295.0),
            np.full(recorder.n_tracks, 55.3),
        )


class TestRecording:
    def test_one_trace_per_track(self):
        rec = make_recorder(3)
        push_n(rec, 5)
        traces = rec.traces()
        assert len(traces) == 3
        assert traces[0].label == "g0"
        assert traces[0].n_samples == 5

    def test_fast_samples_dropped(self):
        rec = make_recorder(1, interval=0.1)
        assert rec.push(0.1, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))
        assert not rec.push(0.15, np.array([1400.0]), np.array([290.0]),
                            np.array([50.0]))
        assert rec.push(0.2, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))

    def test_time_order_enforced(self):
        rec = make_recorder(1)
        push_n(rec, 3)
        with pytest.raises(TelemetryError):
            rec.push(0.1, np.array([1400.0]), np.array([290.0]),
                     np.array([50.0]))

    def test_sensor_quantization_applied(self):
        rec = make_recorder(1)
        push_n(rec, 4)
        trace = rec.traces()[0]
        assert np.all(np.isin(trace.frequency_mhz, V100.pstate_array()))
        np.testing.assert_array_equal(
            trace.temperature_c, np.round(trace.temperature_c)
        )

    def test_kernel_markers(self):
        rec = make_recorder(1)
        rec.mark_kernel_start(0.05)
        push_n(rec, 3)
        np.testing.assert_array_equal(rec.traces()[0].kernel_starts_s, [0.05])

    def test_empty_recorder_rejected(self):
        with pytest.raises(TelemetryError):
            make_recorder(1).traces()


class TestValidation:
    def test_interval_below_profiler_floor_rejected(self):
        with pytest.raises(TelemetryError, match="floor"):
            make_recorder(1, interval=0.0005)

    def test_label_gain_mismatch_rejected(self):
        with pytest.raises(TelemetryError):
            TraceRecorder(
                labels=["a", "b"],
                pstates_mhz=V100.pstate_array(),
                power_gain=np.ones(3),
                rng=np.random.default_rng(0),
            )

    def test_custom_sensor_respected(self):
        sensor = SensorModel(min_interval_ms=50.0)
        with pytest.raises(TelemetryError):
            TraceRecorder(
                labels=["a"],
                pstates_mhz=V100.pstate_array(),
                power_gain=np.ones(1),
                rng=np.random.default_rng(0),
                sensor=sensor,
                interval_s=0.01,
            )
