"""Tests for the trace recorder."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.gpu.specs import V100
from repro.telemetry.recorder import TraceRecorder
from repro.telemetry.sample import SensorModel


def make_recorder(n=2, interval=0.1, rng=None):
    return TraceRecorder(
        labels=[f"g{i}" for i in range(n)],
        pstates_mhz=V100.pstate_array(),
        power_gain=np.ones(n),
        rng=rng if rng is not None else np.random.default_rng(0),
        interval_s=interval,
    )


def push_n(recorder, count, dt=0.1):
    for k in range(count):
        recorder.push(
            (k + 1) * dt,
            np.full(recorder.n_tracks, 1402.0),
            np.full(recorder.n_tracks, 295.0),
            np.full(recorder.n_tracks, 55.3),
        )


class TestRecording:
    def test_one_trace_per_track(self):
        rec = make_recorder(3)
        push_n(rec, 5)
        traces = rec.traces()
        assert len(traces) == 3
        assert traces[0].label == "g0"
        assert traces[0].n_samples == 5

    def test_fast_samples_dropped(self):
        rec = make_recorder(1, interval=0.1)
        assert rec.push(0.1, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))
        assert not rec.push(0.15, np.array([1400.0]), np.array([290.0]),
                            np.array([50.0]))
        assert rec.push(0.2, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))

    def test_time_order_enforced(self):
        rec = make_recorder(1)
        push_n(rec, 3)
        with pytest.raises(TelemetryError):
            rec.push(0.1, np.array([1400.0]), np.array([290.0]),
                     np.array([50.0]))

    def test_sensor_quantization_applied(self):
        rec = make_recorder(1)
        push_n(rec, 4)
        trace = rec.traces()[0]
        assert np.all(np.isin(trace.frequency_mhz, V100.pstate_array()))
        np.testing.assert_array_equal(
            trace.temperature_c, np.round(trace.temperature_c)
        )

    def test_kernel_markers(self):
        rec = make_recorder(1)
        rec.mark_kernel_start(0.05)
        push_n(rec, 3)
        np.testing.assert_array_equal(rec.traces()[0].kernel_starts_s, [0.05])

    def test_empty_recorder_rejected(self):
        with pytest.raises(TelemetryError):
            make_recorder(1).traces()


class TestValidation:
    def test_interval_below_profiler_floor_rejected(self):
        with pytest.raises(TelemetryError, match="floor"):
            make_recorder(1, interval=0.0005)

    def test_label_gain_mismatch_rejected(self):
        with pytest.raises(TelemetryError):
            TraceRecorder(
                labels=["a", "b"],
                pstates_mhz=V100.pstate_array(),
                power_gain=np.ones(3),
                rng=np.random.default_rng(0),
            )

    def test_custom_sensor_respected(self):
        sensor = SensorModel(min_interval_ms=50.0)
        with pytest.raises(TelemetryError):
            TraceRecorder(
                labels=["a"],
                pstates_mhz=V100.pstate_array(),
                power_gain=np.ones(1),
                rng=np.random.default_rng(0),
                sensor=sensor,
                interval_s=0.01,
            )

    def test_power_gain_must_be_1d(self):
        with pytest.raises(TelemetryError, match="1-D"):
            TraceRecorder(
                labels=["a", "b"],
                pstates_mhz=V100.pstate_array(),
                power_gain=np.ones((2, 1)),
                rng=np.random.default_rng(0),
            )

    @pytest.mark.parametrize("bad", [0.0, -1.0, np.nan, np.inf])
    def test_power_gain_must_be_finite_positive(self, bad):
        with pytest.raises(TelemetryError, match="finite and positive"):
            TraceRecorder(
                labels=["a", "b"],
                pstates_mhz=V100.pstate_array(),
                power_gain=np.array([1.0, bad]),
                rng=np.random.default_rng(0),
            )

    def test_power_gain_list_accepted(self):
        rec = TraceRecorder(
            labels=["a", "b"],
            pstates_mhz=V100.pstate_array(),
            power_gain=[1.01, 0.99],
            rng=np.random.default_rng(0),
        )
        assert rec.power_gain.dtype == float


class TestIntervalEnforcement:
    def test_first_sample_always_recorded(self):
        # No previous sample exists, so the interval gate cannot apply —
        # even at t well below the interval.
        rec = make_recorder(1, interval=0.1)
        assert rec.push(0.001, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))

    def test_sample_exactly_on_interval_boundary_recorded(self):
        rec = make_recorder(1, interval=0.1)
        rec.push(0.1, np.array([1400.0]), np.array([290.0]), np.array([50.0]))
        # 0.2 - 0.1 == 0.1 exactly (binary-representable): on the boundary,
        # not below it, so the sample must be kept.
        assert rec.push(0.2, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))

    def test_boundary_tolerates_float_accumulation(self):
        # 0.1-steps accumulate binary error (0.30000000000000004...); the
        # recorder's epsilon must not drop legitimate fixed-rate samples.
        rec = make_recorder(1, interval=0.1)
        t, recorded = 0.0, 0
        for _ in range(10):
            t += 0.1
            recorded += rec.push(t, np.array([1400.0]), np.array([290.0]),
                                 np.array([50.0]))
        assert recorded == 10

    def test_below_interval_dropped_then_interval_restarts(self):
        rec = make_recorder(1, interval=0.1)
        assert rec.push(0.1, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))
        # dropped samples do NOT reset the clock: the next accept is
        # relative to the last *recorded* sample
        assert not rec.push(0.19, np.array([1400.0]), np.array([290.0]),
                            np.array([50.0]))
        assert rec.push(0.2, np.array([1400.0]), np.array([290.0]),
                        np.array([50.0]))
        assert rec.traces()[0].n_samples == 2


class TestPstateSnapping:
    def _record_one(self, pstates, frequency):
        rec = TraceRecorder(
            labels=["a"],
            pstates_mhz=np.asarray(pstates, dtype=float),
            power_gain=np.ones(1),
            rng=np.random.default_rng(0),
        )
        rec.push(0.1, np.array([frequency]), np.array([290.0]),
                 np.array([50.0]))
        return float(rec.traces()[0].frequency_mhz[0])

    def test_single_pstate_ladder_always_snaps_to_it(self):
        for frequency in (100.0, 1300.0, 9999.0):
            assert self._record_one([1312.0], frequency) == 1312.0

    def test_below_ladder_clamps_to_lowest(self):
        assert self._record_one([1000.0, 1100.0, 1200.0], 850.0) == 1000.0

    def test_above_ladder_clamps_to_highest(self):
        assert self._record_one([1000.0, 1100.0, 1200.0], 2000.0) == 1200.0

    def test_midpoint_ties_snap_down(self):
        assert self._record_one([1000.0, 1100.0], 1050.0) == 1000.0

    def test_off_ladder_snaps_to_nearest(self):
        assert self._record_one([1000.0, 1100.0, 1200.0], 1140.0) == 1100.0
        assert self._record_one([1000.0, 1100.0, 1200.0], 1160.0) == 1200.0
