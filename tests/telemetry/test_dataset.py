"""Tests for the columnar measurement dataset."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DatasetError
from repro.telemetry.dataset import MeasurementDataset


@pytest.fixture()
def dataset():
    return MeasurementDataset({
        "gpu_index": np.array([0, 0, 1, 1, 2, 2]),
        "gpu_label": np.array(["a", "a", "b", "b", "c", "c"], dtype=object),
        "cabinet": np.array(["c1", "c1", "c1", "c1", "c2", "c2"], dtype=object),
        "run": np.array([0, 1, 0, 1, 0, 1]),
        "performance_ms": np.array([10.0, 12.0, 20.0, 22.0, 30.0, 28.0]),
    })


class TestConstruction:
    def test_basics(self, dataset):
        assert len(dataset) == 6
        assert dataset.n_rows == 6
        assert "run" in dataset
        assert "bogus" not in dataset

    def test_unequal_columns_rejected(self):
        with pytest.raises(DatasetError):
            MeasurementDataset({"a": np.zeros(3), "b": np.zeros(4)})

    def test_2d_column_rejected(self):
        with pytest.raises(DatasetError):
            MeasurementDataset({"a": np.zeros((2, 2))})

    def test_empty_mapping_rejected(self):
        with pytest.raises(DatasetError):
            MeasurementDataset({})

    def test_strings_stored_as_object(self, dataset):
        assert dataset.column("gpu_label").dtype == object

    def test_unknown_column_raises(self, dataset):
        with pytest.raises(DatasetError, match="unknown column"):
            dataset.column("nope")

    def test_getitem(self, dataset):
        np.testing.assert_array_equal(dataset["run"], dataset.column("run"))


class TestSelection:
    def test_filter(self, dataset):
        sub = dataset.filter(dataset["run"] == 0)
        assert sub.n_rows == 3

    def test_filter_bad_mask(self, dataset):
        with pytest.raises(DatasetError):
            dataset.filter(np.ones(5, dtype=bool))

    def test_where(self, dataset):
        sub = dataset.where(gpu_label="b", run=1)
        assert sub.n_rows == 1
        assert sub["performance_ms"][0] == 22.0

    def test_sort_by(self, dataset):
        sorted_ds = dataset.sort_by("performance_ms")
        values = sorted_ds["performance_ms"]
        assert np.all(np.diff(values) >= 0)


class TestGrouping:
    def test_groupby(self, dataset):
        groups = dict(dataset.groupby("cabinet"))
        assert set(groups) == {"c1", "c2"}
        assert groups["c1"].n_rows == 4

    def test_group_reduce(self, dataset):
        medians = dataset.group_reduce("cabinet", "performance_ms")
        assert medians["c2"] == 29.0

    def test_unique(self, dataset):
        np.testing.assert_array_equal(dataset.unique("run"), [0, 1])

    def test_per_gpu_median(self, dataset):
        med = dataset.per_gpu_median("performance_ms")
        assert med.n_rows == 3
        np.testing.assert_allclose(
            np.sort(med["performance_ms"]), [11.0, 21.0, 29.0]
        )

    def test_per_gpu_median_keeps_constant_columns(self, dataset):
        med = dataset.per_gpu_median("performance_ms")
        assert "gpu_label" in med
        assert "cabinet" in med
        assert "run" not in med  # varies within a GPU group


class TestMutationAndConcat:
    def test_with_column(self, dataset):
        ds2 = dataset.with_column("extra", np.arange(6))
        assert "extra" in ds2
        assert "extra" not in dataset  # original untouched

    def test_with_column_wrong_length(self, dataset):
        with pytest.raises(DatasetError):
            dataset.with_column("extra", np.arange(5))

    def test_concat(self, dataset):
        both = MeasurementDataset.concat([dataset, dataset])
        assert both.n_rows == 12

    def test_concat_mismatched_columns(self, dataset):
        other = MeasurementDataset({"x": np.zeros(2)})
        with pytest.raises(DatasetError):
            MeasurementDataset.concat([dataset, other])

    def test_concat_empty_list(self):
        with pytest.raises(DatasetError):
            MeasurementDataset.concat([])

    def test_head_and_rows(self, dataset):
        assert dataset.head(2).n_rows == 2
        rows = dataset.head(1).to_rows()
        assert rows[0]["gpu_label"] == "a"


class TestProperties:
    @settings(max_examples=25, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
        min_size=1, max_size=60,
    ))
    def test_property_filter_then_concat_identity(self, values):
        arr = np.asarray(values)
        ds = MeasurementDataset({"v": arr})
        mask = arr >= np.median(arr)
        a = ds.filter(mask)
        b = ds.filter(~mask)
        merged = MeasurementDataset.concat([a, b])
        assert merged.n_rows == ds.n_rows
        assert merged["v"].sum() == pytest.approx(arr.sum())

    @settings(max_examples=25, deadline=None)
    @given(n_runs=st.integers(min_value=1, max_value=6),
           n_gpus=st.integers(min_value=1, max_value=8))
    def test_property_per_gpu_median_row_count(self, n_runs, n_gpus):
        gpu = np.repeat(np.arange(n_gpus), n_runs)
        vals = np.arange(n_gpus * n_runs, dtype=float)
        ds = MeasurementDataset({"gpu_index": gpu, "performance_ms": vals})
        med = ds.per_gpu_median("performance_ms")
        assert med.n_rows == n_gpus
