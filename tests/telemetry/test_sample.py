"""Tests for the sensor model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.gpu.specs import MI60, V100
from repro.telemetry.sample import PAPER_METRICS, SensorModel


@pytest.fixture()
def sensor():
    return SensorModel()


class TestPowerSensor:
    def test_gain_applied(self, sensor, rng):
        p = sensor.read_power(np.full(1000, 300.0), gain=1.02, rng=rng)
        assert abs(p.mean() - 306.0) < 0.5

    def test_resolution_rounding(self, rng):
        sensor = SensorModel(power_noise_w=0.0, power_resolution_w=5.0)
        p = sensor.read_power(np.array([297.4]), gain=1.0, rng=rng)
        assert p[0] in (295.0, 300.0)

    def test_noise_magnitude(self, rng):
        sensor = SensorModel(power_noise_w=2.0, power_resolution_w=0.001)
        p = sensor.read_power(np.full(5000, 200.0), gain=1.0, rng=rng)
        assert 1.5 < p.std() < 2.5


class TestTemperatureSensor:
    def test_integer_degrees(self, sensor, rng):
        t = sensor.read_temperature(np.array([55.3, 61.7, 44.1]), rng)
        np.testing.assert_array_equal(t, np.round(t))

    def test_noise_bounded(self, rng):
        sensor = SensorModel(temperature_noise_c=0.0)
        t = sensor.read_temperature(np.array([55.4]), rng)
        assert t[0] == 55.0


class TestFrequencySensor:
    def test_snaps_to_ladder(self, sensor):
        f = sensor.read_frequency(
            np.array([1400.3, 135.0, 1530.0]), V100.pstate_array()
        )
        assert np.all(np.isin(f, V100.pstate_array()))

    def test_nearest_not_floor(self, sensor):
        f = sensor.read_frequency(np.array([1406.0]), V100.pstate_array())
        assert f[0] == 1402.5  # nearest step, 3.5 below vs 4 above

    def test_amd_coarse_snap(self, sensor):
        f = sensor.read_frequency(np.array([1700.0]), MI60.pstate_array())
        assert f[0] == 1725.0

    def test_out_of_range_clamped(self, sensor):
        f = sensor.read_frequency(np.array([50.0, 9999.0]), V100.pstate_array())
        assert f[0] == V100.f_min_mhz
        assert f[1] == V100.f_max_mhz

    @settings(max_examples=40, deadline=None)
    @given(freq=st.floats(min_value=100.0, max_value=2000.0))
    def test_property_snap_error_within_half_step(self, freq):
        sensor = SensorModel()
        ladder = V100.pstate_array()
        f = float(sensor.read_frequency(np.array([freq]), ladder)[0])
        if ladder[0] <= freq <= ladder[-1]:
            assert abs(f - freq) <= 7.5 / 2 + 1e-9


class TestValidation:
    def test_metric_names(self):
        assert PAPER_METRICS == (
            "performance_ms", "frequency_mhz", "power_w", "temperature_c"
        )

    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigError):
            SensorModel(min_interval_ms=0.0)

    def test_negative_noise_rejected(self):
        with pytest.raises(ConfigError):
            SensorModel(power_noise_w=-1.0)
