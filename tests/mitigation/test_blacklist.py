"""Tests for blacklisting policies."""

import numpy as np
import pytest

from repro.core.outliers import flag_outlier_gpus
from repro.errors import AnalysisError
from repro.mitigation.blacklist import (
    BlacklistPolicy,
    build_blacklist,
    evaluate_blacklist,
)
from repro.telemetry.dataset import MeasurementDataset


def make_dataset(slow_gpus=(5,), n_gpus=32, n_runs=3, seed=0, factor=1.4):
    rng = np.random.default_rng(seed)
    gpu = np.repeat(np.arange(n_gpus), n_runs)
    base = np.repeat(1000.0 + rng.normal(0, 4, n_gpus), n_runs)
    perf = base + rng.normal(0, 1, gpu.shape[0])
    for slow in slow_gpus:
        perf[gpu == slow] *= factor
    return MeasurementDataset({
        "gpu_index": gpu,
        "gpu_label": np.asarray([f"g{i:02d}" for i in gpu], dtype=object),
        "node_label": np.asarray([f"n{i // 4:02d}" for i in gpu], dtype=object),
        "performance_ms": perf,
    })


class TestBuildBlacklist:
    def test_confirmed_gpu_drained(self):
        ds_a = make_dataset(seed=1)
        ds_b = make_dataset(seed=2)
        reports = [flag_outlier_gpus(ds_a), flag_outlier_gpus(ds_b)]
        drained = build_blacklist(reports, ds_a)
        assert "g05" in drained

    def test_single_report_insufficient_by_default(self):
        ds_a = make_dataset(slow_gpus=(5,), seed=1)
        ds_b = make_dataset(slow_gpus=(), seed=2)
        reports = [flag_outlier_gpus(ds_a), flag_outlier_gpus(ds_b)]
        drained = build_blacklist(reports, ds_a)
        assert "g05" not in drained

    def test_min_confirmations_one(self):
        ds = make_dataset(seed=1)
        drained = build_blacklist(
            [flag_outlier_gpus(ds)], ds,
            BlacklistPolicy(min_confirmations=1),
        )
        assert "g05" in drained

    def test_slowdown_threshold_filters(self):
        ds = make_dataset(factor=1.03, seed=1)  # mild outlier
        drained = build_blacklist(
            [flag_outlier_gpus(ds)], ds,
            BlacklistPolicy(min_confirmations=1, min_slowdown=0.10),
        )
        assert drained == ()

    def test_empty_reports_rejected(self):
        with pytest.raises(AnalysisError):
            build_blacklist([], make_dataset())

    def test_policy_validation(self):
        with pytest.raises(Exception):
            BlacklistPolicy(min_confirmations=0)


class TestEvaluateBlacklist:
    def test_draining_improves_tail(self):
        ds = make_dataset(slow_gpus=(5, 13))
        outcome = evaluate_blacklist(ds, ("g05", "g13"))
        assert outcome.worst_after < outcome.worst_before
        assert outcome.slow_assignment_after <= outcome.slow_assignment_before

    def test_whole_node_drain_costs_more_capacity(self):
        ds = make_dataset(slow_gpus=(5,))
        whole = evaluate_blacklist(
            ds, ("g05",), BlacklistPolicy(drain_whole_node=True)
        )
        gpu_only = evaluate_blacklist(
            ds, ("g05",), BlacklistPolicy(drain_whole_node=False)
        )
        assert whole.capacity_lost > gpu_only.capacity_lost
        assert whole.drained_nodes == ("n01",)
        assert gpu_only.drained_nodes == ()

    def test_capacity_accounting(self):
        ds = make_dataset(slow_gpus=(5,), n_gpus=32)
        outcome = evaluate_blacklist(
            ds, ("g05",), BlacklistPolicy(drain_whole_node=False)
        )
        assert outcome.capacity_lost == pytest.approx(1 / 32)

    def test_draining_everything_rejected(self):
        ds = make_dataset(slow_gpus=(), n_gpus=4)
        with pytest.raises(AnalysisError):
            evaluate_blacklist(
                ds, ("g00", "g01", "g02", "g03"),
                BlacklistPolicy(drain_whole_node=True),
            )

    def test_job_width_probe(self):
        ds = make_dataset(slow_gpus=(5,))
        outcome = evaluate_blacklist(ds, ("g05",), job_width=4)
        assert outcome.slow_assignment_after <= outcome.slow_assignment_before


class TestEndToEnd:
    def test_campaign_blacklist_workflow(self, sgemm_dataset):
        report = flag_outlier_gpus(sgemm_dataset)
        drained = build_blacklist(
            [report], sgemm_dataset, BlacklistPolicy(min_confirmations=1)
        )
        if drained:
            outcome = evaluate_blacklist(sgemm_dataset, drained)
            assert 0.0 < outcome.capacity_lost < 0.5
            assert outcome.worst_after <= outcome.worst_before
