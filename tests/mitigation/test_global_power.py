"""Tests for the global power manager."""

import numpy as np
import pytest

from repro.errors import AnalysisError
from repro.mitigation.global_power import (
    allocate_equal_frequency,
    allocate_uniform,
    evaluate_allocation,
)
from repro.workloads import sgemm


@pytest.fixture(scope="module")
def fleet(small_longhorn):
    return small_longhorn.fleet


class TestAllocateUniform:
    def test_fair_share(self, fleet):
        alloc = allocate_uniform(fleet, fleet.n * 250.0)
        np.testing.assert_allclose(alloc.caps_w, 250.0)
        assert alloc.strategy == "uniform"

    def test_capped_at_tdp(self, fleet):
        alloc = allocate_uniform(fleet, fleet.n * 500.0)
        np.testing.assert_allclose(alloc.caps_w, fleet.spec.tdp_w)

    def test_invalid_budget(self, fleet):
        with pytest.raises(Exception):
            allocate_uniform(fleet, 0.0)


class TestAllocateEqualFrequency:
    def test_budget_respected(self, fleet):
        budget = fleet.n * 270.0
        alloc = allocate_equal_frequency(fleet, sgemm(), budget)
        # Spent power at the target stays under budget (margin excluded).
        assert alloc.allocated_w <= budget + fleet.n * 2.0
        assert alloc.target_frequency_mhz is not None

    def test_caps_never_exceed_boards(self, fleet):
        alloc = allocate_equal_frequency(fleet, sgemm(), fleet.n * 280.0)
        assert np.all(alloc.caps_w <= fleet.power_cap_w() + 1e-9)

    def test_bigger_budget_higher_target(self, fleet):
        low = allocate_equal_frequency(fleet, sgemm(), fleet.n * 220.0)
        high = allocate_equal_frequency(fleet, sgemm(), fleet.n * 280.0)
        assert high.target_frequency_mhz > low.target_frequency_mhz

    def test_starvation_budget_rejected(self, fleet):
        with pytest.raises(AnalysisError):
            allocate_equal_frequency(fleet, sgemm(), fleet.n * 10.0)


class TestEvaluation:
    def test_equal_frequency_cuts_variation_at_same_power(self, fleet):
        """The Section VII claim, quantified."""
        budget = fleet.n * 280.0
        rng = np.random.default_rng(0)
        uniform = evaluate_allocation(
            fleet, sgemm(), allocate_uniform(fleet, budget), rng=rng
        )
        managed = evaluate_allocation(
            fleet, sgemm(),
            allocate_equal_frequency(fleet, sgemm(), budget),
            rng=np.random.default_rng(0),
        )
        assert managed["variation"] < 0.5 * uniform["variation"]
        # Comparable median performance and total power.
        assert managed["median_ms"] < uniform["median_ms"] * 1.05
        assert managed["total_power_w"] <= budget * 1.01

    def test_frequency_spread_collapses(self, fleet):
        budget = fleet.n * 280.0
        managed = evaluate_allocation(
            fleet, sgemm(),
            allocate_equal_frequency(fleet, sgemm(), budget),
            rng=np.random.default_rng(0),
        )
        uniform = evaluate_allocation(
            fleet, sgemm(), allocate_uniform(fleet, budget),
            rng=np.random.default_rng(0),
        )
        assert (managed["frequency_spread_mhz"]
                < uniform["frequency_spread_mhz"])

    def test_metrics_keys(self, fleet):
        result = evaluate_allocation(
            fleet, sgemm(), allocate_uniform(fleet, fleet.n * 300.0)
        )
        assert {"variation", "median_ms", "worst_ms", "total_power_w",
                "frequency_spread_mhz", "median_frequency_mhz"} <= set(result)
