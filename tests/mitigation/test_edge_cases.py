"""Mitigation edge cases: healthy fleets, starvation budgets, tiny fleets.

The mitigation toolkit is exercised elsewhere on fleets *with* planted
outliers; these tests pin the degenerate boundaries — a blacklist built
over a defect-free fleet must drain nobody, a power budget below the
fleet's idle floor must fail loudly rather than emit unreachable caps,
and a one-GPU sharding plan must hand the whole batch to that GPU.
"""

import numpy as np
import pytest

from repro.core.outliers import flag_outlier_gpus
from repro.errors import AnalysisError
from repro.gpu.defects import DefectType
from repro.mitigation.blacklist import BlacklistPolicy, build_blacklist
from repro.mitigation.global_power import allocate_equal_frequency
from repro.mitigation.load_balance import weighted_shards
from repro.telemetry.dataset import MeasurementDataset
from repro.workloads import sgemm


def healthy_dataset(n_gpus=32, n_runs=4, seed=0):
    """Tight, defect-free measurements: spread well inside any fence."""
    rng = np.random.default_rng(seed)
    gpu = np.repeat(np.arange(n_gpus), n_runs)
    base = np.repeat(1000.0 + rng.normal(0, 2.0, n_gpus), n_runs)
    perf = base + rng.normal(0, 1.0, gpu.shape[0])
    return MeasurementDataset({
        "gpu_index": gpu,
        "gpu_label": np.asarray([f"g{i:02d}" for i in gpu], dtype=object),
        "node_label": np.asarray([f"n{i // 4:02d}" for i in gpu],
                                 dtype=object),
        "performance_ms": perf,
    })


class TestBlacklistOnDefectFreeFleet:
    def test_drains_nobody(self):
        reports = [
            flag_outlier_gpus(healthy_dataset(seed=s)) for s in (1, 2, 3)
        ]
        drained = build_blacklist(reports, healthy_dataset(seed=1))
        assert drained == ()

    def test_drains_nobody_even_at_one_confirmation(self):
        ds = healthy_dataset(seed=4)
        drained = build_blacklist(
            [flag_outlier_gpus(ds)], ds,
            BlacklistPolicy(min_confirmations=1),
        )
        assert drained == ()

    def test_campaign_on_defect_free_fleet_drains_nobody(self, tiny_cloudlab):
        # CloudLab has no forced defects and a near-zero random defect
        # background; at this seed the draw leaves the fleet clean.
        from repro.sim import CampaignConfig, run_campaign

        cluster = tiny_cloudlab
        assert (cluster.defects.kind == int(DefectType.NONE)).all()
        dataset = run_campaign(
            cluster, sgemm(), CampaignConfig(days=2, runs_per_day=2),
        )
        drained = build_blacklist(
            [flag_outlier_gpus(dataset)], dataset,
            BlacklistPolicy(min_confirmations=1),
        )
        assert drained == ()

    def test_no_reports_is_an_error_not_an_empty_list(self):
        with pytest.raises(AnalysisError, match="at least one"):
            build_blacklist([], healthy_dataset())


class TestPowerBudgetBelowIdleFloor:
    def test_budget_below_idle_floor_rejected(self, small_longhorn):
        fleet = small_longhorn.fleet
        # 10 W/GPU is far under any settled power at the lowest ladder
        # level; the allocator must refuse rather than emit fake caps.
        with pytest.raises(AnalysisError, match="lowest ladder level"):
            allocate_equal_frequency(fleet, sgemm(), fleet.n * 10.0)

    def test_error_names_the_budget(self, small_longhorn):
        fleet = small_longhorn.fleet
        budget = fleet.n * 10.0
        with pytest.raises(AnalysisError, match=f"{budget:.0f} W"):
            allocate_equal_frequency(fleet, sgemm(), budget)

    def test_nonpositive_budget_rejected_eagerly(self, small_longhorn):
        with pytest.raises(Exception, match="positive"):
            allocate_equal_frequency(small_longhorn.fleet, sgemm(), 0.0)


class TestSingleGpuSharding:
    def test_whole_batch_on_one_gpu(self):
        plan = weighted_shards(np.asarray([1.7]), 37)
        np.testing.assert_array_equal(plan.shards, [37])
        assert plan.batch_size == 37

    def test_single_gpu_respects_min_per_gpu(self):
        plan = weighted_shards(np.asarray([0.4]), 8, min_per_gpu=8)
        np.testing.assert_array_equal(plan.shards, [8])

    def test_single_slow_gpu_still_gets_everything(self):
        plan = weighted_shards(np.asarray([0.01]), 16)
        np.testing.assert_array_equal(plan.shards, [16])
