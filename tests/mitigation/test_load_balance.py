"""Tests for variability-aware load balancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AnalysisError
from repro.mitigation.load_balance import (
    ShardingPlan,
    bulk_synchronous_time_ms,
    evaluate_sharding,
    weighted_shards,
)


class TestWeightedShards:
    def test_uniform_speeds_uniform_shards(self):
        plan = weighted_shards(np.ones(4), 64)
        np.testing.assert_array_equal(plan.shards, [16, 16, 16, 16])

    def test_shards_sum_to_batch(self):
        plan = weighted_shards(np.array([1.0, 0.7, 1.3, 0.9]), 63)
        assert plan.batch_size == 63

    def test_slow_gpu_gets_less(self):
        plan = weighted_shards(np.array([1.0, 1.0, 1.0, 0.5]), 64)
        assert plan.shards[3] < plan.shards[0]

    def test_min_per_gpu_respected(self):
        plan = weighted_shards(np.array([100.0, 1.0]), 10, min_per_gpu=2)
        assert plan.shards.min() >= 2
        assert plan.batch_size == 10

    def test_nonpositive_speed_rejected(self):
        with pytest.raises(AnalysisError):
            weighted_shards(np.array([1.0, 0.0]), 8)

    def test_batch_too_small_rejected(self):
        with pytest.raises(Exception):
            weighted_shards(np.ones(8), 4)

    @settings(max_examples=60, deadline=None)
    @given(
        speeds=st.lists(
            st.floats(min_value=0.1, max_value=10.0), min_size=2, max_size=8
        ),
        batch=st.integers(min_value=16, max_value=512),
    )
    def test_property_exact_sum_and_floor(self, speeds, batch):
        plan = weighted_shards(np.asarray(speeds), batch)
        assert plan.batch_size == batch
        assert plan.shards.min() >= 1


class TestBulkSynchronousTime:
    def test_max_semantics(self):
        plan = ShardingPlan(
            shards=np.array([10, 10]), speeds=np.array([1.0, 0.5])
        )
        assert bulk_synchronous_time_ms(plan) == 20.0


class TestEvaluation:
    def test_straggler_speedup(self):
        """One 35%-slow member: weighted sharding recovers most of the loss."""
        result = evaluate_sharding(np.array([1.0, 1.0, 1.0, 0.65]), 64)
        assert result["speedup"] > 1.2
        assert result["weighted_efficiency"] > result["uniform_efficiency"]
        assert result["weighted_efficiency"] > 0.9

    def test_healthy_node_is_neutral(self):
        result = evaluate_sharding(np.full(4, 2.0), 64)
        assert result["speedup"] == pytest.approx(1.0)
        assert result["uniform_efficiency"] == pytest.approx(1.0)

    def test_indivisible_batch_rejected(self):
        with pytest.raises(AnalysisError):
            evaluate_sharding(np.ones(3), 64)

    @settings(max_examples=40, deadline=None)
    @given(
        slow=st.floats(min_value=0.2, max_value=1.0),
    )
    def test_property_weighted_never_loses(self, slow):
        speeds = np.array([1.0, 1.0, 1.0, slow])
        result = evaluate_sharding(speeds, 64)
        # Weighted sharding is never worse than uniform (up to rounding).
        assert result["speedup"] >= 0.99
