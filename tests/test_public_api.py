"""Public-API integrity: exports resolve, are documented, and round-trip.

A release-quality gate: everything advertised in ``__all__`` must exist,
carry a docstring, and the subpackage inits must agree with their modules.
"""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = (
    "repro.gpu",
    "repro.cluster",
    "repro.workloads",
    "repro.sim",
    "repro.telemetry",
    "repro.core",
    "repro.mitigation",
    "repro.hostbench",
)


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), f"repro.__all__ lists missing {name}"

    def test_no_private_exports(self):
        assert all(not name.startswith("_") for name in repro.__all__
                   if name != "__version__")


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_expose_documented_methods(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (attr.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}.{attr_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (inspect.isclass(obj) and issubclass(obj, Exception)
                    and obj is not errors.ReproError
                    and obj.__module__ == "repro.errors"):
                assert issubclass(obj, errors.ReproError), name
