"""Public-API integrity: the facade surface is pinned, exports resolve.

A release-quality gate: ``repro.api`` exposes exactly the supported
surface (additions and removals must edit the pin here, consciously),
everything advertised in an ``__all__`` exists and carries a docstring,
and the facade's signatures are keyword-only as promised.
"""

import importlib
import inspect

import pytest

import repro
from repro import api

SUBPACKAGES = (
    "repro.api",
    "repro.api.requests",
    "repro.service",
    "repro.loadgen",
    "repro.obs",
    "repro.gpu",
    "repro.cluster",
    "repro.workloads",
    "repro.sim",
    "repro.sched",
    "repro.telemetry",
    "repro.core",
    "repro.mitigation",
    "repro.hostbench",
)

#: The supported facade surface, pinned exactly.  A failure here means the
#: public API changed — update the pin only as a deliberate decision.
API_SURFACE = frozenset({
    # constructors / registries
    "load_preset", "load_workload", "list_presets", "list_workloads",
    # verbs
    "run_campaign", "characterize", "monitor_fleet", "screen", "sweep",
    "project",
    # domain types
    "Cluster", "Workload",
    # result types
    "CharacterizationResult", "MonitoringResult", "ScreenReport",
    "WorkloadScreen", "SweepPoint", "SweepReport", "ProjectionReport",
    "ClusterReport", "OutlierReport", "BoxStats", "MeasurementDataset",
    # configuration
    "CampaignConfig", "ParallelConfig", "CampaignProgress",
    # observability
    "Tracer", "Manifest", "read_manifest", "validate_manifest",
    "write_chrome_trace", "write_events_jsonl",
    # monitoring / fleet health
    "FleetMonitor", "MonitorConfig", "active_monitor", "render_prometheus",
    "FleetHealthReport", "HealthEvent", "HealthEventKind", "HealthPolicy",
    "HealthTracker", "analyze_fleet_health", "validate_health_report",
    "write_health_events",
    # flight recorder / timeline replay
    "TimelineEvent", "TimelineRecorder", "TimelineReplayer", "ReplayCheck",
    "activate_recorder", "canonical_digest", "load_replayer",
    "read_timeline", "write_timeline",
    # scheduling analysis (Section VII)
    "schedule", "slow_assignment_probability", "node_variability_scores",
    "plan_placements", "PlacementPlan", "classify_workload", "ApplicationClass",
    # batch-queue scheduling
    "SchedulingResult", "SchedulingReport", "ScheduleOutcome", "JobRecord",
    "Job", "TraceConfig", "generate_trace", "PlacementPolicy", "FifoPolicy",
    "BackfillPolicy", "VariabilityAwarePolicy", "HealthAwarePolicy",
    "EnergyCappedPolicy", "node_power_watts", "POLICY_NAMES", "ENGINE_MODES",
    "validate_scheduling_report", "write_event_log",
    # steady-state solver selection
    "SOLVER_LADDER", "SOLVER_FLEET", "SOLVER_GRID", "SOLVER_ENV_VAR",
    "default_solver", "solver_scope",
    # typed request surface (shared by Python, CLI, and the HTTP service)
    "REQUEST_SCHEMA_VERSION", "REQUEST_KINDS", "EXECUTION_FIELDS",
    "CharacterizeRequest", "ScreenRequest", "SweepRequest",
    "ScheduleRequest", "MonitorRequest", "ChaosRequest",
    "request_from_dict", "request_from_json", "request_digest",
    "execute_request",
    # chaos / fault injection
    "chaos", "ChaosRunResult", "Scenario", "CHAOS_SCORECARD_SCHEMA",
    "get_scenario", "list_scenarios", "render_scorecard",
    "validate_scorecard",
})

#: Facade functions whose every optional parameter must be keyword-only.
KEYWORD_ONLY_FUNCTIONS = (
    "load_preset", "load_workload", "run_campaign", "characterize",
    "monitor_fleet", "screen", "sweep", "project", "schedule", "chaos",
    "slow_assignment_probability", "node_variability_scores",
    "plan_placements",
)


class TestFacade:
    def test_surface_is_pinned_exactly(self):
        assert frozenset(api.__all__) == API_SURFACE

    def test_all_exports_resolve_and_are_documented(self):
        for name in api.__all__:
            obj = getattr(api, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                assert (obj.__doc__ or "").strip(), f"repro.api.{name} undocumented"

    @pytest.mark.parametrize("name", KEYWORD_ONLY_FUNCTIONS)
    def test_signatures_are_keyword_only(self, name):
        signature = inspect.signature(getattr(api, name))
        positional = [
            p for p in signature.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        # at most one leading positional (the registry name); every other
        # parameter must be keyword-only so signatures can grow safely
        assert len(positional) <= 1, f"{name}: {positional}"
        if positional:
            assert positional[0].name == "name"

    def test_import_emits_no_warnings(self):
        import subprocess
        import sys

        result = subprocess.run(
            [sys.executable, "-W", "error::DeprecationWarning",
             "-c", "import repro.api"],
            capture_output=True,
            text=True,
        )
        assert result.returncode == 0, result.stderr


class TestTopLevel:
    def test_version(self):
        assert repro.__version__ == "2.0.0"

    def test_top_level_exports_only_the_facade(self):
        assert set(repro.__all__) == {"__version__", "api"}

    @pytest.mark.parametrize("name", sorted(repro._REMOVED_EXPORTS))
    def test_every_legacy_export_is_gone(self, name):
        """PR 3's deprecation shims are hard removals as of 2.0."""
        with pytest.raises(ImportError, match="removed in repro 2.0"):
            getattr(repro, name)

    def test_removal_error_names_the_replacement(self):
        with pytest.raises(ImportError, match=r'load_preset\("longhorn"\)'):
            repro.longhorn

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError):
            repro.does_not_exist

    def test_dir_lists_only_the_facade(self):
        listed = dir(repro)
        assert "api" in listed
        assert "longhorn" not in listed
        assert "VariabilitySuite" not in listed


@pytest.mark.parametrize("module_name", SUBPACKAGES)
class TestSubpackages:
    def test_all_exports_resolve(self, module_name):
        module = importlib.import_module(module_name)
        for name in module.__all__:
            assert hasattr(module, name), f"{module_name}.{name} missing"

    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40

    def test_public_callables_documented(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if inspect.isfunction(obj) or inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}")
        assert not undocumented, f"missing docstrings: {undocumented}"

    def test_public_classes_expose_documented_methods(self, module_name):
        module = importlib.import_module(module_name)
        undocumented = []
        for name in module.__all__:
            obj = getattr(module, name)
            if not inspect.isclass(obj):
                continue
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (attr.__doc__ or "").strip():
                    undocumented.append(f"{module_name}.{name}.{attr_name}")
        assert not undocumented, f"missing docstrings: {undocumented}"


class TestErrorsHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        from repro import errors

        for name in dir(errors):
            obj = getattr(errors, name)
            if (inspect.isclass(obj) and issubclass(obj, Exception)
                    and obj is not errors.ReproError
                    and obj.__module__ == "repro.errors"):
                assert issubclass(obj, errors.ReproError), name
