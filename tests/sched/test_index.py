"""Unit and property tests for the scheduler's allocation indexes.

Each structure must answer exactly as the reference engine's brute-force
scan would — these tests check every query against the obvious O(n)
recomputation under randomized orders, counts, and churn.
"""

import numpy as np
import pytest

from repro.sched.index import (
    OrderedFreeIndex,
    SizeBucketQueue,
    resolve_with_ranking,
)


def _brute_first_at_least(order, counts, k):
    for node in order.tolist():
        if counts[node] >= k:
            return int(node)
    return -1


def _brute_take_prefix(order, counts, k):
    if int(counts.sum()) < k:
        return None
    out, remaining = [], k
    for node in order.tolist():
        take = min(int(counts[node]), remaining)
        if take > 0:
            out.append((int(node), take))
            remaining -= take
        if remaining == 0:
            return out
    return None


class TestOrderedFreeIndex:
    @pytest.mark.parametrize("n_nodes", (1, 5, 64, 97))
    def test_queries_match_brute_force(self, n_nodes):
        rng = np.random.default_rng(n_nodes)
        order = rng.permutation(n_nodes)
        counts = rng.integers(0, 7, size=n_nodes)
        tree = OrderedFreeIndex(order, counts)
        for k in range(1, 9):
            assert tree.first_at_least(k) == _brute_first_at_least(
                order, counts, k
            )
        for k in (1, 3, counts.sum(), counts.sum() + 1):
            assert tree.take_prefix(int(k)) == _brute_take_prefix(
                order, counts, int(k)
            )

    def test_incremental_updates_track_mutations(self):
        rng = np.random.default_rng(0)
        n_nodes = 40
        order = rng.permutation(n_nodes)
        counts = np.full(n_nodes, 6, dtype=np.int64)
        tree = OrderedFreeIndex(order, counts)
        for _ in range(500):
            node = int(rng.integers(0, n_nodes))
            counts[node] = int(rng.integers(0, 7))
            tree.update(node, int(counts[node]))
            k = int(rng.integers(1, 8))
            assert tree.first_at_least(k) == _brute_first_at_least(
                order, counts, k
            )
            width = int(rng.integers(1, 20))
            assert tree.take_prefix(width) == _brute_take_prefix(
                order, counts, width
            )

    def test_empty_machine(self):
        tree = OrderedFreeIndex(np.arange(3), np.zeros(3, dtype=np.int64))
        assert tree.first_at_least(1) == -1
        assert tree.take_prefix(1) is None
        assert tree.take_prefix(0) == []

    def test_prefers_order_not_node_index(self):
        order = np.asarray([2, 0, 1])
        counts = np.asarray([4, 4, 4])
        tree = OrderedFreeIndex(order, counts)
        assert tree.first_at_least(2) == 2
        assert tree.take_prefix(6) == [(2, 4), (0, 2)]


class TestResolveWithRanking:
    @pytest.mark.parametrize("trial", range(20))
    def test_matches_brute_force(self, trial):
        rng = np.random.default_rng(trial)
        n_nodes = int(rng.integers(1, 30))
        per_node = int(rng.integers(1, 7))
        ranking = rng.permutation(n_nodes)
        counts = rng.integers(0, per_node + 1, size=n_nodes)
        width = int(rng.integers(1, 3 * per_node + 1))
        got = resolve_with_ranking(ranking, counts, width, per_node)
        if width <= per_node:
            want = _brute_first_at_least(ranking, counts, width)
            assert got == (None if want < 0 else [(want, width)])
        else:
            assert got == _brute_take_prefix(ranking, counts, width)

    def test_single_node_exact_fit(self):
        got = resolve_with_ranking(
            np.asarray([1, 0]), np.asarray([2, 3]), 3, 4
        )
        assert got == [(1, 3)]

    def test_insufficient_capacity(self):
        assert resolve_with_ranking(
            np.asarray([0, 1]), np.asarray([1, 1]), 8, 4
        ) is None


class TestSizeBucketQueue:
    def test_fifo_within_and_across_buckets(self):
        queue = SizeBucketQueue()
        queue.push(4, 0, 100)
        queue.push(1, 1, 101)
        queue.push(4, 2, 102)
        assert len(queue) == 3
        assert queue.head_seq() == 0
        # width 4 blocked, width 1 fits -> earliest fitting is job 101
        assert queue.earliest_fitting(lambda s: s == 1) == (1, 101, 1)
        assert queue.pop(1) == (1, 101)
        assert queue.head_seq() == 0
        assert queue.earliest_fitting(lambda s: True) == (0, 100, 4)
        queue.pop(4)
        assert queue.earliest_fitting(lambda s: True) == (2, 102, 4)
        queue.pop(4)
        assert len(queue) == 0
        assert queue.head_seq() is None
        assert queue.earliest_fitting(lambda s: True) is None

    def test_fit_probe_called_once_per_width(self):
        queue = SizeBucketQueue()
        for seq in range(10):
            queue.push(1 + seq % 3, seq, seq)
        probed = []
        queue.earliest_fitting(lambda s: probed.append(s) or False)
        assert sorted(probed) == [1, 2, 3]

    def test_matches_flat_queue_scan_under_churn(self):
        rng = np.random.default_rng(5)
        queue = SizeBucketQueue()
        flat = []  # (seq, job_id, size) in submission order
        seq = 0
        for _ in range(400):
            if flat and rng.random() < 0.5:
                free = int(rng.integers(0, 9))
                want = next(
                    (e for e in flat if e[2] <= free), None
                )
                got = queue.earliest_fitting(lambda s: s <= free)
                assert got == want
                if want is not None:
                    flat.remove(want)
                    assert queue.pop(want[2]) == (want[0], want[1])
            else:
                size = int(rng.choice([1, 2, 4, 8]))
                queue.push(size, seq, 1000 + seq)
                flat.append((seq, 1000 + seq, size))
                seq += 1
            assert len(queue) == len(flat)
            head = min(flat)[0] if flat else None
            assert queue.head_seq() == head
