"""Tests for the discrete-event queue engine."""

import json

import numpy as np
import pytest

from repro.cluster import get_preset
from repro.errors import SimulationError
from repro.sched import (
    BackfillPolicy,
    FifoPolicy,
    Job,
    TraceConfig,
    build_scheduling_report,
    event_log_lines,
    generate_trace,
    run_schedule,
    validate_scheduling_report,
)


@pytest.fixture(scope="module")
def cluster():
    return get_preset("longhorn", seed=11, scale=0.25)


@pytest.fixture(scope="module")
def outcome(cluster):
    trace = generate_trace(TraceConfig(n_jobs=30, seed=4))
    return run_schedule(cluster, trace, FifoPolicy())


class TestEngineInvariants:
    def test_every_job_completes(self, outcome):
        assert len(outcome.records) == 30
        assert [r.job_id for r in outcome.records] == list(range(30))

    def test_event_log_is_balanced(self, outcome):
        kinds = [e["event"] for e in outcome.events]
        assert kinds.count("submit") == 30
        assert kinds.count("start") == 30
        assert kinds.count("finish") == 30

    def test_causality_per_job(self, outcome):
        for record in outcome.records:
            assert record.submit_time_s <= record.start_time_s
            assert record.start_time_s < record.finish_time_s
            assert record.jct_s == pytest.approx(
                record.wait_time_s + record.runtime_s
            )

    def test_gang_width_honored(self, outcome):
        for record in outcome.records:
            assert len(record.gpu_indices) == record.n_gpus
            assert len(set(record.gpu_indices)) == record.n_gpus

    def test_no_gpu_oversubscribed(self, outcome):
        # at any start event, the job's GPUs must not be in use by any
        # other job whose [start, finish) interval covers that instant
        intervals = {
            r.job_id: (r.start_time_s, r.finish_time_s, set(r.gpu_indices))
            for r in outcome.records
        }
        for r in outcome.records:
            for other_id, (s, f, gpus) in intervals.items():
                if other_id == r.job_id:
                    continue
                if s < r.finish_time_s and r.start_time_s < f:
                    assert not (set(r.gpu_indices) & gpus), (
                        f"jobs {r.job_id} and {other_id} overlap"
                    )

    def test_single_node_jobs_do_not_span(self, cluster, outcome):
        per_node = cluster.topology.gpus_per_node
        for record in outcome.records:
            if record.n_gpus <= per_node:
                assert len(record.node_indices) == 1

    def test_wide_gangs_span_nodes(self, cluster, outcome):
        per_node = cluster.topology.gpus_per_node
        wide = [r for r in outcome.records if r.n_gpus > per_node]
        assert wide, "trace should include 8-GPU gangs"
        for record in wide:
            assert len(record.node_indices) >= 2

    def test_event_log_lines_canonical(self, outcome):
        lines = event_log_lines(outcome.events)
        for line in lines:
            doc = json.loads(line)
            assert json.dumps(doc, sort_keys=True,
                              separators=(",", ":")) == line


class TestQueueDiscipline:
    def test_fifo_head_blocks_queue(self, cluster):
        # saturate the machine with one whale, then a blocked medium job,
        # then a tiny job that COULD run — fifo must hold it back
        n = cluster.topology.n_gpus
        jobs = (
            Job(0, 1.0, "sgemm", n, 50),
            Job(1, 2.0, "sgemm", n, 10),
            Job(2, 3.0, "sgemm", 1, 10),
        )
        out = run_schedule(cluster, jobs, FifoPolicy())
        by_id = {r.job_id: r for r in out.records}
        assert by_id[2].start_time_s >= by_id[1].start_time_s

    def test_backfill_lets_small_jobs_jump(self, cluster):
        n = cluster.topology.n_gpus
        jobs = (
            Job(0, 1.0, "sgemm", n - 1, 50),
            Job(1, 2.0, "sgemm", n, 10),
            Job(2, 3.0, "sgemm", 1, 10),
        )
        fifo = run_schedule(cluster, jobs, FifoPolicy())
        backfill = run_schedule(cluster, jobs, BackfillPolicy())
        fifo_start = {r.job_id: r.start_time_s for r in fifo.records}
        bf_start = {r.job_id: r.start_time_s for r in backfill.records}
        # under fifo the 1-GPU job waits behind the blocked whale; with
        # backfill it starts immediately in the leftover capacity
        assert bf_start[2] < fifo_start[2]
        backfilled = [e for e in backfill.events
                      if e["event"] == "start" and e["backfilled"]]
        assert backfilled


class TestReportBuilding:
    def test_report_validates_and_serializes(self, cluster, outcome):
        report = build_scheduling_report(
            cluster.name, outcome, FifoPolicy().describe(),
            cluster.topology.n_gpus, trace_seed=4,
        )
        doc = report.to_dict()
        validate_scheduling_report(doc)
        assert doc["metrics"]["n_jobs"] == 30
        assert 0 <= doc["metrics"]["slow_assignment_rate"] <= 1
        assert 0 <= doc["metrics"]["utilization"] <= 1
        assert doc["metrics"]["straggler_slowdown_p95"] >= 1.0
        assert report.render()

    def test_report_rejects_schema_violation(self, cluster, outcome):
        from repro.errors import ConfigError

        report = build_scheduling_report(
            cluster.name, outcome, FifoPolicy().describe(),
            cluster.topology.n_gpus,
        )
        doc = report.to_dict()
        del doc["metrics"]["makespan_s"]
        with pytest.raises(ConfigError, match="makespan_s"):
            validate_scheduling_report(doc)


class TestEngineValidation:
    def test_empty_trace_rejected(self, cluster):
        with pytest.raises(SimulationError):
            run_schedule(cluster, (), FifoPolicy())

    def test_oversized_job_rejected(self, cluster):
        jobs = (Job(0, 1.0, "sgemm", cluster.topology.n_gpus + 1, 10),)
        with pytest.raises(SimulationError, match="wants"):
            run_schedule(cluster, jobs, FifoPolicy())


class TestTracerIntegration:
    def test_counters_and_span_recorded(self, cluster):
        from repro.obs import Tracer
        from repro.obs.tracer import activate

        trace = generate_trace(TraceConfig(n_jobs=10, seed=4))
        tracer = Tracer()
        with activate(tracer):
            run_schedule(cluster, trace, FifoPolicy())
        assert tracer.counters["sched.submitted"] == 10
        assert tracer.counters["sched.completed"] == 10
        assert tracer.counters["sched.placements"] == 10
        assert any(s.name == "schedule" for s in tracer.spans)

    def test_tracing_never_perturbs_results(self, cluster):
        from repro.obs import Tracer
        from repro.obs.tracer import activate

        trace = generate_trace(TraceConfig(n_jobs=10, seed=4))
        bare = run_schedule(cluster, trace, FifoPolicy())
        with activate(Tracer()):
            traced = run_schedule(cluster, trace, FifoPolicy())
        assert event_log_lines(bare.events) == event_log_lines(traced.events)
