"""Bit-reproducibility of the batch-queue simulator.

The ISSUE-level guarantee: the same seed and policy produce a
byte-identical event log and report — across repeated invocations, across
worker counts (the profiling campaign is the only parallel stage and is
bit-identical to serial), and across policy objects rebuilt from scratch.
"""

import pytest

from repro import api
from repro.sched import event_log_lines


@pytest.fixture(scope="module")
def cluster():
    return api.load_preset("longhorn", seed=2022, scale=0.25)


TRACE = None  # initialized lazily to keep fixture scope simple


def _trace():
    return api.TraceConfig(n_jobs=20, arrival_rate_per_hour=300.0, seed=9)


class TestRepeatability:
    def test_fifo_bytes_stable_across_invocations(self, cluster):
        a = api.schedule(cluster=cluster, policy="fifo", trace=_trace())
        b = api.schedule(cluster=cluster, policy="fifo", trace=_trace())
        assert event_log_lines(a.events) == event_log_lines(b.events)
        assert a.report.to_json() == b.report.to_json()

    def test_variability_aware_bytes_stable(self, cluster):
        kwargs = dict(
            cluster=cluster,
            policy="variability-aware",
            trace=_trace(),
            profile_config=api.CampaignConfig(days=1),
        )
        a = api.schedule(**kwargs)
        b = api.schedule(**kwargs)
        assert event_log_lines(a.events) == event_log_lines(b.events)
        assert a.report.to_json() == b.report.to_json()

    def test_fresh_cluster_object_same_bytes(self):
        a = api.schedule(
            cluster=api.load_preset("longhorn", seed=2022, scale=0.25),
            policy="fifo", trace=_trace(),
        )
        b = api.schedule(
            cluster=api.load_preset("longhorn", seed=2022, scale=0.25),
            policy="fifo", trace=_trace(),
        )
        assert a.report.to_json() == b.report.to_json()


class TestWorkerInvariance:
    def test_aware_policy_identical_for_workers_1_and_2(self, cluster):
        kwargs = dict(
            cluster=cluster,
            policy="variability-aware",
            trace=_trace(),
            profile_config=api.CampaignConfig(days=1),
        )
        serial = api.schedule(workers=1, **kwargs)
        sharded = api.schedule(workers=2, **kwargs)
        assert event_log_lines(serial.events) == event_log_lines(
            sharded.events
        )
        assert serial.report.to_json() == sharded.report.to_json()


class TestPolicyIsolation:
    def test_job_intrinsics_keyed_by_job_id(self, cluster):
        """A job landing on the same GPUs runs identically under any policy.

        Two policies with different names (hence different policy RNG
        streams) that rank nodes identically must produce byte-identical
        runs: every job's intrinsic draws come from its own job-id-keyed
        stream, not from the policy stream.
        """
        import numpy as np

        class _Identity(api.PlacementPolicy):
            """Deterministic identity ranking under a given policy name."""

            def __init__(self, name):
                self.name = name

            def rank_nodes(self, workload, n_gpus, free_counts, rng):
                """Nodes in ascending index order, ignoring the rng."""
                return np.arange(free_counts.shape[0])

        a = api.schedule(
            cluster=cluster, policy=_Identity("ident-a"), trace=_trace()
        )
        b = api.schedule(
            cluster=cluster, policy=_Identity("ident-b"), trace=_trace()
        )
        assert event_log_lines(a.events) == event_log_lines(b.events)
        for ra, rb in zip(a.records, b.records):
            assert ra.runtime_s == rb.runtime_s
            assert ra.energy_j == rb.energy_j

    def test_different_trace_seed_changes_bytes(self, cluster):
        a = api.schedule(
            cluster=cluster, policy="fifo",
            trace=api.TraceConfig(n_jobs=20, seed=1),
        )
        b = api.schedule(
            cluster=cluster, policy="fifo",
            trace=api.TraceConfig(n_jobs=20, seed=2),
        )
        assert a.report.to_json() != b.report.to_json()

    def test_explicit_job_tuple_accepted(self, cluster):
        jobs = [api.Job(0, 1.0, "sgemm", 2, 20),
                api.Job(1, 2.0, "pagerank", 1, 20)]
        result = api.schedule(cluster=cluster, policy="fifo", trace=jobs)
        assert result.report.trace_seed is None
        assert result.report.metrics["n_jobs"] == 2
