"""Golden event-log guard: the indexed engine must reproduce PR 5 bytes.

``tests/sched/golden/`` holds the canonical event logs of a 120-job
half-Longhorn run (the scheduling benchmark's configuration) for every
built-in policy, generated once with ``engine="reference"`` — the PR 5
dispatch loop kept verbatim.  This test replays the identical run through
the indexed engine and compares the serialized logs *byte for byte*: any
drift in placement order, backfill decisions, RNG stream consumption, or
event formatting fails here before it can silently change results.
"""

from pathlib import Path

import pytest

from repro import api
from repro.sched import event_log_lines

GOLDEN_DIR = Path(__file__).parent / "golden"

#: The scheduling benchmark's configuration (benchmarks/bench_ext_scheduling).
SEED = 2022
SCALE = 0.5
TRACE = dict(n_jobs=120, arrival_rate_per_hour=900.0, seed=SEED)
PROFILE_DAYS = 2


@pytest.fixture(scope="module")
def cluster():
    return api.load_preset("longhorn", seed=SEED, scale=SCALE)


@pytest.mark.slow
@pytest.mark.parametrize("policy", api.POLICY_NAMES)
def test_indexed_engine_reproduces_golden_bytes(cluster, policy):
    golden = (GOLDEN_DIR / f"events_{policy}.jsonl").read_text()
    result = api.schedule(
        cluster=cluster,
        policy=policy,
        trace=api.TraceConfig(**TRACE),
        engine="indexed" if policy != "fifo" else "auto",
        profile_config=api.CampaignConfig(days=PROFILE_DAYS),
    )
    replayed = "\n".join(event_log_lines(result.events)) + "\n"
    assert replayed == golden, (
        f"indexed engine event log diverged from golden bytes for "
        f"{policy!r}"
    )


def test_golden_files_cover_every_policy():
    present = {p.stem for p in GOLDEN_DIR.glob("events_*.jsonl")}
    assert present == {f"events_{name}" for name in api.POLICY_NAMES}
