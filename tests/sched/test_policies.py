"""Tests for the placement policies."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched.policies import (
    SENSITIVITY_THRESHOLD,
    BackfillPolicy,
    EnergyCappedPolicy,
    FifoPolicy,
    HealthAwarePolicy,
    PowerBudgetAdmission,
    RandomRankingSpec,
    StaticRankingSpec,
    VariabilityAwarePolicy,
    node_grades_from_gpu_grades,
    node_power_watts,
)
from repro.workloads import get_workload

N_NODES = 6
FREE = np.full(N_NODES, 4, dtype=np.int64)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestFifo:
    def test_permutation_of_all_nodes(self):
        ranked = FifoPolicy().rank_nodes(get_workload("sgemm"), 2, FREE, _rng())
        assert sorted(ranked.tolist()) == list(range(N_NODES))

    def test_no_backfill(self):
        assert FifoPolicy().backfill is False
        assert BackfillPolicy().backfill is True

    def test_rng_drives_order(self):
        a = FifoPolicy().rank_nodes(get_workload("sgemm"), 2, FREE, _rng(1))
        b = FifoPolicy().rank_nodes(get_workload("sgemm"), 2, FREE, _rng(2))
        assert a.tolist() != b.tolist()


class TestVariabilityAware:
    SCORES = np.asarray([1.30, 1.01, 1.10, 1.05, 1.20, 1.02])

    def test_sensitive_workload_prefers_low_variation(self):
        policy = VariabilityAwarePolicy(self.SCORES)
        ranked = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng())
        assert ranked[0] == 1  # lowest score first
        assert ranked[-1] == 0  # highest score last

    def test_memory_bound_workload_absorbs_high_variation(self):
        policy = VariabilityAwarePolicy(self.SCORES)
        ranked = policy.rank_nodes(get_workload("pagerank"), 2, FREE, _rng())
        assert ranked[0] == 0  # highest-variation node first
        assert ranked[-1] == 1

    def test_threshold_is_between_classes(self):
        from repro.core.classify import (
            classify_workload,
            expected_performance_sensitivity,
        )

        sgemm = expected_performance_sensitivity(
            classify_workload(get_workload("sgemm"))
        )
        pagerank = expected_performance_sensitivity(
            classify_workload(get_workload("pagerank"))
        )
        assert pagerank < SENSITIVITY_THRESHOLD <= sgemm

    def test_deterministic_ranking(self):
        policy = VariabilityAwarePolicy(self.SCORES)
        a = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng())
        b = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(99))
        np.testing.assert_array_equal(a, b)  # rng not consumed at all

    def test_wrong_size_rejected(self):
        policy = VariabilityAwarePolicy(self.SCORES[:3])
        with pytest.raises(ConfigError, match="nodes"):
            policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng())

    def test_non_finite_scores_rejected(self):
        with pytest.raises(ConfigError):
            VariabilityAwarePolicy(np.asarray([1.0, np.nan]))


class TestHealthAware:
    GRADES = ("ok", "degraded", "ok", "critical", "watch", "ok")

    def test_unhealthy_nodes_rank_last(self):
        policy = HealthAwarePolicy(self.GRADES)
        ranked = policy.rank_nodes(
            get_workload("sgemm"), 2, FREE, _rng()
        ).tolist()
        assert set(ranked[-2:]) == {1, 3}  # degraded + critical at the back
        assert ranked[-1] == 3  # critical strictly last

    def test_healthy_nodes_shuffled_by_rng(self):
        policy = HealthAwarePolicy(self.GRADES)
        a = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(1)).tolist()
        b = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(2)).tolist()
        assert a != b
        assert a[-1] == b[-1] == 3

    def test_unknown_grade_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            HealthAwarePolicy(("ok", "sick"))

    def test_describe_counts_grades(self):
        described = HealthAwarePolicy(self.GRADES).describe()
        assert described["node_grade_counts"]["ok"] == 3
        assert described["node_grade_counts"]["critical"] == 1


class TestNodeGradesRollup:
    def test_worst_member_wins(self):
        node_of_gpu = np.asarray([0, 0, 1, 1])
        grades = node_grades_from_gpu_grades(
            ("ok", "degraded", "ok", "ok"), node_of_gpu, 2
        )
        assert grades == ("degraded", "ok")


class TestNodePowerWatts:
    def test_sums_per_node(self):
        node_of_gpu = np.asarray([0, 0, 1, 1])
        out = node_power_watts(
            np.asarray([100.0, 110.0, 90.0, 95.0]), node_of_gpu, 2
        )
        np.testing.assert_allclose(out, [210.0, 185.0])

    def test_nonpositive_power_rejected(self):
        with pytest.raises(ConfigError):
            node_power_watts(np.asarray([100.0, 0.0]), np.asarray([0, 1]), 2)


class TestPowerBudgetAdmission:
    def test_commit_release_accounting(self):
        admission = PowerBudgetAdmission(budget_w=1000.0, gpu_reserve_w=100.0)
        assert admission.can_admit(10)
        assert not admission.can_admit(11)
        admission.commit(0, 6)
        assert admission.committed_w == 600.0
        assert admission.max_admissible_gpus() == 4
        assert admission.can_admit(4)
        assert not admission.can_admit(5)
        admission.commit(1, 4)
        assert not admission.can_admit(1)
        admission.release(0)
        assert admission.can_admit(6)
        admission.release(1)
        assert admission.committed_w == 0.0

    def test_reset_clears_reservations(self):
        admission = PowerBudgetAdmission(budget_w=500.0, gpu_reserve_w=100.0)
        admission.commit(0, 3)
        admission.reset()
        assert admission.committed_w == 0.0
        assert admission.can_admit(5)

    def test_release_unknown_job_raises(self):
        admission = PowerBudgetAdmission(budget_w=500.0, gpu_reserve_w=100.0)
        with pytest.raises(KeyError):
            admission.release(42)

    @pytest.mark.parametrize("budget,reserve", [(0.0, 100.0), (500.0, -1.0)])
    def test_bad_configuration_rejected(self, budget, reserve):
        with pytest.raises(ConfigError):
            PowerBudgetAdmission(budget_w=budget, gpu_reserve_w=reserve)


class TestEnergyCapped:
    POWER = np.asarray([400.0, 280.0, 340.0, 280.0, 500.0, 310.0])

    def _policy(self, **kwargs):
        kwargs.setdefault("power_budget_w", 1200.0)
        kwargs.setdefault("gpus_per_node", 4)
        return EnergyCappedPolicy(self.POWER, **kwargs)

    def test_cheapest_nodes_first_ties_by_index(self):
        ranked = self._policy().rank_nodes(
            get_workload("sgemm"), 2, FREE, _rng()
        )
        assert ranked.tolist() == [1, 3, 5, 2, 0, 4]

    def test_rng_not_consumed(self):
        policy = self._policy()
        a = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(1))
        b = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(2))
        np.testing.assert_array_equal(a, b)

    def test_default_reserve_is_worst_gpu_share(self):
        policy = self._policy()
        assert policy.admission.gpu_reserve_w == pytest.approx(500.0 / 4)

    def test_backfills_by_default(self):
        assert self._policy().backfill is True
        assert self._policy(backfill=False).backfill is False

    def test_describe_includes_budget(self):
        described = self._policy().describe()
        assert described["power_budget_w"] == 1200.0
        assert described["node_power_min_w"] == 280.0
        assert described["node_power_max_w"] == 500.0

    def test_wrong_size_rejected(self):
        with pytest.raises(ConfigError, match="nodes"):
            self._policy().rank_nodes(
                get_workload("sgemm"), 2, FREE[:3], _rng()
            )


class TestIndexedRankingSpecs:
    def test_fifo_is_random_spec_with_legacy_draw(self):
        spec = FifoPolicy().indexed_ranking(N_NODES)
        assert isinstance(spec, RandomRankingSpec)
        np.testing.assert_array_equal(
            spec.draw(_rng(7)), _rng(7).permutation(N_NODES)
        )

    def test_backfill_inherits_fifo_spec(self):
        assert isinstance(
            BackfillPolicy().indexed_ranking(N_NODES), RandomRankingSpec
        )

    def test_variability_aware_static_orders_match_rank_nodes(self):
        policy = VariabilityAwarePolicy(TestVariabilityAware.SCORES)
        spec = policy.indexed_ranking(N_NODES)
        assert isinstance(spec, StaticRankingSpec)
        for name in ("sgemm", "pagerank"):
            workload = get_workload(name)
            order = spec.orders[spec.order_index_of(workload, 2)]
            np.testing.assert_array_equal(
                order, policy.rank_nodes(workload, 2, FREE, _rng())
            )

    def test_health_aware_draw_matches_rank_nodes(self):
        policy = HealthAwarePolicy(TestHealthAware.GRADES)
        spec = policy.indexed_ranking(N_NODES)
        assert isinstance(spec, RandomRankingSpec)
        np.testing.assert_array_equal(
            spec.draw(_rng(3)),
            policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(3)),
        )

    def test_energy_capped_single_static_order(self):
        policy = EnergyCappedPolicy(
            TestEnergyCapped.POWER, power_budget_w=1200.0, gpus_per_node=4
        )
        spec = policy.indexed_ranking(N_NODES)
        assert isinstance(spec, StaticRankingSpec)
        assert len(spec.orders) == 1
        assert spec.order_index_of(get_workload("bert"), 8) == 0

    def test_overriding_rank_nodes_disables_indexing(self):
        class Custom(VariabilityAwarePolicy):
            def rank_nodes(self, workload, n_gpus, free_counts, rng):
                return np.arange(free_counts.shape[0])

        policy = Custom(TestVariabilityAware.SCORES)
        assert policy.indexed_ranking(N_NODES) is None

    def test_wrong_node_count_rejected(self):
        policy = VariabilityAwarePolicy(TestVariabilityAware.SCORES)
        with pytest.raises(ConfigError, match="nodes"):
            policy.indexed_ranking(N_NODES + 1)
