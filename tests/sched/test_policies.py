"""Tests for the placement policies."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched.policies import (
    SENSITIVITY_THRESHOLD,
    BackfillPolicy,
    FifoPolicy,
    HealthAwarePolicy,
    VariabilityAwarePolicy,
    node_grades_from_gpu_grades,
)
from repro.workloads import get_workload

N_NODES = 6
FREE = np.full(N_NODES, 4, dtype=np.int64)


def _rng(seed=0):
    return np.random.default_rng(seed)


class TestFifo:
    def test_permutation_of_all_nodes(self):
        ranked = FifoPolicy().rank_nodes(get_workload("sgemm"), 2, FREE, _rng())
        assert sorted(ranked.tolist()) == list(range(N_NODES))

    def test_no_backfill(self):
        assert FifoPolicy().backfill is False
        assert BackfillPolicy().backfill is True

    def test_rng_drives_order(self):
        a = FifoPolicy().rank_nodes(get_workload("sgemm"), 2, FREE, _rng(1))
        b = FifoPolicy().rank_nodes(get_workload("sgemm"), 2, FREE, _rng(2))
        assert a.tolist() != b.tolist()


class TestVariabilityAware:
    SCORES = np.asarray([1.30, 1.01, 1.10, 1.05, 1.20, 1.02])

    def test_sensitive_workload_prefers_low_variation(self):
        policy = VariabilityAwarePolicy(self.SCORES)
        ranked = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng())
        assert ranked[0] == 1  # lowest score first
        assert ranked[-1] == 0  # highest score last

    def test_memory_bound_workload_absorbs_high_variation(self):
        policy = VariabilityAwarePolicy(self.SCORES)
        ranked = policy.rank_nodes(get_workload("pagerank"), 2, FREE, _rng())
        assert ranked[0] == 0  # highest-variation node first
        assert ranked[-1] == 1

    def test_threshold_is_between_classes(self):
        from repro.core.classify import (
            classify_workload,
            expected_performance_sensitivity,
        )

        sgemm = expected_performance_sensitivity(
            classify_workload(get_workload("sgemm"))
        )
        pagerank = expected_performance_sensitivity(
            classify_workload(get_workload("pagerank"))
        )
        assert pagerank < SENSITIVITY_THRESHOLD <= sgemm

    def test_deterministic_ranking(self):
        policy = VariabilityAwarePolicy(self.SCORES)
        a = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng())
        b = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(99))
        np.testing.assert_array_equal(a, b)  # rng not consumed at all

    def test_wrong_size_rejected(self):
        policy = VariabilityAwarePolicy(self.SCORES[:3])
        with pytest.raises(ConfigError, match="nodes"):
            policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng())

    def test_non_finite_scores_rejected(self):
        with pytest.raises(ConfigError):
            VariabilityAwarePolicy(np.asarray([1.0, np.nan]))


class TestHealthAware:
    GRADES = ("ok", "degraded", "ok", "critical", "watch", "ok")

    def test_unhealthy_nodes_rank_last(self):
        policy = HealthAwarePolicy(self.GRADES)
        ranked = policy.rank_nodes(
            get_workload("sgemm"), 2, FREE, _rng()
        ).tolist()
        assert set(ranked[-2:]) == {1, 3}  # degraded + critical at the back
        assert ranked[-1] == 3  # critical strictly last

    def test_healthy_nodes_shuffled_by_rng(self):
        policy = HealthAwarePolicy(self.GRADES)
        a = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(1)).tolist()
        b = policy.rank_nodes(get_workload("sgemm"), 2, FREE, _rng(2)).tolist()
        assert a != b
        assert a[-1] == b[-1] == 3

    def test_unknown_grade_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            HealthAwarePolicy(("ok", "sick"))

    def test_describe_counts_grades(self):
        described = HealthAwarePolicy(self.GRADES).describe()
        assert described["node_grade_counts"]["ok"] == 3
        assert described["node_grade_counts"]["critical"] == 1


class TestNodeGradesRollup:
    def test_worst_member_wins(self):
        node_of_gpu = np.asarray([0, 0, 1, 1])
        grades = node_grades_from_gpu_grades(
            ("ok", "degraded", "ok", "ok"), node_of_gpu, 2
        )
        assert grades == ("degraded", "ok")
