"""Tests for the seeded job-trace generator."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.sched import TraceConfig, arrival_rate_multiplier, generate_trace
from repro.sched.trace import PAPER_WORKLOAD_NAMES


class TestTraceConfig:
    def test_defaults_valid(self):
        config = TraceConfig()
        assert config.n_jobs == 100
        assert config.workload_names == PAPER_WORKLOAD_NAMES

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_bad_n_jobs_rejected(self, bad):
        with pytest.raises(ConfigError):
            TraceConfig(n_jobs=bad)

    def test_mismatched_gang_weights_rejected(self):
        with pytest.raises(ConfigError, match="gang"):
            TraceConfig(gang_sizes=(1, 2), gang_weights=(1.0,))

    def test_mismatched_workload_weights_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            TraceConfig(workload_names=("sgemm",),
                        workload_weights=(0.5, 0.5))

    def test_bad_work_units_range_rejected(self):
        with pytest.raises(ConfigError):
            TraceConfig(work_units_range=(10, 5))

    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(ConfigError):
            TraceConfig(arrival_rate_per_hour=0.0)


class TestGenerateTrace:
    def test_same_seed_same_trace(self):
        a = generate_trace(TraceConfig(n_jobs=40, seed=5))
        b = generate_trace(TraceConfig(n_jobs=40, seed=5))
        assert a == b

    def test_different_seed_different_trace(self):
        a = generate_trace(TraceConfig(n_jobs=40, seed=5))
        b = generate_trace(TraceConfig(n_jobs=40, seed=6))
        assert a != b

    def test_submit_times_monotonic(self):
        trace = generate_trace(TraceConfig(n_jobs=60, seed=1))
        times = [job.submit_time_s for job in trace]
        assert times == sorted(times)
        assert times[0] > 0

    def test_draws_respect_configured_support(self):
        config = TraceConfig(n_jobs=200, seed=2)
        trace = generate_trace(config)
        assert {job.n_gpus for job in trace} <= set(config.gang_sizes)
        assert {job.workload_name for job in trace} <= set(
            config.workload_names
        )
        lo, hi = config.work_units_range
        assert all(lo <= job.work_units <= hi for job in trace)

    def test_job_ids_sequential(self):
        trace = generate_trace(TraceConfig(n_jobs=10, seed=0))
        assert [job.job_id for job in trace] == list(range(10))

    def test_mean_interarrival_tracks_rate(self):
        config = TraceConfig(
            n_jobs=500, arrival_rate_per_hour=360.0, seed=3
        )
        trace = generate_trace(config)
        mean_gap = trace[-1].submit_time_s / len(trace)
        assert mean_gap == pytest.approx(10.0, rel=0.2)


class TestDiurnalConfig:
    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5])
    def test_bad_amplitude_rejected(self, bad):
        with pytest.raises(ConfigError, match="diurnal_amplitude"):
            TraceConfig(diurnal_amplitude=bad)

    @pytest.mark.parametrize("bad", [-1.0, 24.0, 30.0])
    def test_bad_peak_hour_rejected(self, bad):
        with pytest.raises(ConfigError, match="peak_hour"):
            TraceConfig(peak_hour=bad)

    def test_wrong_weight_count_rejected(self):
        with pytest.raises(ConfigError, match="7 entries"):
            TraceConfig(day_of_week_weights=(1.0, 1.0))

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            TraceConfig(day_of_week_weights=(1,) * 6 + (0.0,))

    def test_is_flat(self):
        assert TraceConfig().is_flat
        assert not TraceConfig(diurnal_amplitude=0.3).is_flat
        assert not TraceConfig(day_of_week_weights=(1.0,) * 7).is_flat


class TestArrivalRateMultiplier:
    def test_flat_is_unity(self):
        times = np.linspace(0.0, 7 * 86_400.0, 50)
        np.testing.assert_array_equal(
            arrival_rate_multiplier(times), np.ones(50)
        )

    def test_peak_and_trough(self):
        peak = arrival_rate_multiplier(
            np.array([14.0 * 3600.0]), diurnal_amplitude=0.5
        )
        trough = arrival_rate_multiplier(
            np.array([2.0 * 3600.0]), diurnal_amplitude=0.5
        )
        assert peak[0] == pytest.approx(1.5)
        assert trough[0] == pytest.approx(0.5)

    def test_weekday_weights_monday_first(self):
        weights = (1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.25)
        saturday_noon = np.array([5 * 86_400.0 + 14.0 * 3600.0])
        out = arrival_rate_multiplier(
            saturday_noon, day_of_week_weights=weights
        )
        assert out[0] == pytest.approx(0.5)


class TestDiurnalTraces:
    def test_flat_config_unchanged_bytes(self):
        """The legacy path is untouched when no profile is configured."""
        flat = generate_trace(TraceConfig(n_jobs=200, seed=4))
        explicit = generate_trace(
            TraceConfig(n_jobs=200, seed=4, diurnal_amplitude=0.0,
                        day_of_week_weights=None)
        )
        assert flat == explicit

    def test_unit_weights_reproduce_flat_times(self):
        """All-ones weekday weights are the identity time rescaling."""
        flat = generate_trace(TraceConfig(n_jobs=300, seed=4))
        unit = generate_trace(
            TraceConfig(n_jobs=300, seed=4,
                        day_of_week_weights=(1.0,) * 7)
        )
        for a, b in zip(flat, unit):
            assert a.submit_time_s == pytest.approx(b.submit_time_s,
                                                    abs=1e-6)
            assert (a.workload_name, a.n_gpus, a.work_units) == (
                b.workload_name, b.n_gpus, b.work_units
            )

    def test_rescaling_keeps_times_monotone(self):
        trace = generate_trace(
            TraceConfig(
                n_jobs=400, arrival_rate_per_hour=30.0, seed=7,
                diurnal_amplitude=0.8,
                day_of_week_weights=(1, 1, 1, 1, 1, 0.5, 0.4),
            )
        )
        times = [job.submit_time_s for job in trace]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_rescaling_changes_only_times(self):
        """Shape draws (width, workload, work) come from a separate stream."""
        flat = generate_trace(TraceConfig(n_jobs=120, seed=9))
        wavy = generate_trace(
            TraceConfig(n_jobs=120, seed=9, diurnal_amplitude=0.6)
        )
        for a, b in zip(flat, wavy):
            assert (a.workload_name, a.n_gpus, a.work_units) == (
                b.workload_name, b.n_gpus, b.work_units
            )
        assert any(
            a.submit_time_s != b.submit_time_s for a, b in zip(flat, wavy)
        )

    def test_arrivals_concentrate_around_peak_hour(self):
        trace = generate_trace(
            TraceConfig(
                n_jobs=4000, arrival_rate_per_hour=30.0, seed=1,
                diurnal_amplitude=0.9, peak_hour=14.0,
            )
        )
        hours = np.asarray(
            [job.submit_time_s % 86_400.0 for job in trace]
        ) / 3600.0
        near_peak = np.count_nonzero(np.abs(hours - 14.0) < 3.0)
        near_trough = np.count_nonzero(
            np.minimum(hours, 24.0 - hours) < 3.0
        )
        # rate ratio at amplitude 0.9 is 19:1; demand at least 4:1 observed
        assert near_peak > 4 * max(near_trough, 1)

    def test_weekends_quieter_with_low_weights(self):
        trace = generate_trace(
            TraceConfig(
                n_jobs=6000, arrival_rate_per_hour=30.0, seed=2,
                day_of_week_weights=(1, 1, 1, 1, 1, 0.25, 0.25),
            )
        )
        days = np.asarray(
            [int(job.submit_time_s // 86_400.0) for job in trace]
        )
        # drop the partial final day so per-day averages are comparable
        full_days = days[days < days.max()]
        weekday_mask = (full_days % 7) < 5
        n_weekdays = len(set(full_days[weekday_mask]))
        n_weekend = len(set(full_days[~weekday_mask]))
        weekday_rate = np.count_nonzero(weekday_mask) / max(n_weekdays, 1)
        weekend_rate = np.count_nonzero(~weekday_mask) / max(n_weekend, 1)
        assert weekend_rate < 0.45 * weekday_rate

    def test_diurnal_trace_deterministic(self):
        config = TraceConfig(
            n_jobs=100, seed=13, diurnal_amplitude=0.5,
            day_of_week_weights=(1, 1, 1, 1, 1, 0.6, 0.5),
        )
        assert generate_trace(config) == generate_trace(config)
