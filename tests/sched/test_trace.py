"""Tests for the seeded job-trace generator."""

import pytest

from repro.errors import ConfigError
from repro.sched import TraceConfig, generate_trace
from repro.sched.trace import PAPER_WORKLOAD_NAMES


class TestTraceConfig:
    def test_defaults_valid(self):
        config = TraceConfig()
        assert config.n_jobs == 100
        assert config.workload_names == PAPER_WORKLOAD_NAMES

    @pytest.mark.parametrize("bad", [0, -1, 2.5, True])
    def test_bad_n_jobs_rejected(self, bad):
        with pytest.raises(ConfigError):
            TraceConfig(n_jobs=bad)

    def test_mismatched_gang_weights_rejected(self):
        with pytest.raises(ConfigError, match="gang"):
            TraceConfig(gang_sizes=(1, 2), gang_weights=(1.0,))

    def test_mismatched_workload_weights_rejected(self):
        with pytest.raises(ConfigError, match="workload"):
            TraceConfig(workload_names=("sgemm",),
                        workload_weights=(0.5, 0.5))

    def test_bad_work_units_range_rejected(self):
        with pytest.raises(ConfigError):
            TraceConfig(work_units_range=(10, 5))

    def test_negative_arrival_rate_rejected(self):
        with pytest.raises(ConfigError):
            TraceConfig(arrival_rate_per_hour=0.0)


class TestGenerateTrace:
    def test_same_seed_same_trace(self):
        a = generate_trace(TraceConfig(n_jobs=40, seed=5))
        b = generate_trace(TraceConfig(n_jobs=40, seed=5))
        assert a == b

    def test_different_seed_different_trace(self):
        a = generate_trace(TraceConfig(n_jobs=40, seed=5))
        b = generate_trace(TraceConfig(n_jobs=40, seed=6))
        assert a != b

    def test_submit_times_monotonic(self):
        trace = generate_trace(TraceConfig(n_jobs=60, seed=1))
        times = [job.submit_time_s for job in trace]
        assert times == sorted(times)
        assert times[0] > 0

    def test_draws_respect_configured_support(self):
        config = TraceConfig(n_jobs=200, seed=2)
        trace = generate_trace(config)
        assert {job.n_gpus for job in trace} <= set(config.gang_sizes)
        assert {job.workload_name for job in trace} <= set(
            config.workload_names
        )
        lo, hi = config.work_units_range
        assert all(lo <= job.work_units <= hi for job in trace)

    def test_job_ids_sequential(self):
        trace = generate_trace(TraceConfig(n_jobs=10, seed=0))
        assert [job.job_id for job in trace] == list(range(10))

    def test_mean_interarrival_tracks_rate(self):
        config = TraceConfig(
            n_jobs=500, arrival_rate_per_hour=360.0, seed=3
        )
        trace = generate_trace(config)
        mean_gap = trace[-1].submit_time_s / len(trace)
        assert mean_gap == pytest.approx(10.0, rel=0.2)
