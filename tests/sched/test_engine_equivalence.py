"""Indexed vs reference dispatch: byte-identical, and actually faster.

The tentpole guarantee of the indexed engine: for every built-in policy,
every queue discipline, and every trace shape (flat, congested, diurnal,
multi-node gangs, power-capped), ``engine="indexed"`` and
``engine="reference"`` emit the *same bytes* — same event log, same
records, same report.  A near-linearity guard pins the indexed path's
work per job so a regression back to head-rescan behavior fails loudly.
"""

import numpy as np
import pytest

from repro import api
from repro.errors import SimulationError
from repro.obs.tracer import Tracer, activate
from repro.sched import (
    BackfillPolicy,
    EnergyCappedPolicy,
    FifoPolicy,
    HealthAwarePolicy,
    VariabilityAwarePolicy,
    event_log_lines,
    node_power_watts,
    run_schedule,
)
from repro.sched.engine import ENGINE_MODES


@pytest.fixture(scope="module")
def cluster():
    return api.load_preset("longhorn", seed=2022, scale=0.25)


def _scores(n_nodes):
    return 1.0 + 0.1 * np.random.default_rng(11).random(n_nodes)


def _grades(n_nodes):
    from repro.obs.health import GRADES

    draw = np.random.default_rng(12).integers(0, len(GRADES), size=n_nodes)
    return tuple(GRADES[g] for g in draw)


def _energy_policy(cluster, backfill=True):
    node_power = node_power_watts(
        cluster.fleet_for_day(0).power_cap_w(None),
        cluster.topology.node_of_gpu,
        cluster.topology.n_nodes,
    )
    return EnergyCappedPolicy(
        node_power,
        power_budget_w=float(node_power.sum()) * 0.3,
        gpus_per_node=cluster.topology.gpus_per_node,
        backfill=backfill,
    )


def _policy(name, cluster):
    n = cluster.topology.n_nodes
    return {
        "fifo": lambda: FifoPolicy(),
        "backfill": lambda: BackfillPolicy(),
        "va": lambda: VariabilityAwarePolicy(_scores(n)),
        "va-bf": lambda: VariabilityAwarePolicy(_scores(n), backfill=True),
        "health": lambda: HealthAwarePolicy(_grades(n)),
        "health-bf": lambda: HealthAwarePolicy(_grades(n), backfill=True),
        "energy": lambda: _energy_policy(cluster),
        "energy-nobf": lambda: _energy_policy(cluster, backfill=False),
    }[name]()


POLICY_KEYS = (
    "fifo", "backfill", "va", "va-bf", "health", "health-bf",
    "energy", "energy-nobf",
)

#: Congested enough that queues form and backfill/admission both bind.
CONGESTED = api.TraceConfig(n_jobs=80, arrival_rate_per_hour=900.0, seed=5)

#: A week-shaped load: diurnal swell plus quiet weekends.
DIURNAL = api.TraceConfig(
    n_jobs=80,
    arrival_rate_per_hour=600.0,
    seed=5,
    diurnal_amplitude=0.5,
    day_of_week_weights=(1.0, 1.0, 1.0, 1.0, 1.0, 0.5, 0.4),
)


def _run_both(cluster, policy_key, trace):
    jobs = api.generate_trace(trace)
    ref = run_schedule(
        cluster, jobs, _policy(policy_key, cluster), engine="reference"
    )
    idx = run_schedule(
        cluster, jobs, _policy(policy_key, cluster), engine="indexed"
    )
    return ref, idx


class TestByteEquivalence:
    @pytest.mark.parametrize("policy_key", POLICY_KEYS)
    def test_congested_trace_identical(self, cluster, policy_key):
        ref, idx = _run_both(cluster, policy_key, CONGESTED)
        assert event_log_lines(ref.events) == event_log_lines(idx.events)
        assert ref.records == idx.records
        assert ref.makespan_s == idx.makespan_s

    @pytest.mark.parametrize("policy_key", ("backfill", "va-bf", "energy"))
    def test_diurnal_trace_identical(self, cluster, policy_key):
        ref, idx = _run_both(cluster, policy_key, DIURNAL)
        assert event_log_lines(ref.events) == event_log_lines(idx.events)
        assert ref.records == idx.records

    def test_auto_matches_forced_indexed(self, cluster):
        jobs = api.generate_trace(CONGESTED)
        auto = run_schedule(cluster, jobs, BackfillPolicy(), engine="auto")
        idx = run_schedule(cluster, jobs, BackfillPolicy(), engine="indexed")
        assert event_log_lines(auto.events) == event_log_lines(idx.events)

    def test_report_digests_match_across_engines(self, cluster):
        results = [
            api.schedule(
                cluster=cluster, policy="backfill", trace=CONGESTED,
                engine=engine,
            )
            for engine in ENGINE_MODES
        ]
        payloads = {r.report.to_json() for r in results}
        assert len(payloads) == 1


class TestEngineSelection:
    def test_unknown_engine_rejected(self, cluster):
        jobs = api.generate_trace(api.TraceConfig(n_jobs=2))
        with pytest.raises(SimulationError, match="unknown engine"):
            run_schedule(cluster, jobs, FifoPolicy(), engine="turbo")

    def test_opaque_policy_falls_back_to_reference(self, cluster):
        """A subclass that overrides rank_nodes must not be indexed."""

        class Reversed(FifoPolicy):
            name = "reversed"

            def rank_nodes(self, workload, n_gpus, free_counts, rng):
                return np.arange(free_counts.shape[0])[::-1]

        assert Reversed().indexed_ranking(cluster.topology.n_nodes) is None
        jobs = api.generate_trace(CONGESTED)
        auto = run_schedule(cluster, jobs, Reversed(), engine="auto")
        ref = run_schedule(cluster, jobs, Reversed(), engine="reference")
        assert event_log_lines(auto.events) == event_log_lines(ref.events)

    def test_indexed_path_batches_pricing(self, cluster):
        jobs = api.generate_trace(CONGESTED)
        tracer = Tracer()
        with activate(tracer):
            run_schedule(cluster, jobs, BackfillPolicy(), engine="indexed")
        assert tracer.counters["sched.price_batches"] >= 1
        assert tracer.counters["sched.placements"] == CONGESTED.n_jobs
        # batching cannot exceed one batch per dispatch round
        assert (
            tracer.counters["sched.price_batches"]
            <= tracer.counters["sched.placements"]
        )

    def test_dispatch_attempt_counters_agree_for_random_policies(
        self, cluster
    ):
        """Stream parity implies attempt-for-attempt parity."""
        jobs = api.generate_trace(CONGESTED)
        attempts = {}
        for engine in ("reference", "indexed"):
            tracer = Tracer()
            with activate(tracer):
                run_schedule(cluster, jobs, BackfillPolicy(), engine=engine)
            attempts[engine] = tracer.counters["sched.dispatch_attempts"]
        assert attempts["reference"] == attempts["indexed"]


class TestNearLinearity:
    """The indexed static-backfill path does O(1) queue work per event.

    Each dispatch round costs one failed probe plus one probe per
    placement, and rounds run once per event (one submit + one finish
    per job) — so total attempts are bounded by ~3 per job regardless of
    queue depth.  The reference head-rescan loop has no such bound.
    """

    @pytest.mark.parametrize("n_jobs", (100, 300))
    def test_attempts_bounded_per_job(self, cluster, n_jobs):
        trace = api.TraceConfig(
            n_jobs=n_jobs, arrival_rate_per_hour=2000.0, seed=6
        )
        policy = VariabilityAwarePolicy(
            _scores(cluster.topology.n_nodes), backfill=True
        )
        tracer = Tracer()
        with activate(tracer):
            run_schedule(
                cluster, api.generate_trace(trace), policy, engine="indexed"
            )
        attempts = tracer.counters["sched.dispatch_attempts"]
        assert attempts <= 3.5 * n_jobs

    def test_reference_attempts_grow_superlinearly_here(self, cluster):
        """The congestion above genuinely defeats the reference loop.

        This is the counterpart that keeps the guard honest: on the same
        trace the head-rescan loop performs far more attempts, so the
        indexed bound is a real invariant, not a slack tautology.
        """
        trace = api.TraceConfig(
            n_jobs=100, arrival_rate_per_hour=2000.0, seed=6
        )
        policy = VariabilityAwarePolicy(
            _scores(cluster.topology.n_nodes), backfill=True
        )
        tracer = Tracer()
        with activate(tracer):
            run_schedule(
                cluster, api.generate_trace(trace), policy,
                engine="reference",
            )
        assert tracer.counters["sched.dispatch_attempts"] > 3.5 * 100


class TestCachedMakespan:
    def test_makespan_cached_and_stable(self, cluster):
        jobs = api.generate_trace(api.TraceConfig(n_jobs=10))
        outcome = run_schedule(cluster, jobs, FifoPolicy())
        first = outcome.makespan_s
        assert outcome.makespan_s is first  # cached_property: same object
        expected = max(r.finish_time_s for r in outcome.records) - min(
            r.submit_time_s for r in outcome.records
        )
        assert first == expected
