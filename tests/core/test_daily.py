"""Tests for day-of-week analysis (Section VI-A)."""

import numpy as np
import pytest

from repro.core.daily import day_of_week_stats, weekday_consistency
from repro.errors import AnalysisError
from repro.telemetry.dataset import MeasurementDataset


def make_dataset(days=7, per_day=40, seed=0):
    rng = np.random.default_rng(seed)
    names = ("Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
             "Saturday", "Sunday")
    weekday, perf, power = [], [], []
    for d in range(days):
        weekday += [names[d % 7]] * per_day
        perf.append(rng.normal(1000.0, 10.0, per_day))
        p = rng.normal(298.0, 1.5, per_day)
        if names[d % 7] == "Monday":
            p[:4] = 255.0  # a batch of power outliers on Mondays
        power.append(p)
    return MeasurementDataset({
        "weekday": np.asarray(weekday, dtype=object),
        "performance_ms": np.concatenate(perf),
        "power_w": np.concatenate(power),
    })


class TestDayOfWeek:
    def test_stats_per_weekday(self):
        stats = day_of_week_stats(make_dataset())
        assert set(stats) == {
            "Monday", "Tuesday", "Wednesday", "Thursday", "Friday",
            "Saturday", "Sunday",
        }

    def test_monday_power_outliers_detected(self):
        stats = day_of_week_stats(make_dataset())
        assert stats["Monday"].n_power_outliers >= 4
        assert stats["Tuesday"].n_power_outliers <= 2

    def test_partial_week(self):
        stats = day_of_week_stats(make_dataset(days=3))
        assert set(stats) == {"Monday", "Tuesday", "Wednesday"}

    def test_missing_weekday_column_rejected(self):
        ds = MeasurementDataset({
            "performance_ms": np.arange(10.0) + 1,
            "power_w": np.arange(10.0) + 1,
        })
        with pytest.raises(AnalysisError, match="weekday"):
            day_of_week_stats(ds)

    def test_campaign_dataset(self, sgemm_dataset):
        stats = day_of_week_stats(sgemm_dataset)
        assert len(stats) == 3  # 3-day campaign


class TestConsistency:
    def test_persistent_phenomenon_shows_low_drift(self):
        """Takeaway 9: daily medians barely move."""
        summary = weekday_consistency(day_of_week_stats(make_dataset()))
        assert summary["median_drift"] < 0.02
        assert summary["variation_spread"] < 0.05

    def test_outlier_imbalance_detected(self):
        summary = weekday_consistency(day_of_week_stats(make_dataset()))
        assert summary["outlier_imbalance"] > 1.0

    def test_empty_rejected(self):
        with pytest.raises(AnalysisError):
            weekday_consistency({})
