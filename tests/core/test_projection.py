"""Tests for the scaled-normal cluster-size projection (Section IV-D)."""

import numpy as np
import pytest

from repro.core.projection import (
    expected_whisker_span,
    fit_normal,
    project_variation,
)
from repro.errors import AnalysisError


@pytest.fixture()
def sample(rng):
    return rng.normal(2400.0, 30.0, 400)


class TestFit:
    def test_recovers_parameters(self, sample):
        fit = fit_normal(sample)
        assert fit.mean == pytest.approx(2400.0, rel=0.01)
        assert fit.std == pytest.approx(30.0, rel=0.15)

    def test_robust_to_outliers(self, sample):
        spiked = np.append(sample, [10_000.0, 12_000.0])
        fit = fit_normal(spiked)
        assert fit.std == pytest.approx(30.0, rel=0.2)

    def test_too_small_sample_rejected(self):
        with pytest.raises(AnalysisError):
            fit_normal(np.arange(5.0))

    def test_degenerate_sample_rejected(self):
        with pytest.raises(AnalysisError):
            fit_normal(np.full(20, 5.0))


class TestExpectedSpan:
    def test_grows_with_n(self):
        spans = [expected_whisker_span(n) for n in (10, 100, 1000, 10_000)]
        assert spans == sorted(spans)

    def test_saturates_at_fences(self):
        # The Tukey fences sit at +-(z_q3 * 4) = +-2.698 sigma.
        assert expected_whisker_span(10**7) <= 2 * 2.698 + 1e-9

    def test_needs_two(self):
        with pytest.raises(AnalysisError):
            expected_whisker_span(1)


class TestProjection:
    def test_projection_grows_with_cluster_size(self, sample):
        small = project_variation(sample, target_n=400)
        large = project_variation(sample, target_n=27_648)
        assert large > small

    def test_paper_style_magnitude(self, rng):
        """A Longhorn-like 9%-variation sample projects to ~9-11% at Summit size."""
        values = rng.normal(1.0, 0.0165, 408)  # ~9% whisker variation
        projected = project_variation(values, target_n=27_648)
        assert 0.07 < projected < 0.12

    def test_montecarlo_agrees_with_analytic(self, sample, rng):
        analytic = project_variation(sample, 2000, method="analytic")
        mc = project_variation(sample, 2000, method="montecarlo", rng=rng,
                               mc_trials=150)
        assert mc == pytest.approx(analytic, rel=0.15)

    def test_unknown_method(self, sample):
        with pytest.raises(AnalysisError):
            project_variation(sample, 100, method="magic")

    def test_target_too_small(self, sample):
        with pytest.raises(AnalysisError):
            project_variation(sample, 1)
