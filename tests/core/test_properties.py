"""Seeded property-style tests for the order-insensitive statistics.

The parallel campaign executor merges shard datasets by concatenation, so
every analysis downstream of :mod:`repro.core` must be insensitive to row
order (and, more generally, behave like the textbook statistic it claims
to be).  These tests pin exactly that, on randomized long-form datasets:

* permutation invariance (box statistics, correlations, per-GPU medians,
  outlier reports);
* scale equivariance / invariance where the definition promises it;
* agreement with the NumPy / SciPy reference implementations.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.stats

from repro.core.boxstats import BoxStats
from repro.core.correlation import correlation_matrix, pearson, spearman
from repro.core.outliers import flag_outlier_gpus, worst_performers
from repro.telemetry.dataset import MeasurementDataset

SEEDS = (0, 1, 2, 3, 4)


def _rng(seed):
    return np.random.default_rng(9000 + seed)


def _random_values(rng, n=400):
    """A lognormal bulk plus a few gross outliers — campaign-like data."""
    values = rng.lognormal(mean=3.0, sigma=0.05, size=n)
    k = int(rng.integers(0, 6))
    if k:
        idx = rng.choice(n, size=k, replace=False)
        values[idx] *= rng.uniform(1.5, 4.0, size=k)
    return values


def _random_dataset(rng, n_gpus=36, runs=5):
    """A random long-form measurement table (one row per GPU per run)."""
    gpu = np.tile(np.arange(n_gpus), runs)
    base = rng.lognormal(mean=3.0, sigma=0.04, size=n_gpus)
    perf = base[gpu] * rng.normal(1.0, 0.01, size=gpu.shape[0])
    power = 300.0 - 40.0 * (perf - perf.mean()) + rng.normal(
        0.0, 3.0, size=gpu.shape[0]
    )
    return MeasurementDataset({
        "gpu_index": gpu.astype(np.int64),
        "gpu_label": np.asarray([f"n{g // 4:03d}-gpu{g % 4}" for g in gpu],
                                dtype=object),
        "node_label": np.asarray([f"n{g // 4:03d}" for g in gpu],
                                 dtype=object),
        "run": np.repeat(np.arange(runs), n_gpus).astype(np.int64),
        "performance_ms": perf,
        "power_w": power,
    })


def _permuted(dataset, rng):
    order = rng.permutation(dataset.n_rows)
    return MeasurementDataset({
        name: dataset[name][order] for name in dataset.column_names
    })


# ---------------------------------------------------------------------------
# BoxStats
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
class TestBoxStatsProperties:
    def test_permutation_invariance_is_exact(self, seed):
        rng = _rng(seed)
        values = _random_values(rng)
        assert BoxStats.from_values(values) == BoxStats.from_values(
            rng.permutation(values)
        )

    def test_matches_numpy_quartiles(self, seed):
        values = _random_values(_rng(seed))
        stats = BoxStats.from_values(values)
        q1, med, q3 = np.percentile(values, [25, 50, 75])
        assert stats.q1 == q1
        assert stats.median == med == np.median(values)
        assert stats.q3 == q3

    def test_scale_equivariance(self, seed):
        values = _random_values(_rng(seed))
        c = 7.25
        a = BoxStats.from_values(values)
        b = BoxStats.from_values(c * values)
        for field in ("q1", "median", "q3", "iqr", "range",
                      "whisker_lo", "whisker_hi"):
            assert getattr(b, field) == pytest.approx(
                c * getattr(a, field), rel=1e-12
            )
        # variation = range / median is scale-free, and the fences flag
        # the same observations.
        assert b.variation == pytest.approx(a.variation, rel=1e-12)
        assert b.n_outliers == a.n_outliers

    def test_shift_moves_box_but_not_range(self, seed):
        values = _random_values(_rng(seed))
        a = BoxStats.from_values(values)
        b = BoxStats.from_values(values + 1000.0)
        assert b.median == pytest.approx(a.median + 1000.0, rel=1e-12)
        assert b.iqr == pytest.approx(a.iqr, abs=1e-9)
        assert b.range == pytest.approx(a.range, abs=1e-9)


# ---------------------------------------------------------------------------
# correlations
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
class TestCorrelationProperties:
    def _xy(self, seed):
        rng = _rng(seed)
        x = rng.normal(size=500)
        y = -0.8 * x + rng.normal(scale=0.5, size=500)
        return rng, x, y

    def test_pearson_matches_references(self, seed):
        _, x, y = self._xy(seed)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1],
                                              rel=1e-10)
        assert pearson(x, y) == pytest.approx(
            scipy.stats.pearsonr(x, y).statistic, rel=1e-10
        )

    def test_spearman_matches_scipy_with_ties(self, seed):
        rng, x, y = self._xy(seed)
        # Integer-quantized data forces ties — the average-rank path.
        xq = np.round(x * 4.0)
        yq = np.round(y * 4.0)
        assert spearman(xq, yq) == pytest.approx(
            scipy.stats.spearmanr(xq, yq).statistic, rel=1e-10
        )

    def test_joint_permutation_invariance(self, seed):
        rng, x, y = self._xy(seed)
        order = rng.permutation(x.shape[0])
        assert pearson(x[order], y[order]) == pytest.approx(
            pearson(x, y), rel=1e-12
        )
        assert spearman(x[order], y[order]) == pytest.approx(
            spearman(x, y), rel=1e-12
        )

    def test_affine_invariance_and_sign_flip(self, seed):
        _, x, y = self._xy(seed)
        rho = pearson(x, y)
        assert pearson(3.0 * x + 11.0, 0.5 * y - 4.0) == pytest.approx(
            rho, rel=1e-10
        )
        assert pearson(-2.0 * x, y) == pytest.approx(-rho, rel=1e-10)

    def test_correlation_matrix_row_order_insensitive(self, seed):
        rng = _rng(seed)
        dataset = _random_dataset(rng)
        shuffled = _permuted(dataset, rng)
        a = correlation_matrix(dataset, ("performance_ms", "power_w"))
        b = correlation_matrix(shuffled, ("performance_ms", "power_w"))
        pair = ("performance_ms", "power_w")
        assert a[pair].rho == pytest.approx(b[pair].rho, rel=1e-12)
        assert a[pair].rho_spearman == pytest.approx(
            b[pair].rho_spearman, rel=1e-12
        )
        assert a[pair].n == b[pair].n


# ---------------------------------------------------------------------------
# outlier flagging and per-GPU reduction
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", SEEDS)
class TestOutlierProperties:
    def test_per_gpu_median_row_order_insensitive(self, seed):
        rng = _rng(seed)
        dataset = _random_dataset(rng)
        shuffled = _permuted(dataset, rng)
        a = dataset.per_gpu_median("performance_ms")
        b = shuffled.per_gpu_median("performance_ms")
        assert a.column_names == b.column_names
        for name in a.column_names:
            assert np.array_equal(a[name], b[name]), name

    def test_flag_outlier_gpus_row_order_insensitive(self, seed):
        rng = _rng(seed)
        dataset = _random_dataset(rng)
        report_a = flag_outlier_gpus(dataset, "performance_ms")
        report_b = flag_outlier_gpus(_permuted(dataset, rng),
                                     "performance_ms")
        # Frozen dataclasses compare field-by-field: identical fences,
        # identical flagged GPUs, identical sides.
        assert report_a == report_b

    def test_worst_performers_row_order_insensitive(self, seed):
        rng = _rng(seed)
        dataset = _random_dataset(rng)
        assert worst_performers(dataset, "performance_ms", k=5) == (
            worst_performers(_permuted(dataset, rng), "performance_ms", k=5)
        )

    def test_group_reduce_row_order_insensitive(self, seed):
        rng = _rng(seed)
        dataset = _random_dataset(rng)
        assert dataset.group_reduce("node_label", "power_w") == (
            _permuted(dataset, rng).group_reduce("node_label", "power_w")
        )
