"""Tests for text reporting and the one-stop variability suite."""

import numpy as np
import pytest

from repro.core.boxstats import BoxStats
from repro.core.report import ascii_box_row, format_boxstats_table
from repro.core.suite import VariabilitySuite
from repro.sim.campaign import CampaignConfig
from repro.telemetry.sample import METRIC_PERFORMANCE
from repro.workloads import sgemm


@pytest.fixture()
def stats(rng):
    return BoxStats.from_values(rng.normal(100.0, 5.0, 200))


class TestAsciiBoxRow:
    def test_contains_box_and_median(self, stats):
        row = ascii_box_row(stats, 80.0, 120.0, width=50)
        assert len(row) == 50
        assert "#" in row
        assert "=" in row
        assert "|" in row

    def test_median_position_scales(self, stats):
        row = ascii_box_row(stats, 0.0, 200.0, width=100)
        pos = row.index("#")
        assert 40 < pos < 60  # median ~100 of [0, 200]

    def test_invalid_axis(self, stats):
        with pytest.raises(ValueError):
            ascii_box_row(stats, 10.0, 10.0)


class TestTable:
    def test_formats_rows(self, stats):
        table = format_boxstats_table({"metric-a": stats, "metric-b": stats})
        lines = table.splitlines()
        assert len(lines) == 4  # header + rule + 2 rows
        assert "metric-a" in table
        assert "variation" in lines[0]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            format_boxstats_table({})


class TestVariabilitySuite:
    @pytest.fixture(scope="class")
    def report(self):
        from repro.cluster import longhorn

        suite = VariabilitySuite(
            longhorn(seed=13, scale=0.25),
            CampaignConfig(days=3, runs_per_day=1),
        )
        return suite.characterize(sgemm())

    def test_headline_variation_in_band(self, report):
        assert 0.04 < report.performance_variation < 0.2

    def test_metrics_present(self, report):
        assert set(report.metrics) == {
            "performance_ms", "frequency_mhz", "power_w", "temperature_c"
        }

    def test_correlations_present(self, report):
        assert report.correlations["perf_vs_frequency"].rho < -0.8

    def test_sampling_margin_positive(self, report):
        assert report.sampling_margin > 1.0
        assert report.recommended_sample_size >= 1

    def test_slow_assignment_ordering(self, report):
        assert report.slow_assignment_node >= report.slow_assignment_single

    def test_maintenance_candidates_ranked(self, report):
        values = [v for _, v in report.maintenance_candidates]
        assert values == sorted(values, reverse=True)

    def test_render_is_readable(self, report):
        text = report.render()
        assert "Variability report: Longhorn" in text
        assert "perf_vs_frequency" in text
        assert "Maintenance candidates" in text

    def test_gpu_count(self, report):
        assert report.n_gpus_observed > 0
        assert report.n_runs == 3

    def test_analyze_rejects_empty(self):
        from repro.cluster import longhorn
        from repro.telemetry.dataset import MeasurementDataset
        from repro.errors import AnalysisError, DatasetError

        suite = VariabilitySuite(longhorn(seed=0, scale=0.25))
        with pytest.raises((AnalysisError, DatasetError)):
            suite.analyze(MeasurementDataset({
                METRIC_PERFORMANCE: np.array([])
            }))


class TestAsciiHistogram:
    def test_bar_lengths_track_counts(self, rng):
        from repro.core.report import ascii_histogram

        art = ascii_histogram(rng.normal(0, 1, 500), bins=8, width=30)
        lines = art.splitlines()
        assert len(lines) == 8
        # The densest bin gets the full-width bar.
        assert any("#" * 30 in line for line in lines)

    def test_counts_sum_to_n(self, rng):
        from repro.core.report import ascii_histogram

        art = ascii_histogram(rng.normal(0, 1, 123), bins=5)
        total = sum(int(line.rsplit("|", 1)[1]) for line in art.splitlines())
        assert total == 123

    def test_empty_rejected(self):
        import numpy as np
        import pytest
        from repro.core.report import ascii_histogram

        with pytest.raises(ValueError):
            ascii_histogram(np.array([]))
