"""Tests for per-GPU repeatability analysis (Fig. 8)."""

import numpy as np
import pytest

from repro.core.repeatability import per_gpu_repeatability, repeatability_summary
from repro.errors import AnalysisError
from repro.telemetry.dataset import MeasurementDataset


def make_dataset(n_gpus=20, n_runs=5, noise=0.005, seed=0):
    rng = np.random.default_rng(seed)
    gpu = np.repeat(np.arange(n_gpus), n_runs)
    base = np.repeat(1000.0 + rng.normal(0, 20, n_gpus), n_runs)
    perf = base * (1.0 + rng.normal(0, noise, gpu.shape[0]))
    return MeasurementDataset({
        "gpu_index": gpu,
        "gpu_label": np.asarray([f"g{i:02d}" for i in gpu], dtype=object),
        "performance_ms": perf,
    })


class TestPerGpuRepeatability:
    def test_one_row_per_gpu(self):
        rep = per_gpu_repeatability(make_dataset())
        assert rep.n_rows == 20
        assert "repeat_variation" in rep
        assert np.all(rep["n_runs"] == 5)

    def test_noise_level_recovered(self):
        """Range of k runs ~ a few sigma: the metric tracks the noise."""
        quiet = per_gpu_repeatability(make_dataset(noise=0.001, seed=1))
        loud = per_gpu_repeatability(make_dataset(noise=0.02, seed=1))
        assert (np.median(loud["repeat_variation"])
                > 5 * np.median(quiet["repeat_variation"]))

    def test_single_run_gpus_dropped(self):
        ds = make_dataset(n_runs=1)
        with pytest.raises(AnalysisError, match="at least 2"):
            per_gpu_repeatability(ds)

    def test_min_runs_validation(self):
        with pytest.raises(AnalysisError):
            per_gpu_repeatability(make_dataset(), min_runs=1)

    def test_campaign_repeatability_in_paper_band(self, sgemm_dataset):
        """Longhorn's per-GPU repeat variation is sub-percent (Fig. 8)."""
        rep = per_gpu_repeatability(sgemm_dataset)
        assert np.median(rep["repeat_variation"]) < 0.02


class TestSummary:
    def test_summary_fields(self):
        summary = repeatability_summary(make_dataset())
        assert summary.median_variation > 0
        assert summary.worst_variation >= summary.median_variation
        assert summary.worst_gpu_label.startswith("g")

    def test_noisy_gpu_identified(self):
        ds = make_dataset(noise=0.001, seed=2)
        perf = ds["performance_ms"].copy()
        noisy = ds["gpu_index"] == 7
        perf[noisy] *= 1.0 + 0.05 * np.arange(noisy.sum())
        ds2 = MeasurementDataset({
            name: (perf if name == "performance_ms" else ds[name])
            for name in ds.column_names
        })
        summary = repeatability_summary(ds2)
        assert summary.worst_gpu_label == "g07"
