"""Tests for application classification (Section VII)."""

import pytest

from repro.core.classify import (
    ApplicationClass,
    CounterProfile,
    classify_counters,
    classify_workload,
    expected_performance_sensitivity,
)
from repro.errors import ConfigError
from repro.workloads import (
    bert_pretraining,
    lammps_reaxc,
    pagerank,
    resnet50,
    sgemm,
)


class TestPaperWorkloadClasses:
    """The classification must reproduce the paper's own categorization."""

    def test_sgemm_compute_bound(self):
        assert classify_workload(sgemm()) is ApplicationClass.COMPUTE_BOUND

    def test_resnet_compute_bound(self):
        assert classify_workload(resnet50()) is ApplicationClass.COMPUTE_BOUND

    def test_bert_balanced(self):
        assert classify_workload(bert_pretraining()) is ApplicationClass.BALANCED

    def test_lammps_bandwidth_bound(self):
        assert (classify_workload(lammps_reaxc())
                is ApplicationClass.MEMORY_BANDWIDTH_BOUND)

    def test_pagerank_latency_bound(self):
        assert (classify_workload(pagerank())
                is ApplicationClass.MEMORY_LATENCY_BOUND)


class TestCounterRules:
    def test_stalls_take_priority(self):
        profile = CounterProfile(
            fu_utilization=8.0, dram_utilization=0.9, mem_stall_frac=0.7
        )
        assert classify_counters(profile) is ApplicationClass.MEMORY_LATENCY_BOUND

    def test_dram_before_compute(self):
        profile = CounterProfile(
            fu_utilization=8.0, dram_utilization=0.8, mem_stall_frac=0.1
        )
        assert classify_counters(profile) is ApplicationClass.MEMORY_BANDWIDTH_BOUND

    def test_default_balanced(self):
        profile = CounterProfile(
            fu_utilization=3.0, dram_utilization=0.3, mem_stall_frac=0.1
        )
        assert classify_counters(profile) is ApplicationClass.BALANCED

    def test_profile_validation(self):
        with pytest.raises(ConfigError):
            CounterProfile(fu_utilization=11.0, dram_utilization=0.5,
                           mem_stall_frac=0.1)
        with pytest.raises(ConfigError):
            CounterProfile(fu_utilization=5.0, dram_utilization=1.5,
                           mem_stall_frac=0.1)


class TestSensitivity:
    def test_ordering_matches_paper(self):
        """Compute converts ~all variability; memory-bound almost none."""
        compute = expected_performance_sensitivity(ApplicationClass.COMPUTE_BOUND)
        balanced = expected_performance_sensitivity(ApplicationClass.BALANCED)
        memory = expected_performance_sensitivity(
            ApplicationClass.MEMORY_BANDWIDTH_BOUND
        )
        assert compute > balanced > memory

    def test_all_classes_covered(self):
        for app_class in ApplicationClass:
            assert expected_performance_sensitivity(app_class) > 0
