"""Tests for the sample-size methodology (Section III)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.sampling import (
    achieved_accuracy,
    coverage_margin,
    required_sample_size,
    z_score,
)
from repro.errors import AnalysisError


class TestZScore:
    def test_classic_values(self):
        assert z_score(0.95) == pytest.approx(1.959964, abs=1e-4)
        assert z_score(0.99) == pytest.approx(2.575829, abs=1e-4)
        assert z_score(0.90) == pytest.approx(1.644854, abs=1e-4)

    def test_invalid_confidence(self):
        with pytest.raises(AnalysisError):
            z_score(1.0)
        with pytest.raises(AnalysisError):
            z_score(0.0)

    @settings(max_examples=30, deadline=None)
    @given(confidence=st.floats(min_value=0.5, max_value=0.999))
    def test_property_consistent_with_erf(self, confidence):
        z = z_score(confidence)
        assert math.erf(z / math.sqrt(2.0)) == pytest.approx(confidence, abs=1e-9)


class TestRequiredSampleSize:
    def test_formula_without_population(self):
        # n = (z * cv / lambda)^2
        n = required_sample_size(cv=0.02, accuracy=0.005, confidence=0.95)
        assert n == math.ceil((1.959964 * 0.02 / 0.005) ** 2)

    def test_zero_cv_needs_one(self):
        assert required_sample_size(cv=0.0) == 1

    def test_finite_population_correction_shrinks(self):
        infinite = required_sample_size(cv=0.05)
        finite = required_sample_size(cv=0.05, population=200)
        assert finite < infinite
        assert finite <= 200

    def test_tighter_accuracy_needs_more(self):
        loose = required_sample_size(cv=0.03, accuracy=0.01)
        tight = required_sample_size(cv=0.03, accuracy=0.002)
        assert tight > loose

    @settings(max_examples=30, deadline=None)
    @given(
        cv=st.floats(min_value=0.001, max_value=0.5),
        population=st.integers(min_value=10, max_value=30_000),
    )
    def test_property_bounded_by_population(self, cv, population):
        n = required_sample_size(cv, population=population)
        assert 1 <= n <= population


class TestAchievedAccuracy:
    def test_inverse_of_requirement(self):
        cv = 0.04
        n = required_sample_size(cv, accuracy=0.005)
        assert achieved_accuracy(cv, n) <= 0.005 + 1e-6

    def test_full_census_is_exact(self):
        # Sampling the whole population leaves no sampling error.
        assert achieved_accuracy(0.05, 100, population=100) == 0.0

    def test_oversampling_rejected(self):
        with pytest.raises(AnalysisError):
            achieved_accuracy(0.05, 101, population=100)


class TestCoverageMargin:
    def test_paper_style_margin(self):
        """Measuring ~all GPUs puts the study far above the recommendation."""
        margin = coverage_margin(
            cv=0.02, n_sampled=400, population=416
        )
        assert margin > 2.0

    def test_margin_of_exact_sample_is_one(self):
        cv = 0.05
        needed = required_sample_size(cv)
        assert coverage_margin(cv, needed) == pytest.approx(1.0)
