"""Tests for outlier flagging and persistence."""

import numpy as np
import pytest

from repro.core.outliers import (
    OutlierAccumulator,
    flag_outlier_gpus,
    flag_outlier_values,
    node_outlier_counts,
    persistent_outliers,
    worst_performers,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import MeasurementDataset


def make_dataset(slow_gpus=(5,), n_gpus=30, n_runs=2, seed=0):
    rng = np.random.default_rng(seed)
    gpu = np.repeat(np.arange(n_gpus), n_runs)
    base = np.repeat(1000.0 + rng.normal(0, 5, n_gpus), n_runs)
    perf = base + rng.normal(0, 1, gpu.shape[0])
    for slow in slow_gpus:
        perf[gpu == slow] *= 1.5
    return MeasurementDataset({
        "gpu_index": gpu,
        "gpu_label": np.asarray([f"g{i:02d}" for i in gpu], dtype=object),
        "node_label": np.asarray([f"n{i // 4:02d}" for i in gpu], dtype=object),
        "performance_ms": perf,
        "power_w": np.full(gpu.shape[0], 299.0) + rng.normal(0, 1, gpu.shape[0]),
    })


class TestFlagging:
    def test_slow_gpu_flagged(self):
        report = flag_outlier_gpus(make_dataset(slow_gpus=(5,)))
        assert "g05" in report.gpu_labels
        assert "n01" in report.node_labels
        assert "g05" in report.high_side

    def test_clean_fleet_unflagged(self):
        report = flag_outlier_gpus(make_dataset(slow_gpus=()))
        assert report.n_outlier_gpus <= 1  # statistical stragglers only

    def test_low_side_flagging(self):
        ds = make_dataset(slow_gpus=())
        perf = ds["performance_ms"].copy()
        perf[ds["gpu_index"] == 3] *= 0.5
        fast = MeasurementDataset({
            name: (perf if name == "performance_ms" else ds[name])
            for name in ds.column_names
        })
        report = flag_outlier_gpus(fast)
        assert "g03" in report.low_side

    def test_requires_gpu_label(self):
        ds = MeasurementDataset({
            "gpu_index": np.arange(10),
            "performance_ms": np.random.default_rng(0).normal(100, 1, 10),
        })
        with pytest.raises(AnalysisError, match="gpu_label"):
            flag_outlier_gpus(ds)


class TestPersistence:
    def test_takeaway6_same_outliers_across_apps(self):
        """GPUs slow in both 'applications' are reported as persistent."""
        a = flag_outlier_gpus(make_dataset(slow_gpus=(5, 9), seed=1))
        b = flag_outlier_gpus(make_dataset(slow_gpus=(5, 12), seed=2))
        persistent = persistent_outliers([a, b])
        assert "g05" in persistent
        assert persistent["g05"] == 2
        assert "g09" not in persistent

    def test_min_occurrences_one_includes_all(self):
        a = flag_outlier_gpus(make_dataset(slow_gpus=(5,)))
        out = persistent_outliers([a], min_occurrences=1)
        assert "g05" in out

    def test_invalid_min_occurrences(self):
        with pytest.raises(AnalysisError):
            persistent_outliers([], min_occurrences=0)


class TestStreamingEntryPoint:
    """flag_outlier_values: the incremental form the health tracker uses."""

    def test_matches_dataset_flagging(self):
        ds = make_dataset(slow_gpus=(5,))
        med = ds.per_gpu_median("performance_ms")
        streaming = flag_outlier_values(
            med.column("performance_ms"),
            med.column("gpu_label"),
            med.column("node_label"),
        )
        batch = flag_outlier_gpus(ds)
        assert streaming.gpu_labels == batch.gpu_labels
        assert streaming.node_labels == batch.node_labels
        assert streaming.stats.fence_hi == batch.stats.fence_hi

    def test_node_labels_derived_from_gpu_labels(self):
        values = np.array([100.0] * 9 + [200.0])
        labels = [f"node{i // 2:02d}-{i % 2}" for i in range(10)]
        report = flag_outlier_values(values, labels)
        assert report.gpu_labels == ("node04-1",)
        assert report.node_labels == ("node04",)

    def test_shape_mismatch_raises(self):
        with pytest.raises(AnalysisError):
            flag_outlier_values(np.arange(3.0), ["a", "b"])


class TestAccumulator:
    def test_streaming_matches_batch_persistence(self):
        a = flag_outlier_gpus(make_dataset(slow_gpus=(5, 9), seed=1))
        b = flag_outlier_gpus(make_dataset(slow_gpus=(5, 12), seed=2))
        acc = OutlierAccumulator()
        acc.add(a)
        acc.add(b)
        assert acc.persistent() == persistent_outliers([a, b])
        assert acc.n_reports == 2

    def test_accepts_plain_label_iterables(self):
        acc = OutlierAccumulator()
        acc.add(["g05", "g09"])
        acc.add(["g05"])
        assert acc.counts() == {"g05": 2, "g09": 1}
        assert acc.persistent(min_occurrences=2) == {"g05": 2}

    def test_invalid_min_occurrences(self):
        with pytest.raises(AnalysisError):
            OutlierAccumulator().persistent(min_occurrences=0)


class TestNodeCounts:
    def test_counts_by_node(self):
        ds = make_dataset(slow_gpus=(4, 5))  # both GPUs live in node n01
        counts = node_outlier_counts(ds)
        assert counts["n01"]["performance_ms"] == 2

    def test_clean_nodes_absent(self):
        counts = node_outlier_counts(make_dataset(slow_gpus=(5,)))
        assert "n05" not in counts


class TestWorstPerformers:
    def test_ranked_by_median(self):
        worst = worst_performers(make_dataset(slow_gpus=(7,)), k=3)
        assert worst[0][0] == "g07"
        values = [v for _, v in worst]
        assert values == sorted(values, reverse=True)

    def test_lower_is_worse_mode(self):
        ds = make_dataset(slow_gpus=())
        worst = worst_performers(ds, metric="power_w", k=2,
                                 higher_is_worse=False)
        assert len(worst) == 2
        assert worst[0][1] <= worst[1][1]

    def test_invalid_k(self):
        with pytest.raises(AnalysisError):
            worst_performers(make_dataset(), k=0)
