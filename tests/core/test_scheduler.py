"""Tests for variability-aware scheduling (Section VII)."""

import numpy as np
import pytest

from repro.core.scheduler import (
    node_variability_scores,
    plan_placements,
    slow_assignment_probability,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import MeasurementDataset
from repro.workloads import lammps_reaxc, pagerank, sgemm


def make_dataset(slow_gpus=(5, 13), n_gpus=32, seed=0):
    rng = np.random.default_rng(seed)
    gpu = np.arange(n_gpus)
    perf = 1000.0 + rng.normal(0, 3, n_gpus)
    for slow in slow_gpus:
        perf[slow] *= 1.10
    return MeasurementDataset({
        "gpu_index": gpu,
        "gpu_label": np.asarray([f"g{i:02d}" for i in gpu], dtype=object),
        "node_label": np.asarray([f"n{i // 4:02d}" for i in gpu], dtype=object),
        "performance_ms": perf,
    })


class TestSlowAssignment:
    def test_single_gpu_fraction(self):
        prob = slow_assignment_probability(make_dataset(), n_gpus=1)
        assert prob == pytest.approx(2 / 32)

    def test_node_wide_job_amplifies(self):
        ds = make_dataset()
        single = slow_assignment_probability(ds, n_gpus=1)
        node = slow_assignment_probability(ds, n_gpus=4)
        assert node > single
        assert node == pytest.approx(2 / 8)  # 2 of 8 nodes contain a slow GPU

    def test_partial_node_hypergeometric(self):
        ds = make_dataset()
        p2 = slow_assignment_probability(ds, n_gpus=2)
        p4 = slow_assignment_probability(ds, n_gpus=4)
        assert 0 < p2 < p4

    def test_clean_fleet_zero(self):
        prob = slow_assignment_probability(
            make_dataset(slow_gpus=()), n_gpus=4, slow_threshold=0.2
        )
        assert prob == 0.0

    def test_invalid_n_gpus(self):
        with pytest.raises(AnalysisError):
            slow_assignment_probability(make_dataset(), n_gpus=0)

    def test_campaign_probabilities_in_paper_range(self, sgemm_dataset):
        """Longhorn-like: multi-GPU jobs are much likelier to hit a slow GPU."""
        single = slow_assignment_probability(sgemm_dataset, n_gpus=1)
        node = slow_assignment_probability(sgemm_dataset, n_gpus=4)
        assert 0.02 < single < 0.5
        assert node > single


class TestNodeScores:
    def test_identical_nodes_score_near_one(self):
        ds = make_dataset(slow_gpus=())
        scores = node_variability_scores(ds)
        assert all(0.95 < s < 1.05 for s in scores.values())

    def test_straggler_node_scores_high(self):
        scores = node_variability_scores(make_dataset(slow_gpus=(5,)))
        assert scores["n01"] > 1.05

    def test_requires_node_label(self):
        ds = MeasurementDataset({
            "gpu_index": np.arange(8),
            "gpu_label": np.asarray([f"g{i}" for i in range(8)], dtype=object),
            "performance_ms": np.full(8, 100.0),
        })
        with pytest.raises(AnalysisError):
            node_variability_scores(ds)


class TestPlacement:
    def test_compute_gets_best_node(self):
        ds = make_dataset(slow_gpus=(5,))
        plan = plan_placements(ds, [sgemm(), lammps_reaxc()])
        scores = node_variability_scores(ds)
        # SGEMM (compute-bound) lands on a lower-variability node than LAMMPS.
        assert scores[plan.assignments["SGEMM"]] <= scores[
            plan.assignments["LAMMPS"]
        ]

    def test_memory_bound_tolerates_bad_nodes(self):
        ds = make_dataset(slow_gpus=(5,))
        plan = plan_placements(ds, [sgemm(), pagerank()])
        # Even on a worse node, PageRank's expected slowdown stays tiny.
        assert plan.expected_slowdowns["PageRank"] < 1.02

    def test_plan_beats_random_for_sensitive_work(self):
        ds = make_dataset(slow_gpus=(5, 9, 13))
        plan = plan_placements(ds, [sgemm()])
        assert (plan.expected_slowdowns["SGEMM"]
                <= plan.baseline_slowdowns["SGEMM"])

    def test_too_many_workloads_rejected(self):
        ds = make_dataset(slow_gpus=(), n_gpus=4)  # single node
        with pytest.raises(AnalysisError):
            plan_placements(ds, [sgemm(), pagerank()])

    def test_empty_workloads_rejected(self):
        with pytest.raises(AnalysisError):
            plan_placements(make_dataset(), [])
