"""Tests for correlation analysis."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.correlation import (
    correlation_matrix,
    paper_correlation_pairs,
    pearson,
    spearman,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import MeasurementDataset


class TestPearson:
    def test_matches_numpy(self, rng):
        x = rng.standard_normal(200)
        y = 0.5 * x + rng.standard_normal(200)
        assert pearson(x, y) == pytest.approx(np.corrcoef(x, y)[0, 1])

    def test_perfect_correlation(self):
        x = np.arange(10.0)
        assert pearson(x, 3 * x + 1) == pytest.approx(1.0)
        assert pearson(x, -x) == pytest.approx(-1.0)

    def test_constant_input_returns_zero(self):
        assert pearson(np.ones(10), np.arange(10.0)) == 0.0

    def test_too_few_points(self):
        with pytest.raises(AnalysisError):
            pearson(np.array([1.0, 2.0]), np.array([1.0, 2.0]))

    def test_length_mismatch(self):
        with pytest.raises(AnalysisError):
            pearson(np.arange(5.0), np.arange(6.0))

    def test_nan_pairs_dropped(self):
        x = np.array([1.0, 2.0, 3.0, np.nan, 5.0])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        assert pearson(x, y) == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(
            st.floats(min_value=-100, max_value=100, allow_nan=False),
            st.floats(min_value=-100, max_value=100, allow_nan=False),
        ),
        min_size=3, max_size=100,
    ))
    def test_property_bounded(self, pairs):
        x = np.array([p[0] for p in pairs])
        y = np.array([p[1] for p in pairs])
        assert -1.0 - 1e-9 <= pearson(x, y) <= 1.0 + 1e-9


class TestSpearman:
    def test_monotone_nonlinear_is_perfect(self):
        x = np.linspace(1, 10, 50)
        y = np.exp(x)  # monotone but very nonlinear
        assert spearman(x, y) == pytest.approx(1.0)
        assert pearson(x, y) < 0.9

    def test_ties_handled(self):
        x = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 4.0])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        rho = spearman(x, y)
        assert 0.9 < rho <= 1.0


class TestMatrix:
    @pytest.fixture()
    def dataset(self, rng):
        f = rng.uniform(1300, 1450, 300)
        return MeasurementDataset({
            "performance_ms": 3.3e6 / f + rng.normal(0, 5, 300),
            "frequency_mhz": f,
            "power_w": np.full(300, 299.0) + rng.normal(0, 2, 300),
            "temperature_c": rng.uniform(50, 80, 300),
        })

    def test_all_pairs_present(self, dataset):
        matrix = correlation_matrix(dataset)
        assert len(matrix) == 6

    def test_strong_pair_detected(self, dataset):
        matrix = correlation_matrix(dataset)
        pair = matrix[("performance_ms", "frequency_mhz")]
        assert pair.rho < -0.95
        assert pair.describe() == "strong negative"

    def test_paper_pairs_shortnames(self, dataset):
        pairs = paper_correlation_pairs(dataset)
        assert set(pairs) == {
            "perf_vs_frequency", "perf_vs_power",
            "perf_vs_temperature", "power_vs_temperature",
        }

    def test_describe_labels(self, dataset):
        pairs = paper_correlation_pairs(dataset)
        assert "negligible" in pairs["perf_vs_temperature"].describe() or \
               "weak" in pairs["perf_vs_temperature"].describe()

    def test_single_metric_rejected(self):
        ds = MeasurementDataset({"performance_ms": np.arange(10.0)})
        with pytest.raises(AnalysisError):
            correlation_matrix(ds)
