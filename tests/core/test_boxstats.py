"""Tests for box-and-whisker statistics (the paper's Section III definitions)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.boxstats import WHISKER_FACTOR, BoxStats
from repro.errors import AnalysisError


class TestBasics:
    def test_known_quartiles(self):
        stats = BoxStats.from_values(np.arange(1.0, 102.0))
        assert stats.median == 51.0
        assert stats.q1 == 26.0
        assert stats.q3 == 76.0
        assert stats.iqr == 50.0

    def test_variation_definition(self):
        """variation = (whisker_hi - whisker_lo) / median (Section III)."""
        x = np.arange(1.0, 102.0)
        stats = BoxStats.from_values(x)
        assert stats.variation == pytest.approx(
            (stats.whisker_hi - stats.whisker_lo) / stats.median
        )
        # No outliers in a uniform ramp: whiskers hit the extremes.
        assert stats.whisker_lo == 1.0
        assert stats.whisker_hi == 101.0
        assert stats.n_outliers == 0

    def test_outliers_detected_and_excluded(self):
        x = np.concatenate([np.full(50, 100.0) + np.arange(50) * 0.1, [500.0]])
        stats = BoxStats.from_values(x)
        assert stats.n_outliers == 1
        assert stats.whisker_hi < 500.0

    def test_constant_sample(self):
        stats = BoxStats.from_values(np.full(10, 42.0))
        assert stats.variation == 0.0
        assert stats.n_outliers == 0

    def test_empty_sample_rejected(self):
        with pytest.raises(AnalysisError):
            BoxStats.from_values(np.array([]))

    def test_nan_filtered(self):
        stats = BoxStats.from_values(np.array([1.0, np.nan, 3.0, 2.0]))
        assert stats.n == 3

    def test_zero_median_rejected(self):
        with pytest.raises(AnalysisError, match="zero median"):
            BoxStats.from_values(np.array([-1.0, 0.0, 1.0]))

    def test_outlier_mask(self):
        x = np.concatenate([np.linspace(10, 11, 40), [50.0]])
        stats = BoxStats.from_values(x)
        mask = stats.outlier_mask(x)
        assert mask.sum() == 1
        assert mask[-1]

    def test_contains(self):
        stats = BoxStats.from_values(np.linspace(10, 20, 50))
        assert stats.contains(15.0)
        assert not stats.contains(100.0)

    def test_as_dict_keys(self):
        d = BoxStats.from_values(np.arange(1.0, 20.0)).as_dict()
        assert {"q1", "median", "q3", "variation", "n"} <= set(d)


class TestInvariants:
    @settings(max_examples=80, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=0.5, max_value=1e6, allow_nan=False),
        min_size=3, max_size=300,
    ))
    def test_property_invariants(self, values):
        x = np.asarray(values)
        stats = BoxStats.from_values(x)
        # Quartile ordering.
        assert stats.q1 <= stats.median <= stats.q3
        # Whiskers inside fences and straddling the median.  (The box can
        # poke past the whiskers on tiny samples because the quartiles are
        # interpolated while the whiskers are observations.)
        assert stats.fence_lo <= stats.whisker_lo <= stats.median
        assert stats.median <= stats.whisker_hi <= stats.fence_hi
        # Fence construction.
        assert stats.fence_hi == pytest.approx(
            stats.q3 + WHISKER_FACTOR * stats.iqr
        )
        # Outlier count consistent with the mask.
        assert stats.n_outliers == int(stats.outlier_mask(x).sum())
        # Variation is non-negative and matches its definition.
        assert stats.variation >= 0.0
        assert stats.range == pytest.approx(
            stats.whisker_hi - stats.whisker_lo
        )

    @settings(max_examples=40, deadline=None)
    @given(
        values=st.lists(
            st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
            min_size=5, max_size=100,
        ),
        scale=st.floats(min_value=0.1, max_value=100.0),
    )
    def test_property_variation_scale_invariant(self, values, scale):
        """variation is a relative measure: scaling the data preserves it."""
        x = np.asarray(values)
        a = BoxStats.from_values(x)
        b = BoxStats.from_values(x * scale)
        assert a.variation == pytest.approx(b.variation, rel=1e-9, abs=1e-12)

    @settings(max_examples=40, deadline=None)
    @given(values=st.lists(
        st.floats(min_value=1.0, max_value=1e4, allow_nan=False),
        min_size=5, max_size=100,
    ))
    def test_property_adding_extreme_outlier_does_not_move_whiskers_much(
        self, values
    ):
        """Outliers are excluded from the variance calculation (Section III)."""
        x = np.asarray(values)
        base = BoxStats.from_values(x)
        spiked = BoxStats.from_values(np.append(x, base.median * 1e6))
        # The spike lands outside the fences whenever the sample has any
        # spread, so the whisker span must not chase it.
        if base.iqr > 0:
            assert spiked.n_outliers >= 1
            assert spiked.whisker_hi < base.median * 1e5
