"""Tests for fleet variability summaries."""

import numpy as np
import pytest

from repro.core.variability import (
    grouped_boxstats,
    metric_boxstats,
    normalized_performance,
    variability_table,
)
from repro.errors import AnalysisError
from repro.telemetry.dataset import MeasurementDataset


@pytest.fixture()
def dataset():
    n_gpus, n_runs = 20, 3
    rng = np.random.default_rng(0)
    gpu = np.repeat(np.arange(n_gpus), n_runs)
    base = np.repeat(1000.0 + 50.0 * rng.standard_normal(n_gpus), n_runs)
    return MeasurementDataset({
        "gpu_index": gpu,
        "gpu_label": np.asarray([f"g{i}" for i in gpu], dtype=object),
        "cabinet": np.asarray(
            [f"c{i % 4}" for i in gpu], dtype=object
        ),
        "performance_ms": base + rng.normal(0, 2.0, gpu.shape[0]),
        "power_w": np.full(gpu.shape[0], 300.0) + rng.normal(0, 3, gpu.shape[0]),
    })


class TestMetricBoxstats:
    def test_per_gpu_median_collapses_runs(self, dataset):
        stats = metric_boxstats(dataset, "performance_ms")
        assert stats.n == 20

    def test_run_level(self, dataset):
        stats = metric_boxstats(dataset, "performance_ms", per_gpu_median=False)
        assert stats.n == 60

    def test_campaign_dataset(self, sgemm_dataset):
        stats = metric_boxstats(sgemm_dataset, "performance_ms")
        assert 0.03 < stats.variation < 0.2  # the paper's 8-9% band


class TestGroupedBoxstats:
    def test_groups(self, dataset):
        grouped = grouped_boxstats(dataset, "performance_ms", "cabinet")
        assert set(grouped) == {"c0", "c1", "c2", "c3"}

    def test_small_groups_skipped(self, dataset):
        tiny = dataset.filter(dataset["gpu_index"] < 1).with_column(
            "solo", np.asarray(["x"] * 3, dtype=object)
        )
        grouped = grouped_boxstats(tiny, "performance_ms", "solo",
                                   per_gpu_median=False)
        assert "x" in grouped

    def test_all_groups_too_small_raises(self, dataset):
        one_row = dataset.head(1)
        with pytest.raises(AnalysisError):
            grouped_boxstats(one_row, "performance_ms", "cabinet")


class TestVariabilityTable:
    def test_only_present_metrics(self, dataset):
        table = variability_table(dataset)
        assert set(table) == {"performance_ms", "power_w"}

    def test_campaign_has_all_four(self, sgemm_dataset):
        table = variability_table(sgemm_dataset)
        assert len(table) == 4


class TestNormalizedPerformance:
    def test_median_is_one(self, dataset):
        normalized = normalized_performance(dataset)
        assert np.median(normalized) == pytest.approx(1.0)

    def test_shape_is_per_gpu(self, dataset):
        assert normalized_performance(dataset).shape == (20,)
