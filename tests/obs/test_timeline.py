"""Tests for the unified flight recorder and its replayer.

The timeline's load-bearing guarantee is byte-stability: one canonical
event stream, identical at any worker count and across repeated runs, with
recording changing no computed output.  The replayer must reconstruct
derived state from that stream alone and verify the recorded summary
claims (``repro replay --check``).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs.replay import TimelineReplayer, load_replayer
from repro.obs.timeline import (
    TIMELINE_LAYERS,
    TIMELINE_SCHEMA_VERSION,
    TimelineError,
    TimelineEvent,
    TimelineRecorder,
    activate_recorder,
    active_recorder,
    canonical_digest,
    read_timeline,
    timeline_lines,
    validate_timeline_event,
    write_timeline,
)
from repro.sim import CampaignConfig, run_campaign
from repro.sim.parallel import ParallelConfig
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

CONFIG = CampaignConfig(days=2, runs_per_day=2)


def _recorded(cluster, parallel=None):
    timeline = TimelineRecorder()
    dataset = run_campaign(
        cluster, sgemm(), CONFIG, parallel=parallel, timeline=timeline
    )
    return dataset, timeline


class TestRecorder:
    def test_seq_is_monotone(self):
        rec = TimelineRecorder()
        assert rec.record("sim", "run", "a") == 0
        assert rec.record("sim", "run", "b") == 1
        assert rec.n_events == 2
        assert [e.seq for e in rec.events()] == [0, 1]

    def test_unknown_layer_rejected(self):
        rec = TimelineRecorder()
        with pytest.raises(TimelineError, match="unknown layer"):
            rec.record("nope", "run", "a")

    def test_payload_is_sorted_and_queryable(self):
        rec = TimelineRecorder()
        rec.record("sim", "run", "a", zeta=1, alpha=2)
        (event,) = rec.events()
        assert [k for k, _ in event.payload] == ["alpha", "zeta"]
        assert event.value("zeta") == 1
        assert event.value("missing", 7) == 7

    def test_activation_is_scoped_and_nestable(self):
        outer, inner = TimelineRecorder(), TimelineRecorder()
        assert active_recorder() is None
        with activate_recorder(outer):
            assert active_recorder() is outer
            with activate_recorder(inner):
                assert active_recorder() is inner
            assert active_recorder() is outer
        assert active_recorder() is None

    def test_merge_payload_preserves_order(self):
        shard_a, shard_b = TimelineRecorder(), TimelineRecorder()
        shard_a.record("sim", "run", "a0")
        shard_b.record("sim", "run", "b0")
        merged = TimelineRecorder()
        merged.merge_payload(shard_a.to_payload())
        merged.merge_payload(shard_b.to_payload())
        assert [e.entity for e in merged.events()] == ["a0", "b0"]
        assert [e.seq for e in merged.events()] == [0, 1]

    def test_streaming_mode_writes_immediately(self):
        sink = io.StringIO()
        rec = TimelineRecorder(stream=sink)
        header = json.loads(sink.getvalue().splitlines()[0])
        assert header["schema_version"] == TIMELINE_SCHEMA_VERSION
        rec.record("service", "admit", "d1", status="miss")
        lines = sink.getvalue().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[1])["seq"] == 0


class TestSerialization:
    def test_write_read_round_trip(self, tmp_path):
        rec = TimelineRecorder()
        rec.record("campaign", "campaign_begin", "c", days=2)
        rec.record("sim", "run", "day-000/run-000", solves=3)
        path = tmp_path / "t.jsonl"
        assert write_timeline(rec, path) == 2
        header, events = read_timeline(path)
        assert header["schema_version"] == TIMELINE_SCHEMA_VERSION
        assert events == rec.events()

    @pytest.mark.parametrize("doc", [
        {"layer": "sim", "kind": "run", "entity": "x"},       # no seq
        {"seq": True, "layer": "sim", "kind": "run", "entity": "x"},
        {"seq": -1, "layer": "sim", "kind": "run", "entity": "x"},
        {"seq": 0, "layer": "nope", "kind": "run", "entity": "x"},
        {"seq": 0, "layer": "sim", "kind": "run", "entity": "x",
         "payload": []},
    ])
    def test_validate_rejects_malformed_events(self, doc):
        with pytest.raises(TimelineError):
            validate_timeline_event(doc)

    def test_read_rejects_out_of_order_seq(self, tmp_path):
        rec = TimelineRecorder()
        rec.record("sim", "run", "a")
        rec.record("sim", "run", "b")
        lines = timeline_lines(rec)
        lines[1], lines[2] = lines[2], lines[1]
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(TimelineError, match="out of order"):
            read_timeline(path)

    def test_read_rejects_wrong_schema_version(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"schema_version":99,"stream":"repro.timeline"}\n')
        with pytest.raises(TimelineError, match="schema_version"):
            read_timeline(path)


class TestCampaignTimeline:
    @pytest.fixture(scope="class")
    def serial(self, request):
        cluster = request.getfixturevalue("small_longhorn")
        return _recorded(cluster)

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_byte_identical_across_worker_layouts(self, small_longhorn,
                                                  serial, backend):
        _, parallel = _recorded(
            small_longhorn, ParallelConfig(workers=2, backend=backend)
        )
        assert timeline_lines(parallel) == timeline_lines(serial[1])

    def test_byte_identical_across_repeats(self, small_longhorn, serial):
        _, again = _recorded(small_longhorn)
        assert again.digest() == serial[1].digest()

    def test_recording_does_not_perturb_outputs(self, small_longhorn, serial):
        plain = run_campaign(small_longhorn, sgemm(), CONFIG)
        assert dataset_to_csv_text(serial[0]) == dataset_to_csv_text(plain)

    def test_lifecycle_events_bracket_the_runs(self, small_longhorn, serial):
        events = serial[1].events()
        assert events[0].kind == "campaign_begin"
        assert events[0].layer == "campaign"
        assert events[-1].kind == "campaign_end"
        run_events = [e for e in events if e.kind == "run"]
        assert len(run_events) == events[-1].value("n_shards")
        assert events[-1].value("solves") > 0

    def test_replay_check_passes_and_catches_tampering(self, serial):
        replayer = TimelineReplayer(serial[1].events())
        checks = replayer.check()
        assert checks and all(c.ok for c in checks)
        # Drop one run event: the campaign_end claim must now fail.
        events = [e for e in serial[1].events() if e.seq != 1]
        tampered = TimelineReplayer(tuple(events)).check()
        assert any(not c.ok for c in tampered)
        assert any("FAIL" in c.render() for c in tampered)


class TestReplayerQueries:
    def _sched_events(self):
        rec = TimelineRecorder()
        rec.record("sched", "sched_begin", "c", policy="fifo", n_jobs=2,
                   fleet_gpus=8, backfill=False)
        rec.record("sched", "submit", "job-0", job=0, t=0.0)
        rec.record("sched", "submit", "job-1", job=1, t=1.0)
        rec.record("sched", "start", "job-0", job=0, t=2.0,
                   gpus=[0, 1], nodes=[0], backfilled=False)
        rec.record("sched", "finish", "job-0", job=0, t=5.0)
        rec.record("sched", "start", "job-1", job=1, t=5.0,
                   gpus=[2], nodes=[0], backfilled=True)
        return rec.events()

    def test_state_at_reconstructs_queue_and_occupancy(self):
        replayer = TimelineReplayer(self._sched_events())
        mid = replayer.state_at(3)["sched"]
        assert mid == {"queued": 1, "running": 1, "finished": 0,
                       "occupied_gpus": 2, "backfill_starts": 0}
        end = replayer.state_at(None)["sched"]
        assert end == {"queued": 0, "running": 1, "finished": 1,
                       "occupied_gpus": 1, "backfill_starts": 1}

    def test_counters_respect_logical_time(self):
        replayer = TimelineReplayer(self._sched_events())
        assert replayer.counters(2) == {
            "sched.sched_begin": 1, "sched.submit": 2,
        }

    def test_summarize_and_grep(self):
        replayer = TimelineReplayer(self._sched_events())
        summary = replayer.summarize()
        assert summary["n_events"] == 6
        assert summary["layers"] == {"sched": 6}
        assert len(replayer.grep("job-0")) == 3
        assert len(replayer.grep("submit")) == 2
        assert replayer.grep("nothing") == ()

    def test_health_grades_replay_with_recovery_hysteresis(self):
        rec = TimelineRecorder()
        rec.record("health", "THERMAL_RUNAWAY", "g00", gpu_index=0)
        rec.record("health", "DEFECT_DRIFT", "g01", gpu_index=1)
        rec.record("health", "RECOVERED", "g00", gpu_index=0,
                   cleared="THERMAL_RUNAWAY")
        replayer = TimelineReplayer(rec.events())
        after_open = replayer.state_at(1)["health"]["grades"]
        assert after_open == {"g00": "critical", "g01": "watch"}
        final = replayer.state_at(None)["health"]
        # recovered-once keeps the paper's "watch" hysteresis grade
        assert final["grades"] == {"g00": "watch", "g01": "watch"}
        assert final["open_conditions"] == {"g01": ["DEFECT_DRIFT"]}

    def test_load_replayer_round_trip(self, tmp_path):
        rec = TimelineRecorder()
        rec.record("sim", "run", "a", solves=1)
        path = tmp_path / "t.jsonl"
        write_timeline(rec, path)
        replayer = load_replayer(path)
        assert replayer.events == rec.events()


class TestSchedTimeline:
    @pytest.fixture(scope="class")
    def sched_timeline(self):
        from repro.cluster import get_preset
        from repro.sched import FifoPolicy, TraceConfig, generate_trace, \
            run_schedule

        cluster = get_preset("longhorn", seed=11, scale=0.25)
        trace = generate_trace(TraceConfig(n_jobs=20, seed=4))
        timeline = TimelineRecorder()
        with activate_recorder(timeline):
            outcome = run_schedule(cluster, trace, FifoPolicy())
        return outcome, timeline

    def test_events_balance_and_match_records(self, sched_timeline):
        outcome, timeline = sched_timeline
        events = timeline.events()
        assert events[0].kind == "sched_begin"
        kinds = [e.kind for e in events[1:]]
        assert kinds.count("submit") == 20
        assert kinds.count("start") == 20
        assert kinds.count("finish") == 20
        by_id = {r.job_id: r for r in outcome.records}
        for event in events:
            if event.kind == "start":
                record = by_id[event.value("job")]
                # exact floats: the replayer rebuilds records bit-for-bit
                assert event.value("t") == record.start_time_s
                assert event.value("runtime_s") == record.runtime_s
                assert tuple(event.value("gpus")) == record.gpu_indices

    def test_engines_record_identical_timelines(self):
        from repro.cluster import get_preset
        from repro.sched import FifoPolicy, TraceConfig, generate_trace, \
            run_schedule

        cluster = get_preset("longhorn", seed=11, scale=0.25)
        trace = generate_trace(TraceConfig(n_jobs=20, seed=4))
        digests = []
        for engine in ("reference", "indexed"):
            timeline = TimelineRecorder()
            with activate_recorder(timeline):
                run_schedule(cluster, trace, FifoPolicy(), engine=engine)
            digests.append(timeline.digest())
        assert digests[0] == digests[1]
