"""Tests for online fleet health detection (repro.obs.health)."""

import json

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ForcedDefect
from repro.cluster.cooling import AirCooling
from repro.cluster.topology import cabinet_topology, row_column_topology
from repro.errors import AnalysisError, ConfigError
from repro.gpu.defects import DefectConfig, DefectType
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100
from repro.obs.health import (
    GRADES,
    HealthEventKind,
    HealthPolicy,
    HealthTracker,
    analyze_fleet_health,
    build_health_report,
    validate_health_report,
    write_health_events,
)
from repro.obs.metrics import FleetMonitor
from repro.sim import CampaignConfig, run_campaign
from repro.workloads import sgemm

N = 12
LABELS = tuple(f"g{i:02d}" for i in range(N))

#: Tight hysteresis for synthetic feeds: evaluate from the second run on.
POLICY = HealthPolicy(window_runs=3, min_window_runs=2, min_fleet=8,
                      open_after=2, close_after=2)


def _run(tracker, *, day=0, run_index=0, perf=None, freq=None, temp=None,
         capped=None):
    """Feed one full-coverage synthetic run; spread avoids degenerate fences."""
    base = 100.0 + 0.3 * np.arange(N)
    perf = base if perf is None else np.asarray(perf, dtype=float)
    return tracker.observe_run(
        day=day, run_index=run_index,
        gpu_indices=np.arange(N),
        performance_ms=perf,
        frequency_mhz=np.full(N, 1300.0) if freq is None else np.asarray(freq),
        temperature_c=np.full(N, 60.0) if temp is None else np.asarray(temp),
        power_capped=np.zeros(N, bool) if capped is None else np.asarray(capped),
        thermally_capped=np.zeros(N, bool),
    )


def _slow(factor, gpu=0):
    perf = 100.0 + 0.3 * np.arange(N)
    perf[gpu] *= factor
    return perf


class TestPolicy:
    def test_defaults_valid(self):
        HealthPolicy()

    @pytest.mark.parametrize("kwargs", [
        {"window_runs": 0},
        {"min_window_runs": 9, "window_runs": 4},
        {"min_fleet": 2},
        {"open_after": 0},
        {"stuck_residency": 1.5},
        {"drift_ratio": 1.0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            HealthPolicy(**kwargs)


class TestTrackerBasics:
    def test_no_events_below_min_window(self):
        tracker = HealthTracker(LABELS, POLICY)
        events = _run(tracker, perf=_slow(2.0))
        assert events == []  # one run < min_window_runs

    def test_rejects_out_of_range_gpu(self):
        tracker = HealthTracker(LABELS, POLICY)
        with pytest.raises(AnalysisError, match="labels"):
            tracker.observe_run(
                day=0, run_index=0, gpu_indices=np.array([N + 3]),
                performance_ms=np.array([100.0]),
                frequency_mhz=np.array([1300.0]),
                temperature_c=np.array([60.0]),
                power_capped=np.array([False]),
                thermally_capped=np.array([False]),
            )

    def test_small_fleet_never_evaluates(self):
        tracker = HealthTracker(LABELS[:4], HealthPolicy(min_fleet=4))
        # only 3 of 4 GPUs ever observed -> below min_fleet, no fences
        for i in range(5):
            tracker.observe_run(
                day=0, run_index=i, gpu_indices=np.arange(3),
                performance_ms=np.array([100.0, 101.0, 300.0]),
                frequency_mhz=np.full(3, 1300.0),
                temperature_c=np.full(3, 60.0),
                power_capped=np.zeros(3, bool),
                thermally_capped=np.zeros(3, bool),
            )
        assert tracker.events == []


class TestChronicSlow:
    def test_persistent_slow_gpu_opens(self):
        tracker = HealthTracker(LABELS, POLICY)
        for i in range(4):
            _run(tracker, run_index=i, perf=_slow(1.5))
        kinds = [e.kind for e in tracker.events]
        assert HealthEventKind.CHRONIC_SLOW_OUTLIER in kinds
        event = next(e for e in tracker.events
                     if e.kind == HealthEventKind.CHRONIC_SLOW_OUTLIER)
        assert event.gpu_label == "g00"
        assert event.value > event.threshold

    def test_single_noisy_run_does_not_flap(self):
        tracker = HealthTracker(LABELS, POLICY)
        _run(tracker, run_index=0)
        _run(tracker, run_index=1, perf=_slow(1.5))  # one bad run
        for i in range(2, 6):
            _run(tracker, run_index=i)
        assert tracker.events == []  # hysteresis absorbed the transient
        assert tracker.grades() == ("ok",) * N

    def test_accumulator_mirrors_persistent_outliers(self):
        tracker = HealthTracker(LABELS, POLICY)
        for i in range(4):
            _run(tracker, run_index=i, perf=_slow(1.5))
        persistent = tracker.outlier_accumulator.persistent(min_occurrences=2)
        assert "g00" in persistent


class TestThermalRunaway:
    def test_hot_gpu_opens_with_critical_grade(self):
        tracker = HealthTracker(LABELS, POLICY)
        temp = np.full(N, 60.0) + 0.2 * np.arange(N)
        temp[4] = 85.0  # way past fence + 5 degC floor
        for i in range(4):
            _run(tracker, run_index=i, temp=temp)
        event = next(e for e in tracker.events
                     if e.kind == HealthEventKind.THERMAL_RUNAWAY)
        assert event.gpu_label == "g04"
        assert tracker.grades()[4] == "critical"

    def test_residual_within_floor_is_noise(self):
        tracker = HealthTracker(LABELS, POLICY)
        temp = np.full(N, 60.0)
        temp[4] = 63.0  # fence outlier but < thermal_min_residual_c above
        for i in range(4):
            _run(tracker, run_index=i, temp=temp)
        assert all(e.kind != HealthEventKind.THERMAL_RUNAWAY
                   for e in tracker.events)


class TestStuckThrottle:
    def _stuck_run(self, tracker, run_index, stuck=True):
        freq = np.full(N, 1300.0)
        capped = np.zeros(N, bool)
        if stuck:
            freq[7] = 1000.0
            capped[7] = True
        _run(tracker, run_index=run_index, freq=freq, capped=capped)

    def test_capped_and_slow_clocks_open(self):
        tracker = HealthTracker(LABELS, POLICY)
        for i in range(4):
            self._stuck_run(tracker, i)
        event = next(e for e in tracker.events
                     if e.kind == HealthEventKind.STUCK_THROTTLE)
        assert event.gpu_label == "g07"
        assert event.value >= POLICY.stuck_residency

    def test_residency_alone_is_not_a_defect(self):
        tracker = HealthTracker(LABELS, POLICY)
        # the whole fleet is power-capped at healthy clocks (routine)
        for i in range(4):
            _run(tracker, run_index=i, capped=np.ones(N, bool))
        assert all(e.kind != HealthEventKind.STUCK_THROTTLE
                   for e in tracker.events)

    def test_recovery_emits_and_downgrades_to_watch(self):
        tracker = HealthTracker(LABELS, POLICY)
        for i in range(4):
            self._stuck_run(tracker, i)
        assert tracker.grades()[7] == "degraded"
        for i in range(4, 10):
            self._stuck_run(tracker, i, stuck=False)
        recovered = [e for e in tracker.events
                     if e.kind == HealthEventKind.RECOVERED]
        assert len(recovered) == 1
        assert recovered[0].gpu_label == "g07"
        assert dict(recovered[0].details)["cleared"] == "STUCK_THROTTLE"
        assert tracker.grades()[7] == "watch"  # recovered: keep an eye on it
        assert tracker.open_conditions(7) == ()


class TestDefectDrift:
    def test_drift_above_own_baseline_opens_watch(self):
        policy = HealthPolicy(window_runs=3, min_window_runs=2, min_fleet=8,
                              open_after=2, close_after=2)
        tracker = HealthTracker(LABELS, policy)
        perf = 100.0 + 1.0 * np.arange(N)
        for i in range(3):  # establish every baseline at the first full window
            _run(tracker, run_index=i, perf=perf)
        drifted = perf.copy()
        drifted[0] = 110.0  # ~10% above its own baseline, inside fleet fence
        for i in range(3, 6):
            _run(tracker, run_index=i, perf=drifted)
        event = next(e for e in tracker.events
                     if e.kind == HealthEventKind.DEFECT_DRIFT)
        assert event.gpu_label == "g00"
        assert tracker.grades()[0] == "watch"
        # drift is explicitly NOT the fence condition
        assert all(e.kind != HealthEventKind.CHRONIC_SLOW_OUTLIER
                   for e in tracker.events)


class TestReport:
    def _tracked_topology(self):
        topo = cabinet_topology("TestFleet", n_nodes=3, gpus_per_node=4)
        tracker = HealthTracker(topo.gpu_labels, POLICY)
        for i in range(4):
            _run(tracker, run_index=i, perf=_slow(1.5))
        return tracker, topo

    def test_report_lists_only_unhealthy(self):
        tracker, topo = self._tracked_topology()
        report = build_health_report(tracker, topo)
        assert report.n_gpus == N
        assert all(entry["grade"] != "ok" for entry in report.gpu_entries)
        flagged = {entry["gpu_label"] for entry in report.gpu_entries}
        assert topo.gpu_labels[0] in flagged

    def test_node_rollup_worst_grade(self):
        tracker, topo = self._tracked_topology()
        report = build_health_report(tracker, topo)
        assert report.node_entries  # GPU 0's node is unhealthy
        entry = next(e for e in report.node_entries
                     if e["node_label"] == topo.node_labels[0])
        assert entry["worst"] == "degraded"
        assert sum(entry["grade_counts"].values()) == topo.gpus_per_node

    def test_row_rollup_on_grid_topology(self):
        topo = row_column_topology("Grid", n_rows=2, n_columns=2,
                                   nodes_per_column=1, gpus_per_node=3)
        tracker = HealthTracker(
            topo.gpu_labels, HealthPolicy(window_runs=3, min_window_runs=2,
                                          min_fleet=8, open_after=2)
        )
        n = topo.n_gpus
        perf = 100.0 + 0.3 * np.arange(n)
        perf[0] *= 1.5
        for i in range(4):
            tracker.observe_run(
                day=0, run_index=i, gpu_indices=np.arange(n),
                performance_ms=perf, frequency_mhz=np.full(n, 1300.0),
                temperature_c=np.full(n, 60.0),
                power_capped=np.zeros(n, bool),
                thermally_capped=np.zeros(n, bool),
            )
        report = build_health_report(tracker, topo)
        assert report.row_entries
        assert report.row_entries[0]["worst"] == "degraded"

    def test_to_dict_validates_against_schema(self):
        tracker, topo = self._tracked_topology()
        report = build_health_report(tracker, topo)
        validate_health_report(report.to_dict())  # must not raise

    def test_write_json_roundtrip(self, tmp_path):
        tracker, topo = self._tracked_topology()
        report = build_health_report(tracker, topo)
        path = tmp_path / "health.json"
        report.write_json(path)
        doc = json.loads(path.read_text())
        assert doc["schema_version"] == 1
        assert doc["grade_counts"]["degraded"] >= 1
        assert sum(doc["grade_counts"].values()) == N

    def test_render_mentions_unhealthy_gpus(self):
        tracker, topo = self._tracked_topology()
        text = build_health_report(tracker, topo).render()
        assert "fleet health: TestFleet" in text
        assert topo.gpu_labels[0] in text
        assert "CHRONIC_SLOW_OUTLIER" in text

    def test_healthy_fleet_renders_clean(self):
        topo = cabinet_topology("TestFleet", n_nodes=3, gpus_per_node=4)
        tracker = HealthTracker(topo.gpu_labels, POLICY)
        for i in range(4):
            _run(tracker, run_index=i)
        report = build_health_report(tracker, topo)
        assert report.gpu_entries == ()
        assert "all GPUs healthy" in report.render()

    def test_gpu_count_mismatch_raises(self):
        topo = cabinet_topology("TestFleet", n_nodes=3, gpus_per_node=4)
        with pytest.raises(AnalysisError, match="topology"):
            build_health_report(HealthTracker(("a", "b"), POLICY), topo)

    def test_grades_order_matches_constant(self):
        assert GRADES == ("ok", "watch", "degraded", "critical")


class TestEventLog:
    def test_write_health_events_jsonl(self, tmp_path):
        tracker = HealthTracker(LABELS, POLICY)
        for i in range(4):
            _run(tracker, run_index=i, perf=_slow(1.5))
        path = tmp_path / "events.jsonl"
        write_health_events(tracker.events, path)
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == len(tracker.events)
        assert lines[0]["kind"] in {k.value for k in HealthEventKind}
        assert {"gpu_label", "day", "run_index", "value",
                "threshold"} <= set(lines[0])


class TestDefectInjectedFleet:
    """The acceptance scenario: known defects surface as the right events."""

    SICK_GPU = "c001-002-1"
    HOT_GPU = "c003-001-2"

    @pytest.fixture(scope="class")
    def result(self):
        topology = cabinet_topology("Sickbay", n_nodes=12, gpus_per_node=4)
        cluster = Cluster(
            name="Sickbay",
            spec=V100,
            topology=topology,
            cooling=AirCooling(),
            silicon_config=SiliconConfig(),
            defect_config=DefectConfig.none(),
            forced_defects=(
                ForcedDefect("gpu", self.SICK_GPU, DefectType.SICK_SLOW,
                             severity=0.70),
                ForcedDefect("gpu", self.HOT_GPU, DefectType.HOT_RUNNER,
                             severity=2.5),
            ),
            seed=7,
        )
        monitor = FleetMonitor()
        run_campaign(cluster, sgemm(),
                     CampaignConfig(days=3, runs_per_day=2), monitor=monitor)
        tracker, report = analyze_fleet_health(monitor, topology)
        return tracker, report

    def test_sick_slow_gpu_flagged_chronic(self, result):
        tracker, _ = result
        chronic = {e.gpu_label for e in tracker.events
                   if e.kind == HealthEventKind.CHRONIC_SLOW_OUTLIER}
        assert self.SICK_GPU in chronic

    def test_hot_runner_flagged_thermal(self, result):
        tracker, _ = result
        thermal = {e.gpu_label for e in tracker.events
                   if e.kind == HealthEventKind.THERMAL_RUNAWAY}
        assert self.HOT_GPU in thermal

    def test_healthy_majority_stays_ok(self, result):
        tracker, report = result
        counts = report.grade_counts()
        assert counts["ok"] >= tracker.n_gpus - 6

    def test_report_schema_valid(self, result):
        _, report = result
        validate_health_report(report.to_dict())


class TestRecoveredHysteresis:
    """RECOVERED semantics under multi-condition opens and closes.

    One GPU goes chronically slow, then additionally hot, then fully
    heals: the grade must walk down monotonically (ok -> degraded ->
    critical), both conditions must close in the *same* observation in
    the fixed ``_CONDITION_KINDS`` evaluation order, and the recovered
    GPU must land on "watch" — never back on "ok".
    """

    def _feed(self, tracker):
        """Slow runs 0-5, additionally hot runs 3-5, healthy 6-9.

        Returns the grade of GPU 0 after every run.
        """
        grades = []
        for i in range(10):
            perf = _slow(1.5) if i <= 5 else None
            temp = None
            if 3 <= i <= 5:
                temp = np.full(N, 60.0)
                temp[0] = 75.0
            _run(tracker, run_index=i, perf=perf, temp=temp)
            grades.append(tracker.grades()[0])
        return grades

    def test_grades_downgrade_monotonically_before_recovery(self):
        tracker = HealthTracker(LABELS, POLICY)
        grades = self._feed(tracker)
        first_recovery = next(
            i for i, e in enumerate(tracker.events)
            if e.kind == HealthEventKind.RECOVERED
        )
        recovery_run = tracker.events[first_recovery].run_index
        severities = [GRADES.index(g) for g in grades[:recovery_run]]
        assert severities == sorted(severities)
        assert grades[2] == "degraded"       # chronic slow opened
        assert "critical" in grades          # thermal runaway stacked on top

    def test_both_conditions_close_in_same_observation_in_fixed_order(self):
        tracker = HealthTracker(LABELS, POLICY)
        self._feed(tracker)
        recovered = [e for e in tracker.events
                     if e.kind == HealthEventKind.RECOVERED]
        assert len(recovered) == 2
        first, second = recovered
        # same evaluation: one run closed both conditions at once
        assert (first.day, first.run_index) == (second.day, second.run_index)
        # deterministic order: thermal is evaluated before chronic slow
        assert dict(first.details)["cleared"] == "THERMAL_RUNAWAY"
        assert dict(second.details)["cleared"] == "CHRONIC_SLOW_OUTLIER"

    def test_recovered_gpu_grades_watch_not_ok(self):
        tracker = HealthTracker(LABELS, POLICY)
        grades = self._feed(tracker)
        assert grades[-1] == "watch"
        assert tracker.open_conditions(0) == ()
        # the rest of the fleet never flagged: still plain ok
        assert set(tracker.grades()[1:]) == {"ok"}

    def test_event_stream_is_reproducible(self):
        def feed():
            tracker = HealthTracker(LABELS, POLICY)
            self._feed(tracker)
            return tracker.events

        assert feed() == feed()
