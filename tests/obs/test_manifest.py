"""Campaign manifest: emission, schema validation, round-trip, audits."""

from __future__ import annotations

import json

import pytest

import repro
from repro.cluster import cloudlab
from repro.errors import ConfigError
from repro.obs import (
    MANIFEST_SCHEMA,
    Manifest,
    campaign_config_from_manifest,
    read_manifest,
    validate_manifest,
)
from repro.sim import CampaignConfig, run_campaign
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm

CONFIG = CampaignConfig(days=2, runs_per_day=2, coverage=1.0)


@pytest.fixture(scope="module")
def emitted():
    """One campaign executed with a manifest sink attached."""
    cluster = cloudlab(seed=5, scale=0.5)
    manifest = Manifest()
    dataset = run_campaign(cluster, sgemm(), CONFIG, manifest=manifest)
    return cluster, dataset, manifest


class TestEmission:
    def test_one_entry_per_campaign(self, emitted):
        _, _, manifest = emitted
        assert len(manifest.campaigns) == 1

    def test_entry_contents(self, emitted):
        cluster, dataset, manifest = emitted
        entry = manifest.campaigns[0]
        assert entry.cluster["name"] == cluster.name
        assert entry.cluster["seed"] == 5
        assert entry.workload["name"] == sgemm().name
        assert entry.config["days"] == 2
        assert entry.solver["mode"] in ("ladder", "fleet", "grid")
        assert entry.solver["solves"] > 0
        assert entry.solver["batches"] > 0
        assert entry.result["n_rows"] == dataset.n_rows
        assert entry.result["columns"] == dataset.column_names

    def test_rng_roots(self, emitted):
        cluster, _, manifest = emitted
        rng = manifest.campaigns[0].rng
        assert rng["master_seed"] == cluster.seed
        assert rng["root_label"] == f"cluster-{cluster.name}"
        assert rng["derived_seed"] == cluster.rng_factory.seed
        assert "{day}" in rng["day_label_format"]
        assert "{run}" in rng["run_label_format"]

    def test_result_digest_matches_dataset(self, emitted):
        import hashlib

        _, dataset, manifest = emitted
        expected = hashlib.blake2b(
            dataset_to_csv_text(dataset).encode("utf-8"), digest_size=16
        ).hexdigest()
        assert manifest.campaigns[0].result["digest_blake2b"] == expected

    def test_serial_and_parallel_entries_identical(self, emitted):
        _, _, manifest = emitted
        m2 = Manifest()
        run_campaign(cloudlab(seed=5, scale=0.5), sgemm(), CONFIG,
                     workers=2, manifest=m2)
        assert m2.campaigns[0] == manifest.campaigns[0]


class TestRoundTrip:
    def test_write_validate_read(self, emitted, tmp_path):
        _, _, manifest = emitted
        path = manifest.write(tmp_path / "manifest.json")
        doc = read_manifest(path)
        assert doc["schema_version"] == 1
        assert doc["package_version"] == repro.__version__
        validate_manifest(doc)  # idempotent

    def test_reconstructs_exact_campaign_config(self, emitted, tmp_path):
        _, _, manifest = emitted
        path = manifest.write(tmp_path / "manifest.json")
        doc = json.loads(path.read_text())
        config = campaign_config_from_manifest(doc["campaigns"][0])
        assert config == CONFIG

    def test_reconstruction_rejects_tampered_config(self, emitted):
        _, _, manifest = emitted
        doc = manifest.to_dict()
        doc["campaigns"][0]["config"]["days"] = 99
        with pytest.raises(ConfigError, match="digest mismatch"):
            campaign_config_from_manifest(doc["campaigns"][0])


class TestValidator:
    def test_accepts_emitted_document(self, emitted):
        _, _, manifest = emitted
        validate_manifest(manifest.to_dict())

    def test_rejects_missing_required_key(self, emitted):
        doc = emitted[2].to_dict()
        del doc["campaigns"][0]["rng"]
        with pytest.raises(ConfigError, match=r"missing required key 'rng'"):
            validate_manifest(doc)

    def test_rejects_wrong_type(self, emitted):
        doc = emitted[2].to_dict()
        doc["schema_version"] = "one"
        with pytest.raises(ConfigError, match=r"\$\.schema_version"):
            validate_manifest(doc)

    def test_rejects_bool_as_integer(self):
        validate_manifest(3, {"type": "integer"})
        with pytest.raises(ConfigError):
            validate_manifest(True, {"type": "integer"})

    def test_rejects_enum_violation(self, emitted):
        doc = emitted[2].to_dict()
        doc["campaigns"][0]["solver"]["mode"] = "magic"
        with pytest.raises(ConfigError, match="magic"):
            validate_manifest(doc)

    def test_type_union_allows_null(self, emitted):
        doc = emitted[2].to_dict()
        assert doc["campaigns"][0]["config"]["power_limit_w"] is None
        validate_manifest(doc)

    def test_schema_is_json_serializable(self):
        json.dumps(MANIFEST_SCHEMA)
