"""Unit tests for the span tracer, counters, activation, and exports."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs import (
    NONDETERMINISTIC_COUNTER_PREFIXES,
    SpanRecord,
    Tracer,
    activate,
    active_tracer,
    write_chrome_trace,
    write_events_jsonl,
)


class TestTracer:
    def test_span_contextmanager_records(self):
        t = Tracer(track="t")
        with t.span("work", category="test", items=3):
            pass
        assert len(t.spans) == 1
        record = t.spans[0]
        assert record.name == "work"
        assert record.category == "test"
        assert record.track == "t"
        assert record.duration_s >= 0
        assert dict(record.args) == {"items": 3}
        assert record.end_s == record.start_s + record.duration_s

    def test_span_recorded_on_exception(self):
        t = Tracer()
        with pytest.raises(ValueError):
            with t.span("boom"):
                raise ValueError("x")
        assert [s.name for s in t.spans] == ["boom"]

    def test_counters_add_and_gauge(self):
        t = Tracer()
        t.add("a.count")
        t.add("a.count", 4)
        t.gauge("a.level", 7.5)
        t.gauge("a.level", 2.5)
        assert t.counters == {"a.count": 5, "a.level": 2.5}

    def test_merge_payload_sums_counters_and_appends_spans(self):
        shard = Tracer(track="shard-0")
        with shard.span("run"):
            shard.add("x", 2)
        total = Tracer()
        total.add("x", 1)
        total.merge_payload(shard.to_payload())
        total.merge_payload(shard.to_payload())
        assert total.counters["x"] == 5
        assert [s.track for s in total.spans] == ["shard-0", "shard-0"]

    def test_deterministic_counters_filters_cache_prefix(self):
        t = Tracer()
        t.add("cache.fleet_day.hit", 3)
        t.add("solver.solves", 2)
        assert "cache." in NONDETERMINISTIC_COUNTER_PREFIXES
        assert t.deterministic_counters() == {"solver.solves": 2}

    def test_span_index_is_a_multiset(self):
        t = Tracer(track="a")
        with t.span("run"):
            pass
        with t.span("run"):
            pass
        assert t.span_index() == {("a", "run"): 2}

    def test_payload_is_plain_data(self):
        t = Tracer()
        with t.span("s"):
            t.add("c")
        spans, counters = t.to_payload()
        assert isinstance(spans, tuple)
        assert all(isinstance(s, SpanRecord) for s in spans)
        assert isinstance(counters, dict)


class TestActivation:
    def test_inactive_by_default(self):
        assert active_tracer() is None

    def test_activate_and_restore(self):
        t = Tracer()
        with activate(t) as active:
            assert active is t
            assert active_tracer() is t
        assert active_tracer() is None

    def test_nested_activation_restores_outer(self):
        outer, inner = Tracer(), Tracer()
        with activate(outer):
            with activate(inner):
                assert active_tracer() is inner
            assert active_tracer() is outer

    def test_activation_is_thread_local(self):
        t = Tracer()
        seen: list = []
        with activate(t):
            thread = threading.Thread(target=lambda: seen.append(active_tracer()))
            thread.start()
            thread.join()
        assert seen == [None]


class TestExports:
    def _traced(self) -> Tracer:
        t = Tracer(track="campaign")
        with t.span("outer", category="campaign", k="v"):
            pass
        t.record_span("inner", category="run", track="day-000",
                      start_s=100.0, duration_s=0.5, day=0)
        t.add("solver.solves", 3)
        return t

    def test_events_jsonl(self, tmp_path):
        t = self._traced()
        path = write_events_jsonl(t, tmp_path / "events.jsonl")
        lines = [json.loads(line)
                 for line in path.read_text().splitlines()]
        assert [x["event"] for x in lines] == ["span", "span", "counter"]
        assert lines[1]["track"] == "day-000"
        assert lines[1]["args"] == {"day": 0}
        assert lines[2] == {"event": "counter", "name": "solver.solves",
                            "value": 3}

    def test_chrome_trace_structure(self, tmp_path):
        t = self._traced()
        path = write_chrome_trace(t, tmp_path / "trace.json")
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        phases = [e["ph"] for e in events]
        # one thread_name metadata event per track, then the spans, then
        # the counters instant event
        assert phases.count("M") == 2
        assert phases.count("X") == 2
        assert phases.count("i") == 1
        names = {e["args"]["name"] for e in events if e["ph"] == "M"}
        assert names == {"campaign", "day-000"}
        complete = [e for e in events if e["ph"] == "X"]
        assert all(e["ts"] >= 0 and e["dur"] >= 0 for e in complete)
        instant = [e for e in events if e["ph"] == "i"][0]
        assert instant["args"] == {"solver.solves": 3}

    def test_chrome_trace_empty_tracer(self, tmp_path):
        path = write_chrome_trace(Tracer(), tmp_path / "empty.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []
