"""Tests for the streaming metrics pipeline (repro.obs.metrics)."""

import numpy as np
import pytest

from repro.errors import AnalysisError, ConfigError
from repro.obs.metrics import (
    DEFAULT_HISTOGRAM_EDGES,
    FleetMonitor,
    MetricsRegistry,
    MonitorConfig,
    SlidingWindow,
    activate_monitor,
    active_monitor,
    render_prometheus,
)

from ..golden import golden_csv_text, read_golden_text

GOLDEN_NAME = "cloudlab-sgemm"


class TestSlidingWindow:
    def test_push_and_median(self):
        w = SlidingWindow(n_series=3, capacity=2)
        w.push(np.array([1.0, 10.0, 100.0]))
        w.push(np.array([3.0, 30.0, 300.0]))
        assert np.allclose(w.median(), [2.0, 20.0, 200.0])

    def test_ring_evicts_oldest(self):
        w = SlidingWindow(n_series=1, capacity=2)
        for value in (1.0, 2.0, 9.0):
            w.push(np.array([value]))
        # 1.0 fell out of the window; median over {2, 9}
        assert np.allclose(w.median(), [5.5])
        assert w.counts.tolist() == [2]

    def test_partial_coverage_advances_only_observed_series(self):
        w = SlidingWindow(n_series=4, capacity=3)
        w.push(np.array([5.0, 7.0]), indices=np.array([0, 2]))
        assert w.counts.tolist() == [1, 0, 1, 0]
        med = w.median()
        assert med[0] == 5.0 and med[2] == 7.0
        assert np.isnan(med[1]) and np.isnan(med[3])

    def test_series_stats_keys_and_nan_for_empty(self):
        w = SlidingWindow(n_series=2, capacity=4)
        w.push(np.array([1.0]), indices=np.array([0]))
        stats = w.series_stats()
        assert set(stats) == {"mean", "p5", "p50", "p95", "iqr"}
        assert stats["p50"][0] == 1.0
        assert all(np.isnan(stats[k][1]) for k in stats)

    def test_pooled_stats_over_all_series(self):
        w = SlidingWindow(n_series=2, capacity=2)
        w.push(np.array([1.0, 3.0]))
        pooled = w.pooled_stats()
        assert pooled["mean"] == 2.0
        assert pooled["n"] == 2.0

    def test_pooled_stats_empty_is_nan(self):
        pooled = SlidingWindow(1, 1).pooled_stats()
        assert pooled["n"] == 0.0
        assert np.isnan(pooled["p50"])

    def test_length_mismatch_raises(self):
        w = SlidingWindow(n_series=2, capacity=2)
        with pytest.raises(AnalysisError, match="values"):
            w.push(np.array([1.0, 2.0, 3.0]), indices=np.array([0, 1]))


class TestRegistry:
    def test_counters_accumulate(self):
        reg = MetricsRegistry()
        reg.inc("runs", 1)
        reg.inc("runs", 2)
        assert reg.counter("runs") == 3
        assert reg.counter("never") == 0

    def test_gauge_label_mismatch_raises(self):
        reg = MetricsRegistry()
        with pytest.raises(AnalysisError, match="labels"):
            reg.set_gauge("g", np.array([1.0, 2.0]), labels=("a",))

    def test_histogram_bucket_semantics(self):
        reg = MetricsRegistry()
        reg.observe("x", np.array([0.5, 1.0, 1.5]), edges=(1.0, 2.0))
        hist = reg.histogram("x")
        # value <= bound lands in that bucket; 1.5 in the (1, 2] bucket
        assert hist["bucket_counts"] == (2, 1, 0)
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(3.0)

    def test_histogram_overflow_bucket(self):
        reg = MetricsRegistry()
        reg.observe("x", np.array([99.0]), edges=(1.0,))
        assert reg.histogram("x")["bucket_counts"] == (0, 1)

    def test_default_edges_resolved_by_family(self):
        reg = MetricsRegistry()
        reg.observe("fleet_frequency_mhz", np.array([1300.0]))
        bounds = reg.histogram("fleet_frequency_mhz")["bounds"]
        assert bounds == DEFAULT_HISTOGRAM_EDGES["frequency_mhz"]

    def test_unknown_family_requires_explicit_edges(self):
        with pytest.raises(AnalysisError, match="edges"):
            MetricsRegistry().observe("mystery_metric", np.array([1.0]))

    def test_payload_merge_sums_counters_and_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        for reg, n in ((a, 1), (b, 2)):
            reg.inc("runs", n)
            reg.observe("x", np.full(n, 0.5), edges=(1.0, 2.0))
        merged = MetricsRegistry()
        merged.merge_payload(a.to_payload())
        merged.merge_payload(b.to_payload())
        assert merged.counter("runs") == 3
        assert merged.histogram("x")["bucket_counts"] == (3, 0, 0)

    def test_merge_rejects_mismatched_bounds(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe("x", np.array([0.5]), edges=(1.0,))
        b.observe("x", np.array([0.5]), edges=(2.0,))
        merged = MetricsRegistry()
        merged.merge_payload(a.to_payload())
        with pytest.raises(AnalysisError, match="bounds"):
            merged.merge_payload(b.to_payload())

    def test_payload_excludes_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 1.0)
        counters, histograms, _ = reg.to_payload()
        assert counters == {} and histograms == {}


class TestActivation:
    def test_inactive_by_default(self):
        assert active_monitor() is None

    def test_activation_scoped_and_nestable(self):
        outer, inner = FleetMonitor(), FleetMonitor()
        with activate_monitor(outer):
            assert active_monitor() is outer
            with activate_monitor(inner):
                assert active_monitor() is inner
            assert active_monitor() is outer
        assert active_monitor() is None

    def test_monitor_config_validation(self):
        with pytest.raises(ConfigError):
            MonitorConfig(window_runs=0)


def _feed(monitor, *, day=0, run_index=0, perf, idx=None, freq=None,
          power=None, temp=None, pcap=None, tcap=None):
    perf = np.asarray(perf, dtype=float)
    n = perf.shape[0]
    monitor.observe_run(
        day=day, run_index=run_index,
        gpu_indices=np.arange(n) if idx is None else np.asarray(idx),
        performance_ms=perf,
        frequency_mhz=np.full(n, 1300.0) if freq is None else np.asarray(freq),
        power_w=np.full(n, 250.0) if power is None else np.asarray(power),
        temperature_c=np.full(n, 60.0) if temp is None else np.asarray(temp),
        power_capped=np.zeros(n, bool) if pcap is None else np.asarray(pcap),
        thermally_capped=np.zeros(n, bool) if tcap is None else np.asarray(tcap),
    )


class TestFleetMonitor:
    def test_iter_runs_reassembles_shards(self):
        monitor = FleetMonitor()
        _feed(monitor, day=0, run_index=0, perf=[100.0, 101.0], idx=[0, 1])
        _feed(monitor, day=0, run_index=0, perf=[102.0, 103.0], idx=[2, 3])
        _feed(monitor, day=0, run_index=1, perf=[100.0] * 4)
        runs = list(monitor.iter_runs())
        assert [r.n for r in runs] == [4, 4]
        assert runs[0].gpu_indices.tolist() == [0, 1, 2, 3]
        assert monitor.n_runs == 2

    def test_finalize_gauges_and_deviation(self):
        monitor = FleetMonitor()
        # GPU 3 is 20% slow; deviation gauge should show it
        _feed(monitor, perf=[100.0, 100.0, 100.0, 120.0])
        monitor.finalize(("g0", "g1", "g2", "g3"))
        dev = monitor.registry.gauge("gpu_perf_deviation")
        assert dev[3] == pytest.approx(1.2)
        assert monitor.registry.gauge_labels("gpu_perf_deviation") == (
            "g0", "g1", "g2", "g3"
        )

    def test_finalize_throttle_residency(self):
        monitor = FleetMonitor()
        _feed(monitor, run_index=0, perf=[100.0, 100.0],
              pcap=[True, False])
        _feed(monitor, run_index=1, perf=[100.0, 100.0],
              tcap=[True, False])
        monitor.finalize(("g0", "g1", "g2"))
        residency = monitor.registry.gauge("gpu_throttle_residency")
        assert residency[0] == 1.0
        assert residency[1] == 0.0
        assert np.isnan(residency[2])  # never observed

    def test_finalize_window_series_one_entry_per_run(self):
        monitor = FleetMonitor(MonitorConfig(window_runs=2))
        for run_index in range(3):
            _feed(monitor, run_index=run_index, perf=[100.0, 110.0])
        monitor.finalize(("g0", "g1"))
        series = monitor.window_series["perf_deviation"]
        assert len(series) == 3
        assert series[-1]["run_index"] == 2.0
        # window depth 2: each pooled window holds at most 2 runs x 2 GPUs
        assert series[-1]["n"] == 4.0

    def test_finalize_is_idempotent(self):
        monitor = FleetMonitor()
        _feed(monitor, perf=[100.0])
        monitor.finalize(("g0",))
        runs_total = monitor.registry.counter("monitor_runs_total")
        monitor.finalize(("g0",))
        assert monitor.registry.counter("monitor_runs_total") == runs_total

    def test_finalize_rejects_out_of_range_gpu(self):
        monitor = FleetMonitor()
        _feed(monitor, perf=[100.0, 100.0], idx=[0, 5])
        with pytest.raises(AnalysisError, match="labels"):
            monitor.finalize(("g0", "g1"))

    def test_payload_roundtrip_preserves_stream(self):
        shard = FleetMonitor()
        _feed(shard, perf=[100.0, 105.0])
        merged = FleetMonitor()
        merged.merge_payload(shard.to_payload())
        assert merged.n_runs == 1
        assert merged.registry.counter("monitor_gpu_samples_total") == 2


class TestPrometheusRendering:
    def test_counter_gauge_histogram_sections(self):
        reg = MetricsRegistry()
        reg.inc("runs_total", 3, help="runs observed")
        reg.set_gauge("gpu_power_w", np.array([250.0, np.nan]),
                      labels=("g0", "g1"))
        reg.observe("x_power_w", np.array([45.0]))
        text = render_prometheus(reg)
        assert "# HELP repro_runs_total runs observed" in text
        assert "# TYPE repro_runs_total counter" in text
        assert "repro_runs_total 3" in text
        assert 'repro_gpu_power_w{gpu="g0"} 250' in text
        assert "g1" not in text  # NaN gauge entries skipped
        assert 'repro_x_power_w_bucket{le="+Inf"} 1' in text
        assert "repro_x_power_w_count 1" in text

    def test_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("x", np.array([0.5, 1.5, 2.5]), edges=(1.0, 2.0))
        text = render_prometheus(reg)
        assert 'repro_x_bucket{le="1"} 1' in text
        assert 'repro_x_bucket{le="2"} 2' in text
        assert 'repro_x_bucket{le="+Inf"} 3' in text

    def test_monitor_accepted_directly(self):
        monitor = FleetMonitor()
        _feed(monitor, perf=[100.0])
        monitor.finalize(("g0",))
        assert "repro_monitor_runs_total 1" in render_prometheus(monitor)

    def test_empty_registry_renders_terminated_exposition(self):
        # Regression: the empty exposition used to come back as "" with no
        # final line feed, which the text format forbids.
        assert render_prometheus(MetricsRegistry()) == "\n"

    def test_exposition_always_ends_with_trailing_newline(self):
        counters_only = MetricsRegistry()
        counters_only.inc("a", 1)
        counters_only.inc("b", 2)
        with_histogram = MetricsRegistry()
        with_histogram.observe("x", np.array([0.5]), edges=(1.0,))
        for reg in (MetricsRegistry(), counters_only, with_histogram):
            text = render_prometheus(reg)
            assert text.endswith("\n")
            assert not text.endswith("\n\n") or text == "\n"

    def test_equal_registries_render_identically(self):
        def build():
            reg = MetricsRegistry()
            reg.inc("b", 2)
            reg.inc("a", 1)
            reg.observe("x", np.array([0.5]), edges=(1.0,))
            return reg

        assert render_prometheus(build()) == render_prometheus(build())


class TestZeroPerturbation:
    def test_monitored_campaign_matches_golden_fixture_bytes(self):
        monitor = FleetMonitor()
        text = golden_csv_text(GOLDEN_NAME, monitor=monitor)
        assert text == read_golden_text(GOLDEN_NAME)
        # and the monitor actually observed the campaign
        assert monitor.n_runs > 0
        assert monitor.registry.counter("solver_solves_total") > 0
        assert monitor.gpu_labels is not None  # executor finalized it
