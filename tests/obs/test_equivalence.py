"""The observability layer's two hard guarantees, enforced.

1. Zero perturbation: campaign outputs are byte-identical with tracing
   (and manifest emission) on or off — pinned against the committed golden
   fixture, not just a same-process comparison.
2. Deterministic merging: a traced parallel campaign (2 workers, process
   and thread backends) merges its per-shard spans and counters to exactly
   the serial totals and span structure.
"""

from __future__ import annotations

import pytest

from repro.obs import Manifest, Tracer
from repro.sim import CampaignConfig, run_campaign
from repro.workloads import sgemm

from ..golden import golden_csv_text, read_golden_text

#: The smallest golden fixture (full-scale CloudLab is 16 GPUs).
GOLDEN_NAME = "cloudlab-sgemm"


class TestZeroPerturbation:
    def test_traced_campaign_matches_golden_fixture_bytes(self):
        tracer = Tracer()
        manifest = Manifest()
        text = golden_csv_text(GOLDEN_NAME, tracer=tracer, manifest=manifest)
        assert text == read_golden_text(GOLDEN_NAME)
        # and the sinks actually observed the campaign
        assert tracer.counters["run.count"] > 0
        assert len(manifest.campaigns) == 1

    def test_trace_off_still_matches(self):
        assert golden_csv_text(GOLDEN_NAME) == read_golden_text(GOLDEN_NAME)


class TestDeterministicMerge:
    CONFIG = CampaignConfig(days=2, runs_per_day=2)

    def _run(self, small_longhorn, **kwargs) -> tuple[Tracer, object]:
        tracer = Tracer()
        dataset = run_campaign(
            small_longhorn, sgemm(), self.CONFIG, tracer=tracer, **kwargs
        )
        return tracer, dataset

    @pytest.mark.parametrize("backend", ["process", "thread"])
    def test_parallel_merge_equals_serial(self, small_longhorn, backend):
        from repro.sim.parallel import ParallelConfig

        from repro.telemetry.io import dataset_to_csv_text

        serial_tracer, serial_ds = self._run(small_longhorn)
        par_tracer, par_ds = self._run(
            small_longhorn,
            parallel=ParallelConfig(workers=2, backend=backend),
        )
        assert dataset_to_csv_text(par_ds) == dataset_to_csv_text(serial_ds)
        assert (par_tracer.deterministic_counters()
                == serial_tracer.deterministic_counters())
        assert par_tracer.span_index() == serial_tracer.span_index()

    def test_expected_counters_present(self, small_longhorn):
        tracer, dataset = self._run(small_longhorn)
        counters = tracer.counters
        n_shards = counters["campaign.shards"]
        assert counters["run.count"] == self.CONFIG.days * self.CONFIG.runs_per_day
        assert counters["campaign.rows"] == dataset.n_rows
        assert counters["run.gpus"] == dataset.n_rows
        assert counters["solver.solves"] >= counters["run.count"]
        assert counters["solver.columns_evaluated"] > 0
        assert counters["solver.fixed_point_iterations"] > 0
        assert n_shards == self.CONFIG.days * self.CONFIG.runs_per_day
        # the per-process fleet cache is consulted once per run (hit vs miss
        # depends on whether earlier tests warmed this session-scoped
        # cluster, so only the total is asserted)
        slice_lookups = sum(v for k, v in counters.items()
                            if k.startswith("cache.fleet_slice."))
        assert slice_lookups == counters["run.count"]

    def test_span_hierarchy_structure(self, small_longhorn):
        tracer, _ = self._run(small_longhorn)
        index = tracer.span_index()
        # campaign-level bookkeeping spans on the root track
        assert index[("campaign", "campaign")] == 1
        assert index[("campaign", "plan")] == 1
        assert index[("campaign", "merge")] == 1
        # one day span per campaign day, on its own track
        for day in range(self.CONFIG.days):
            assert index[(f"day-{day:03d}", "day")] == 1
        # every shard track carries shard, run, and solve spans
        shard_tracks = {t for (t, name) in index if name == "shard"}
        assert len(shard_tracks) == self.CONFIG.days * self.CONFIG.runs_per_day
        for track in shard_tracks:
            assert index[(track, "run")] == 1
            assert index[(track, "solve")] >= 1

    def test_shard_spans_contain_run_spans(self, small_longhorn):
        tracer, _ = self._run(small_longhorn)
        by_track: dict[str, dict[str, object]] = {}
        for record in tracer.spans:
            by_track.setdefault(record.track, {})[record.name] = record
        for track, spans in by_track.items():
            if "shard" not in spans:
                continue
            shard, run = spans["shard"], spans["run"]
            assert shard.start_s <= run.start_s
            assert run.end_s <= shard.end_s + 1e-6
