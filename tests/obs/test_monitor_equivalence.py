"""Worker-layout invariance of the monitoring pipeline.

The monitor's guarantees mirror the tracer's (tests/obs/test_equivalence.py)
but cover the derived statistics too: the merged run stream, every registry
metric (compared via the sorted Prometheus rendering, which is exact), and
the health tracker's full ordered event stream must be identical whether
the campaign ran serially or sharded across workers.
"""

from __future__ import annotations

import pytest

from repro.obs.health import analyze_fleet_health
from repro.obs.metrics import FleetMonitor, render_prometheus
from repro.sim import CampaignConfig, run_campaign
from repro.sim.parallel import ParallelConfig
from repro.workloads import sgemm

CONFIG = CampaignConfig(days=2, runs_per_day=2)


def _monitored(cluster, parallel=None):
    monitor = FleetMonitor()
    run_campaign(cluster, sgemm(), CONFIG, parallel=parallel, monitor=monitor)
    return monitor


@pytest.fixture(scope="module")
def serial_monitor(request):
    cluster = request.getfixturevalue("small_longhorn")
    return _monitored(cluster)


@pytest.mark.parametrize("backend", ["process", "thread"])
class TestWorkerInvariance:
    def test_registry_totals_identical(self, small_longhorn, serial_monitor,
                                       backend):
        parallel = _monitored(
            small_longhorn, ParallelConfig(workers=2, backend=backend)
        )
        assert (render_prometheus(parallel)
                == render_prometheus(serial_monitor))

    def test_run_stream_identical(self, small_longhorn, serial_monitor,
                                  backend):
        parallel = _monitored(
            small_longhorn, ParallelConfig(workers=2, backend=backend)
        )
        serial_runs = list(serial_monitor.iter_runs())
        parallel_runs = list(parallel.iter_runs())
        assert len(parallel_runs) == len(serial_runs)
        for a, b in zip(serial_runs, parallel_runs):
            assert (a.day, a.run_index) == (b.day, b.run_index)
            assert a.gpu_indices.tolist() == b.gpu_indices.tolist()
            assert a.performance_ms.tolist() == b.performance_ms.tolist()

    def test_health_event_stream_identical(self, small_longhorn,
                                           serial_monitor, backend):
        parallel = _monitored(
            small_longhorn, ParallelConfig(workers=2, backend=backend)
        )
        topology = small_longhorn.topology
        serial_tracker, serial_report = analyze_fleet_health(
            serial_monitor, topology
        )
        par_tracker, par_report = analyze_fleet_health(parallel, topology)
        assert par_tracker.events == serial_tracker.events
        assert par_tracker.grades() == serial_tracker.grades()
        assert par_report.to_dict() == serial_report.to_dict()


class TestMonitorAndTracerCompose:
    def test_both_attached_still_bit_identical(self, small_longhorn):
        from repro.obs import Tracer
        from repro.telemetry.io import dataset_to_csv_text

        plain = run_campaign(small_longhorn, sgemm(), CONFIG)
        monitor, tracer = FleetMonitor(), Tracer()
        both = run_campaign(small_longhorn, sgemm(), CONFIG,
                            tracer=tracer, monitor=monitor)
        assert dataset_to_csv_text(both) == dataset_to_csv_text(plain)
        assert monitor.n_runs == CONFIG.days * CONFIG.runs_per_day
        assert tracer.counters["run.count"] == monitor.n_runs
