"""Edge-case coverage for the trace sinks (repro.obs.export)."""

import json

from repro.obs import Tracer, write_chrome_trace, write_events_jsonl


class TestEmptyTracer:
    def test_chrome_trace_of_empty_tracer(self, tmp_path):
        path = write_chrome_trace(Tracer(), tmp_path / "empty.json")
        doc = json.loads(path.read_text())
        assert doc["traceEvents"] == []
        assert doc["displayTimeUnit"] == "ms"

    def test_events_jsonl_of_empty_tracer(self, tmp_path):
        path = write_events_jsonl(Tracer(), tmp_path / "empty.jsonl")
        assert path.read_text() == ""


class TestCountersOnlyTracer:
    def _tracer(self):
        tracer = Tracer()
        tracer.add("runs", 3)
        tracer.add("solves", 7)
        return tracer

    def test_chrome_trace_counters_without_spans(self, tmp_path):
        path = write_chrome_trace(self._tracer(), tmp_path / "c.json")
        events = json.loads(path.read_text())["traceEvents"]
        # no spans -> no thread metadata, just the counter instant at t=0
        assert len(events) == 1
        (event,) = events
        assert event["ph"] == "i"
        assert event["name"] == "counters"
        assert event["ts"] == 0.0
        assert event["args"] == {"runs": 3, "solves": 7}

    def test_events_jsonl_counters_sorted(self, tmp_path):
        path = write_events_jsonl(self._tracer(), tmp_path / "c.jsonl")
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [x["event"] for x in lines] == ["counter", "counter"]
        assert [x["name"] for x in lines] == ["runs", "solves"]
        assert lines[0]["value"] == 3
