"""Tests for GPUFleet composition."""

import numpy as np
import pytest

from repro.gpu.defects import DefectConfig, DefectType, assign_defects
from repro.gpu.device import GPUFleet
from repro.gpu.silicon import SiliconConfig, sample_population
from repro.gpu.specs import V100


def make_fleet(n=16, seed=0, defect_config=None):
    rng = np.random.default_rng(seed)
    silicon = sample_population(n, SiliconConfig(), rng)
    defects = assign_defects(
        n, defect_config or DefectConfig.none(), rng
    )
    return GPUFleet(
        spec=V100,
        silicon=silicon,
        defects=defects,
        r_theta_base_c_per_w=np.full(n, 0.1),
        coolant_c=np.full(n, 25.0),
    )


class TestConstruction:
    def test_basic_properties(self):
        fleet = make_fleet(12)
        assert fleet.n == 12
        assert fleet.controller.n == 12

    def test_mismatched_defects_rejected(self):
        rng = np.random.default_rng(0)
        silicon = sample_population(4, SiliconConfig(), rng)
        defects = assign_defects(5, DefectConfig.none(), rng)
        with pytest.raises(ValueError):
            GPUFleet(V100, silicon, defects, np.full(4, 0.1), np.full(4, 25.0))

    def test_mismatched_thermal_arrays_rejected(self):
        rng = np.random.default_rng(0)
        silicon = sample_population(4, SiliconConfig(), rng)
        defects = assign_defects(4, DefectConfig.none(), rng)
        with pytest.raises(ValueError):
            GPUFleet(V100, silicon, defects, np.full(3, 0.1), np.full(4, 25.0))


class TestDerivedQuantities:
    def test_effective_r_theta_composition(self):
        fleet = make_fleet()
        expected = (
            fleet.r_theta_base
            * fleet.silicon.thermal_resistance_scale
            * fleet.defects.extra_thermal_resistance
        )
        np.testing.assert_allclose(fleet.effective_r_theta(), expected)

    def test_power_cap_default_is_tdp(self):
        fleet = make_fleet()
        np.testing.assert_allclose(fleet.power_cap_w(), V100.tdp_w)

    def test_power_cap_with_admin_limit(self):
        fleet = make_fleet()
        np.testing.assert_allclose(fleet.power_cap_w(150.0), 150.0)

    def test_power_cap_with_defect(self):
        fleet = make_fleet(
            n=2000,
            defect_config=DefectConfig(
                power_delivery_rate=0.2, sick_slow_rate=0.0, hot_runner_rate=0.0
            ),
        )
        caps = fleet.power_cap_w()
        defective = fleet.defects.kind == int(DefectType.POWER_DELIVERY)
        assert defective.any()
        assert np.all(caps[defective] < V100.tdp_w)
        np.testing.assert_allclose(caps[~defective], V100.tdp_w)

    def test_frequency_cap(self):
        fleet = make_fleet(
            n=2000,
            defect_config=DefectConfig(
                power_delivery_rate=0.0, sick_slow_rate=0.2, hot_runner_rate=0.0
            ),
        )
        f_caps = fleet.frequency_cap_mhz()
        sick = fleet.defects.kind == int(DefectType.SICK_SLOW)
        assert sick.any()
        assert np.all(f_caps[sick] < V100.f_max_mhz)
        np.testing.assert_allclose(f_caps[~sick], V100.f_max_mhz)

    def test_memory_bandwidth_below_peak(self):
        fleet = make_fleet()
        bw = fleet.memory_bandwidth_gbs()
        assert np.all(bw < V100.mem_bandwidth_gbs)
        assert np.all(bw > 0.5 * V100.mem_bandwidth_gbs)


class TestViews:
    def test_with_coolant_keeps_silicon(self):
        fleet = make_fleet()
        warmer = fleet.with_coolant(fleet.coolant_c + 5.0)
        assert warmer.silicon is fleet.silicon
        np.testing.assert_allclose(
            warmer.thermal_model.coolant_c, fleet.coolant_c + 5.0
        )

    def test_take_subfleet(self):
        fleet = make_fleet(10)
        sub = fleet.take(np.array([1, 4, 7]))
        assert sub.n == 3
        assert sub.silicon.voltage_offset[2] == fleet.silicon.voltage_offset[7]

    def test_warmer_coolant_raises_settled_temperature(self):
        fleet = make_fleet(8)
        op_cool = fleet.controller.solve_steady(1.0, 0.35)
        warm = fleet.with_coolant(fleet.coolant_c + 10.0)
        op_warm = warm.controller.solve_steady(1.0, 0.35)
        assert np.median(op_warm.temperature_c) > np.median(op_cool.temperature_c)
