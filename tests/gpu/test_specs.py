"""Tests for GPU SKU specifications."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.specs import (
    MI60,
    RTX5000,
    V100,
    GPUSpec,
    get_spec,
    list_specs,
    register_spec,
)


class TestRegistry:
    def test_paper_skus_registered(self):
        assert {"V100", "RTX5000", "MI60"} <= set(list_specs())

    def test_get_spec(self):
        assert get_spec("V100") is V100

    def test_unknown_spec_raises(self):
        with pytest.raises(ConfigError, match="unknown GPU spec"):
            get_spec("H100")

    def test_register_duplicate_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):
            register_spec(V100)


class TestPaperValues:
    """Hardware constants from Sections II-III and Table I."""

    def test_tdp(self):
        assert V100.tdp_w == 300.0
        assert MI60.tdp_w == 300.0
        assert RTX5000.tdp_w == 230.0

    def test_boost_clocks(self):
        assert V100.f_max_mhz == 1530.0
        assert MI60.f_max_mhz == 1800.0
        assert RTX5000.f_max_mhz > V100.f_max_mhz  # Section IV-F

    def test_thermal_thresholds(self):
        assert (V100.t_shutdown_c, V100.t_slowdown_c) == (90.0, 87.0)
        assert (MI60.t_shutdown_c, MI60.t_slowdown_c) == (105.0, 100.0)
        assert (RTX5000.t_shutdown_c, RTX5000.t_slowdown_c) == (96.0, 93.0)

    def test_amd_ladder_is_coarse(self):
        """Section IV-D: MI60 exposes far fewer DVFS levels."""
        assert MI60.n_pstates < 12 < V100.n_pstates

    def test_nvidia_step_granularity(self):
        steps = np.diff(V100.pstate_array())
        assert np.allclose(steps, 7.5)

    def test_compute_kernel_exceeds_tdp_at_boost(self):
        """Design property: full-activity compute must force throttling.

        Board power of a nominal die at boost clock and its max operating
        junction temperature (dynamic + idle + leakage + a modest memory
        stream) must exceed the TDP, otherwise SGEMM would never enter the
        power-capped regime the paper measures.
        """
        for spec in (V100, RTX5000, MI60):
            leakage = spec.leakage_nominal_w * np.exp(
                spec.leakage_temp_coeff * (spec.t_max_operating_c - 25.0)
            )
            board = (
                spec.peak_dynamic_power_w()
                + spec.idle_power_w
                + leakage
                + 0.35 * spec.mem_power_max_w
            )
            assert board > spec.tdp_w


class TestGeometry:
    def test_voltage_monotone_in_frequency(self):
        f = np.linspace(V100.f_min_mhz, V100.f_max_mhz, 50)
        v = V100.voltage_at(f)
        assert np.all(np.diff(v) > 0)

    def test_voltage_endpoints(self):
        assert V100.voltage_at(V100.f_min_mhz) == pytest.approx(V100.v_min)
        assert V100.voltage_at(V100.f_max_mhz) == pytest.approx(V100.v_max)

    def test_voltage_clamped_outside_range(self):
        assert V100.voltage_at(50.0) == pytest.approx(V100.v_min)
        assert V100.voltage_at(5000.0) == pytest.approx(V100.v_max)

    def test_nearest_pstate_index(self):
        assert V100.nearest_pstate_index(V100.f_max_mhz) == V100.n_pstates - 1
        assert V100.nearest_pstate_index(0.0) == 0
        idx = V100.nearest_pstate_index(1339.0)
        assert V100.pstates_mhz[idx] <= 1339.0

    def test_nearest_pstate_vectorized(self):
        idx = V100.nearest_pstate_index(np.array([135.0, 1530.0]))
        np.testing.assert_array_equal(idx, [0, V100.n_pstates - 1])


class TestValidation:
    def _kwargs(self, **over):
        base = dict(
            name="X", vendor="NVIDIA", sm_count=10, tdp_w=100.0,
            pstates_mhz=(100.0, 200.0), v_min=0.7, v_max=1.0, vf_gamma=1.5,
            c_eff_w_per_v2mhz=0.1, idle_power_w=10.0, mem_bandwidth_gbs=500.0,
            mem_power_max_w=30.0, leakage_nominal_w=10.0,
            leakage_temp_coeff=0.02, compute_throughput=1e6,
            t_shutdown_c=90.0, t_slowdown_c=85.0, t_max_operating_c=80.0,
        )
        base.update(over)
        return base

    def test_valid_spec_constructs(self):
        GPUSpec(**self._kwargs())

    def test_descending_pstates_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(**self._kwargs(pstates_mhz=(200.0, 100.0)))

    def test_single_pstate_accepted(self):
        # Degenerate one-rung ladders are legal (the fleet solver's
        # equivalence suite exercises them); the V-f curve collapses to
        # the minimum voltage.
        spec = GPUSpec(**self._kwargs(pstates_mhz=(100.0,)))
        assert spec.n_pstates == 1
        assert float(spec.voltage_at(100.0)) == spec.v_min

    def test_empty_pstates_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(**self._kwargs(pstates_mhz=()))

    def test_inverted_voltages_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(**self._kwargs(v_min=1.2, v_max=1.0))

    def test_inverted_thermal_thresholds_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(**self._kwargs(t_shutdown_c=80.0, t_slowdown_c=85.0))

    def test_nonpositive_tdp_rejected(self):
        with pytest.raises(ConfigError):
            GPUSpec(**self._kwargs(tdp_w=0.0))
