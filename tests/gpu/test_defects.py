"""Tests for defect injection."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.defects import (
    DefectAssignment,
    DefectConfig,
    DefectType,
    assign_defects,
)


def _assign(n=1000, seed=0, groups=None, **over):
    cfg = DefectConfig(**over)
    return assign_defects(n, cfg, np.random.default_rng(seed),
                          location_group=groups)


class TestAssignment:
    def test_none_config_is_clean(self):
        a = _assign(power_delivery_rate=0.0, sick_slow_rate=0.0,
                    hot_runner_rate=0.0)
        assert a.defective_indices().shape[0] == 0
        np.testing.assert_allclose(a.power_cap_frac, 1.0)
        np.testing.assert_allclose(a.frequency_cap_frac, 1.0)
        np.testing.assert_allclose(a.extra_thermal_resistance, 1.0)

    def test_none_classmethod(self):
        assert DefectConfig.none().total_rate == 0.0

    def test_rates_approximately_respected(self):
        a = _assign(n=60_000, power_delivery_rate=0.01, sick_slow_rate=0.01,
                    hot_runner_rate=0.01)
        frac = a.defective_indices().shape[0] / 60_000
        assert 0.02 < frac < 0.04

    def test_severities_within_configured_ranges(self):
        a = _assign(n=30_000, power_delivery_rate=0.02, sick_slow_rate=0.02,
                    hot_runner_rate=0.02)
        pd = a.kind == int(DefectType.POWER_DELIVERY)
        ss = a.kind == int(DefectType.SICK_SLOW)
        hr = a.kind == int(DefectType.HOT_RUNNER)
        assert np.all((a.power_cap_frac[pd] >= 0.85)
                      & (a.power_cap_frac[pd] <= 0.97))
        assert np.all((a.frequency_cap_frac[ss] >= 0.55)
                      & (a.frequency_cap_frac[ss] <= 0.85))
        assert np.all((a.extra_thermal_resistance[hr] >= 1.5)
                      & (a.extra_thermal_resistance[hr] <= 2.2))

    def test_healthy_gpus_have_identity_multipliers(self):
        a = _assign(n=5000, power_delivery_rate=0.05)
        healthy = a.kind == int(DefectType.NONE)
        np.testing.assert_allclose(a.power_cap_frac[healthy], 1.0)
        np.testing.assert_allclose(a.frequency_cap_frac[healthy], 1.0)
        np.testing.assert_allclose(a.extra_thermal_resistance[healthy], 1.0)

    def test_at_most_one_defect_per_gpu(self):
        a = _assign(n=20_000, power_delivery_rate=0.1, sick_slow_rate=0.1,
                    hot_runner_rate=0.1)
        pd = a.power_cap_frac < 1.0
        ss = a.frequency_cap_frac < 1.0
        hr = a.extra_thermal_resistance > 1.0
        assert np.all(pd.astype(int) + ss.astype(int) + hr.astype(int) <= 1)

    def test_deterministic(self):
        a = _assign(seed=3)
        b = _assign(seed=3)
        np.testing.assert_array_equal(a.kind, b.kind)

    def test_count_helper(self):
        a = _assign(n=10_000, power_delivery_rate=0.05, sick_slow_rate=0.0,
                    hot_runner_rate=0.0)
        assert a.count(DefectType.POWER_DELIVERY) == a.defective_indices().shape[0]


class TestSpatialConcentration:
    def test_defects_cluster_by_group(self):
        """With a concentrated hazard, defective GPUs share few groups."""
        n = 40_000
        groups = np.arange(n) // 100  # 400 groups
        concentrated = _assign(
            n=n, groups=groups, power_delivery_rate=0.01,
            spatial_concentration_shape=0.05,
        )
        uniform = _assign(
            n=n, groups=None, power_delivery_rate=0.01, seed=1,
        )
        g_conc = np.unique(groups[concentrated.defective_indices()]).shape[0]
        g_unif = np.unique(groups[uniform.defective_indices()]).shape[0]
        assert g_conc < g_unif * 0.6

    def test_group_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="location_group"):
            _assign(n=10, groups=np.zeros(9, dtype=int))


class TestTakeAndValidation:
    def test_take(self):
        a = _assign(n=100, power_delivery_rate=0.3)
        sub = a.take(np.array([0, 5, 9]))
        assert sub.n == 3
        assert sub.kind[1] == a.kind[5]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ConfigError):
            DefectConfig(power_delivery_rate=0.9)

    def test_invalid_severity_range_rejected(self):
        with pytest.raises(ConfigError):
            DefectConfig(sick_slow_frequency_cap=(0.9, 0.5))

    def test_nonpositive_shape_rejected(self):
        with pytest.raises(ConfigError):
            DefectConfig(spatial_concentration_shape=0.0)

    def test_zero_fleet_rejected(self):
        with pytest.raises(ValueError):
            _assign(n=0)


class TestConfigBounds:
    """Eager DefectConfig validation: out-of-range severities fail loudly."""

    @pytest.mark.parametrize("kwargs", [
        dict(power_delivery_rate=-0.01),
        dict(sick_slow_rate=-1.0),
        dict(hot_runner_rate=0.51),
    ])
    def test_negative_or_excess_rates_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DefectConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(power_delivery_cap_frac=(-0.5, 0.9)),
        dict(power_delivery_cap_frac=(0.0, 0.9)),
        dict(sick_slow_frequency_cap=(0.5,)),
        dict(hot_runner_resistance=(1.5, 1.8, 2.0)),
    ])
    def test_malformed_bounds_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            DefectConfig(**kwargs)

    @pytest.mark.parametrize("kwargs", [
        dict(power_delivery_cap_frac=(0.9, 1.2)),
        dict(sick_slow_frequency_cap=(0.8, 1.05)),
    ])
    def test_cap_fractions_above_nominal_rejected(self, kwargs):
        # Above 1 a "cap" would silently overclock the defective GPUs.
        with pytest.raises(ConfigError, match="fraction of nominal"):
            DefectConfig(**kwargs)

    def test_cooling_improving_resistance_rejected(self):
        with pytest.raises(ConfigError, match="must be >= 1"):
            DefectConfig(hot_runner_resistance=(0.8, 1.2))

    def test_boundary_values_accepted(self):
        DefectConfig(power_delivery_cap_frac=(1.0, 1.0),
                     hot_runner_resistance=(1.0, 1.0))


class TestAssignmentValidation:
    """DefectAssignment rejects arrays the physics cannot consume."""

    def _arrays(self, n=4, **over):
        arrays = {
            "kind": np.zeros(n, dtype=np.int8),
            "power_cap_frac": np.ones(n),
            "frequency_cap_frac": np.ones(n),
            "efficiency": np.ones(n),
            "extra_thermal_resistance": np.ones(n),
        }
        arrays.update(over)
        return arrays

    def test_valid_arrays_accepted(self):
        assert DefectAssignment(**self._arrays()).n == 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ConfigError, match="power_cap_frac"):
            DefectAssignment(**self._arrays(power_cap_frac=np.ones(3)))

    def test_unknown_kind_values_rejected(self):
        with pytest.raises(ConfigError, match="DefectType"):
            DefectAssignment(
                **self._arrays(kind=np.array([0, 0, 9, 0], dtype=np.int8))
            )

    @pytest.mark.parametrize("column,bad", [
        ("power_cap_frac", -0.5),
        ("power_cap_frac", 0.0),
        ("power_cap_frac", 1.5),
        ("frequency_cap_frac", -1.0),
        ("frequency_cap_frac", np.nan),
        ("efficiency", np.inf),
    ])
    def test_out_of_range_multipliers_rejected(self, column, bad):
        arrays = self._arrays()
        arrays[column] = arrays[column].copy()
        arrays[column][2] = bad
        with pytest.raises(ConfigError, match=column):
            DefectAssignment(**arrays)

    @pytest.mark.parametrize("bad", [0.5, -2.0, np.nan])
    def test_resistance_below_one_rejected(self, bad):
        arrays = self._arrays()
        arrays["extra_thermal_resistance"][1] = bad
        with pytest.raises(ConfigError, match="extra_thermal_resistance"):
            DefectAssignment(**arrays)

    def test_two_dimensional_columns_rejected(self):
        with pytest.raises(ConfigError):
            DefectAssignment(**self._arrays(efficiency=np.ones((4, 1))))
