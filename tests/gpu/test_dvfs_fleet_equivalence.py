"""Differential equivalence harness for the fleet-wide vectorized solver.

``solver="fleet"`` batches every GPU's ladder search into fleet-wide
float32 array ops (estimate-guided pair probe, masked-convergence fixed
point, galloping bisection).  Its contract is the same as the ladder's:
*bit-identical* outputs to the dense grid scan, never allclose.  This
suite drives the three solvers differentially across every registered
preset, defect-injected fleets, power-cap and boost-ceiling edge cases,
and the degenerate fleets (one GPU, one p-state, converged-at-entry)
where a batched implementation could plausibly diverge from the
sequential one.

Masked-convergence behaviour gets its own section: a fleet whose members
freeze at different fixed-point iteration counts must produce exactly
the bits of solving each GPU alone, while the iteration counters prove
the early-dropout machinery actually engaged.
"""

import numpy as np
import pytest

from repro.gpu.dvfs import (
    SOLVER_FLEET,
    SOLVER_GRID,
    SOLVER_LADDER,
    DvfsController,
    DvfsPolicy,
)
from repro.gpu.power import PowerModel
from repro.gpu.silicon import SiliconConfig, sample_population
from repro.gpu.specs import MI60, V100, GPUSpec, get_spec, list_specs
from repro.gpu.thermal import ThermalModel

ALL_SOLVERS = (SOLVER_LADDER, SOLVER_FLEET, SOLVER_GRID)


def build_controller(n=48, spec=V100, r=0.1, coolant=25.0, seed=0,
                     policy=None, solver=None, silicon=None):
    """Controller over a sampled population; ``r`` may be per-GPU."""
    if silicon is None:
        silicon = sample_population(
            n, SiliconConfig(), np.random.default_rng(seed)
        )
    power = PowerModel(spec, silicon)
    r_arr = np.broadcast_to(np.asarray(r, dtype=float), (n,)).copy()
    thermal = ThermalModel(spec, r_arr, np.full(n, coolant))
    return DvfsController(spec, power, thermal, policy, solver=solver)


def assert_ops_identical(a, b, context=""):
    """Every SteadyOperatingPoint array must match bit for bit."""
    for field in ("pstate_index", "f_effective_mhz", "f_reported_mhz",
                  "power_w", "temperature_c", "power_capped",
                  "thermally_capped"):
        lhs, rhs = getattr(a, field), getattr(b, field)
        assert lhs.dtype == rhs.dtype, f"{field} {context}"
        assert np.array_equal(lhs, rhs), f"{field} {context}"


def solve_with_each_solver(ctl, *args, rng_seed=None, **kwargs):
    """One op per solver, feeding identically-seeded RNGs when dithering."""
    ops = {}
    for solver in ALL_SOLVERS:
        rng = (np.random.default_rng(rng_seed)
               if rng_seed is not None else None)
        ops[solver] = ctl.solve_steady(*args, rng=rng, solver=solver,
                                       **kwargs)
    return ops


def assert_all_solvers_identical(ctl, *args, rng_seed=None, **kwargs):
    ops = solve_with_each_solver(ctl, *args, rng_seed=rng_seed, **kwargs)
    assert_ops_identical(ops[SOLVER_GRID], ops[SOLVER_FLEET], "fleet-vs-grid")
    assert_ops_identical(ops[SOLVER_LADDER], ops[SOLVER_FLEET],
                         "fleet-vs-ladder")
    return ops


class TestAllPresets:
    """Fleet == ladder == grid on every registered SKU."""

    @pytest.mark.parametrize("name", list_specs())
    def test_randomized_operating_points(self, name):
        spec = get_spec(name)
        ctl = build_controller(spec=spec, n=64, seed=3)
        rng_in = np.random.default_rng(17)
        for trial in range(4):
            act = rng_in.uniform(0.1, 1.0, ctl.n)
            dram = rng_in.uniform(0.0, 0.9, ctl.n)
            eff = rng_in.uniform(0.6, 1.05, ctl.n)
            cap = rng_in.uniform(0.5, 1.2, ctl.n) * spec.tdp_w
            f_cap = rng_in.uniform(0.5, 1.0, ctl.n) * spec.f_max_mhz
            assert_all_solvers_identical(
                ctl, act, dram, eff, power_cap_w=cap, f_cap_mhz=f_cap,
                rng_seed=trial if ctl.policy.dither else None)

    @pytest.mark.parametrize("name", list_specs())
    def test_scalar_inputs(self, name):
        ctl = build_controller(spec=get_spec(name), n=12)
        assert_all_solvers_identical(
            ctl, 1.0, 0.35, rng_seed=0 if ctl.policy.dither else None)

    @pytest.mark.parametrize("n", [1, 2, 5, 64])
    def test_fleet_sizes(self, n):
        ctl = build_controller(n=n, seed=n)
        assert_all_solvers_identical(ctl, 0.9, 0.4)


class TestDefectInjectedFleets:
    """Populations carrying the paper's defect classes (Section VI)."""

    def test_severe_defect_pileup(self):
        # POWER_DELIVERY + SICK_SLOW: tiny caps, tiny ceilings, degraded
        # efficiency, hot coolant — everything at once.
        ctl = build_controller(n=32, r=0.22, coolant=45.0, seed=9)
        rng = np.random.default_rng(11)
        cap = np.where(rng.random(ctl.n) < 0.3,
                       rng.uniform(0.3, 0.6, ctl.n) * V100.tdp_w,
                       V100.tdp_w)
        f_cap = np.where(rng.random(ctl.n) < 0.3,
                         rng.uniform(0.4, 0.8, ctl.n) * V100.f_max_mhz,
                         V100.f_max_mhz)
        eff = rng.uniform(0.5, 1.0, ctl.n)
        assert_all_solvers_identical(ctl, 1.0, 0.5, eff,
                                     power_cap_w=cap, f_cap_mhz=f_cap)

    def test_efficiency_extremes(self):
        # Near-dead dies next to golden samples in one batch: the widest
        # spread of per-GPU boundary levels a real fleet can show.
        ctl = build_controller(n=16, seed=21)
        eff = np.concatenate([
            np.full(4, 0.05), np.full(4, 0.5),
            np.full(4, 1.0), np.full(4, 1.3),
        ])
        assert_all_solvers_identical(ctl, 1.0, 0.35, eff)

    def test_heterogeneous_thermal_environment(self):
        # Per-GPU thermal resistance (air vs water rows) and a defect mix.
        n = 24
        rng = np.random.default_rng(5)
        r = rng.uniform(0.05, 0.30, n)
        ctl = build_controller(n=n, r=r, coolant=38.0, seed=5)
        eff = rng.uniform(0.55, 1.1, n)
        assert_all_solvers_identical(ctl, 0.95, 0.45, eff)


class TestPowerCapEdgeCases:
    def test_cap_below_ladder_bottom(self):
        # Nothing feasible: everyone pins to index 0 in all three solvers.
        ctl = build_controller(n=16)
        ops = assert_all_solvers_identical(ctl, 1.0, 0.35, power_cap_w=1.0)
        assert np.all(ops[SOLVER_FLEET].pstate_index == 0)

    def test_cap_above_everything(self):
        ctl = build_controller(n=16)
        ops = assert_all_solvers_identical(ctl, 0.05, 0.05,
                                           power_cap_w=1e6)
        assert np.all(
            ops[SOLVER_FLEET].pstate_index == V100.n_pstates - 1)

    def test_cap_exactly_ties_settled_power(self):
        # Feasibility is `power <= cap`; a cap that *equals* the settled
        # power at the boundary level bitwise is the sharpest tie
        # possible.  The settled float32 widens exactly to float64, so
        # feeding the grid answer back as the cap constructs it.
        ctl = build_controller(n=24, seed=13)
        base = ctl.solve_steady(1.0, 0.35, solver=SOLVER_GRID)
        ops = assert_all_solvers_identical(ctl, 1.0, 0.35,
                                           power_cap_w=base.power_w)
        assert np.array_equal(ops[SOLVER_FLEET].pstate_index,
                              base.pstate_index)

    def test_cap_mix_spanning_the_ladder(self):
        # One batch mixing infeasible, mid-ladder, and unconstrained caps
        # exercises the -1/hi_top index extremes inside a single solve.
        ctl = build_controller(n=9, seed=2)
        cap = np.array([1.0, 1.0, 120.0, 180.0, 240.0,
                        300.0, 1e4, 1e6, np.inf])
        assert_all_solvers_identical(ctl, 1.0, 0.4, power_cap_w=cap)

    def test_boost_ceiling_extremes(self):
        # f_cap below the bottom rung forces hi_top < 2 (the pair probe
        # is skipped fleet-wide); exactly-on-rung and +inf ride along.
        ctl = build_controller(n=6)
        steps = ctl.pstates()
        f_cap = np.array([
            steps[0] * 0.5,             # below the bottom rung
            steps[0],                   # exactly the bottom rung
            (steps[3] + steps[4]) / 2,  # between rungs
            steps[-1] * 0.5,
            steps[-1],                  # exactly the top
            np.inf,                     # unconstrained
        ])
        assert_all_solvers_identical(ctl, 0.4, 0.2, f_cap_mhz=f_cap)

    def test_all_ceilings_below_bottom(self):
        # hi_top == 1 everywhere: the fleet solver's non-pair fallback
        # path must still match the scan bit for bit.
        ctl = build_controller(n=8)
        f_cap = np.full(8, ctl.pstates()[0] * 0.25)
        assert_all_solvers_identical(ctl, 0.8, 0.3, f_cap_mhz=f_cap)


def _single_pstate_spec():
    return GPUSpec(
        name="SOLO", vendor="NVIDIA", sm_count=10, tdp_w=100.0,
        pstates_mhz=(900.0,), v_min=0.75, v_max=1.0, vf_gamma=1.5,
        c_eff_w_per_v2mhz=0.10, idle_power_w=12.0,
        mem_bandwidth_gbs=500.0, mem_power_max_w=30.0,
        leakage_nominal_w=10.0, leakage_temp_coeff=0.018,
        compute_throughput=1e6, t_shutdown_c=92.0, t_slowdown_c=87.0,
        t_max_operating_c=83.0,
    )


class TestDegenerateFleets:
    def test_single_gpu(self):
        ctl = build_controller(n=1, seed=4)
        assert_all_solvers_identical(ctl, 1.0, 0.35)
        assert_all_solvers_identical(ctl, 1.0, 0.35, power_cap_w=50.0)

    def test_single_pstate_ladder(self):
        # A one-rung ladder collapses the search entirely; every solver
        # must agree on the only level there is, capped or not.
        spec = _single_pstate_spec()
        ctl = build_controller(n=8, spec=spec, seed=6)
        assert_all_solvers_identical(ctl, 1.0, 0.4)
        assert_all_solvers_identical(ctl, 1.0, 0.4, power_cap_w=1.0)
        assert_all_solvers_identical(ctl, 1.0, 0.4,
                                     f_cap_mhz=spec.f_max_mhz / 2)

    def test_single_gpu_single_pstate(self):
        ctl = build_controller(n=1, spec=_single_pstate_spec(), seed=6)
        assert_all_solvers_identical(ctl, 0.7, 0.2)

    def test_converged_at_entry(self):
        # Near-zero thermal resistance pins the junction at coolant
        # temperature: the fixed point is bit-stable at iteration zero,
        # so the masked loop drops every cell immediately.
        ctl = build_controller(n=16, r=1e-12, seed=8)
        assert_all_solvers_identical(ctl, 1.0, 0.35)
        stats = ctl.stats
        assert stats.fixed_point_iterations < \
            7 * stats.columns_evaluated


class TestDither:
    def test_dither_bits_and_rng_stream(self):
        # AMD dithering draws duty cycles from the caller's RNG *after*
        # the search; all three solvers must consume identical draws and
        # leave the stream in the same state.
        ctl = build_controller(spec=MI60, n=40, r=0.16, coolant=30.0)
        assert ctl.policy.dither
        rngs = {s: np.random.default_rng(5) for s in ALL_SOLVERS}
        ops = {s: ctl.solve_steady(1.0, 0.45, rng=rngs[s], solver=s)
               for s in ALL_SOLVERS}
        assert_ops_identical(ops[SOLVER_GRID], ops[SOLVER_FLEET])
        assert_ops_identical(ops[SOLVER_LADDER], ops[SOLVER_FLEET])
        states = [rngs[s].bit_generator.state for s in ALL_SOLVERS]
        assert states[0] == states[1] == states[2]

    def test_dither_with_defects(self):
        ctl = build_controller(spec=MI60, n=24, r=0.2, coolant=42.0,
                               seed=3)
        rng = np.random.default_rng(1)
        eff = rng.uniform(0.5, 1.05, ctl.n)
        cap = rng.uniform(0.4, 1.1, ctl.n) * MI60.tdp_w
        assert_all_solvers_identical(ctl, 1.0, 0.5, eff, power_cap_w=cap,
                                     rng_seed=9)


class TestMaskedConvergence:
    """The fleet batch must behave as if each GPU were solved alone."""

    def test_fleet_equals_each_gpu_solved_alone(self):
        # Heterogeneous thermal resistance makes members freeze at
        # different iteration counts; the masked loop's compaction and
        # early exit must not leak between lanes.
        n = 12
        spec = V100
        rng = np.random.default_rng(7)
        r = np.concatenate([
            np.full(4, 1e-12),               # converged at entry
            rng.uniform(0.05, 0.12, 4),      # quick to freeze
            rng.uniform(0.25, 0.35, 4),      # slow, hot lanes
        ])
        coolant = 30.0
        silicon = sample_population(n, SiliconConfig(),
                                    np.random.default_rng(7))
        eff = rng.uniform(0.6, 1.1, n)
        cap = rng.uniform(0.6, 1.1, n) * spec.tdp_w
        fleet_ctl = build_controller(n=n, spec=spec, r=r, coolant=coolant,
                                     silicon=silicon)
        batched = fleet_ctl.solve_steady(1.0, 0.4, eff, power_cap_w=cap,
                                         solver=SOLVER_FLEET)
        for i in range(n):
            solo_ctl = build_controller(
                n=1, spec=spec, r=r[i], coolant=coolant,
                silicon=silicon.take(np.array([i])))
            solo = solo_ctl.solve_steady(
                1.0, 0.4, eff[i:i + 1], power_cap_w=cap[i:i + 1],
                solver=SOLVER_FLEET)
            for field in ("pstate_index", "f_effective_mhz",
                          "f_reported_mhz", "power_w", "temperature_c",
                          "power_capped", "thermally_capped"):
                lhs = getattr(batched, field)[i:i + 1]
                rhs = getattr(solo, field)
                assert np.array_equal(lhs, rhs), f"{field} gpu={i}"

    def test_early_dropout_engages(self):
        # Half the fleet converges at entry: the iteration counter must
        # land strictly below the no-dropout bound (7 per column) while
        # the answers stay bit-identical to the ladder's.
        n = 32
        r = np.where(np.arange(n) < n // 2, 1e-12, 0.1)
        ctl = build_controller(n=n, r=r, seed=15)
        ladder = ctl.solve_steady(1.0, 0.35, solver=SOLVER_LADDER)
        ctl.stats = type(ctl.stats)()
        fleet = ctl.solve_steady(1.0, 0.35, solver=SOLVER_FLEET)
        assert_ops_identical(ladder, fleet)
        stats = ctl.stats
        assert stats.columns_evaluated > 0
        assert stats.fixed_point_iterations < \
            7 * stats.columns_evaluated

    def test_uniform_fleet_runs_full_depth(self):
        # Control case: identical lanes freeze together, so per-cell
        # iteration depth stays at the fixed-point budget and nothing is
        # dropped early — guards against the masked loop *under*-running.
        ctl = build_controller(n=16, solver=SOLVER_FLEET)
        ctl.solve_steady(1.0, 0.35)
        stats = ctl.stats
        assert stats.fixed_point_iterations <= \
            7 * stats.columns_evaluated


class TestCounterInvariance:
    """Batched solves must count as n per-GPU solves in one batch."""

    @pytest.mark.parametrize("solver", ALL_SOLVERS)
    def test_one_call_counts_n_solves_one_batch(self, solver):
        ctl = build_controller(n=32, solver=solver)
        ctl.solve_steady(1.0, 0.35)
        assert ctl.stats.solves == 32
        assert ctl.stats.batches == 1
        ctl.solve_steady(0.5, 0.2)
        assert ctl.stats.solves == 64
        assert ctl.stats.batches == 2

    def test_solve_and_batch_totals_invariant_across_solvers(self):
        totals = {}
        for solver in ALL_SOLVERS:
            ctl = build_controller(n=24, solver=solver)
            for trial in range(3):
                ctl.solve_steady(1.0, 0.35)
            totals[solver] = (ctl.stats.solves, ctl.stats.batches)
        assert totals[SOLVER_LADDER] == totals[SOLVER_FLEET] \
            == totals[SOLVER_GRID] == (72, 3)

    def test_fleet_evaluates_fewer_columns_than_ladder(self):
        # The point of the estimate-guided pair probe: far fewer settled
        # columns than even the ladder's galloping search.
        ladder = build_controller(n=128, solver=SOLVER_LADDER)
        ladder.solve_steady(1.0, 0.35)
        fleet = build_controller(n=128, solver=SOLVER_FLEET)
        fleet.solve_steady(1.0, 0.35)
        assert fleet.stats.columns_evaluated < \
            ladder.stats.columns_evaluated
        assert fleet.stats.dense_cells == ladder.stats.dense_cells
