"""Tests for the board power model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.power import PowerModel
from repro.gpu.silicon import SiliconConfig, sample_population
from repro.gpu.specs import V100


@pytest.fixture(scope="module")
def model():
    silicon = sample_population(16, SiliconConfig(), np.random.default_rng(0))
    return PowerModel(V100, silicon)


@pytest.fixture(scope="module")
def nominal_model():
    cfg = SiliconConfig(
        voltage_offset_sigma=0.0, leakage_log_sigma=0.0,
        thermal_resistance_log_sigma=0.0, bandwidth_efficiency_sigma=0.0,
        compute_efficiency_sigma=0.0, power_sensor_gain_sigma=0.0,
    )
    silicon = sample_population(4, cfg, np.random.default_rng(0))
    return PowerModel(V100, silicon)


class TestDynamicPower:
    def test_monotone_in_frequency(self, model):
        f = np.linspace(500, 1530, 40)
        p = model.dynamic_power(np.tile(f, (model.n, 1)), activity=1.0)
        assert np.all(np.diff(p, axis=1) > 0)

    def test_scales_linearly_with_activity(self, model):
        f = np.full(model.n, 1400.0)
        p_half = model.dynamic_power(f, activity=0.5)
        p_full = model.dynamic_power(f, activity=1.0)
        np.testing.assert_allclose(p_half * 2.0, p_full)

    def test_efficiency_reduces_switching(self, model):
        f = np.full(model.n, 1400.0)
        p = model.dynamic_power(f, activity=1.0, efficiency=0.5)
        np.testing.assert_allclose(p, model.dynamic_power(f, 0.5))

    def test_voltage_offset_raises_power(self, nominal_model):
        f = np.full(4, 1400.0)
        base = nominal_model.dynamic_power(f, 1.0)
        silicon = nominal_model.silicon
        silicon.voltage_offset[:] = 0.02
        bumped = PowerModel(V100, silicon).dynamic_power(f, 1.0)
        np.testing.assert_allclose(bumped, base * 1.02**2)
        silicon.voltage_offset[:] = 0.0  # restore shared fixture


class TestLeakage:
    def test_grows_exponentially_with_temperature(self, nominal_model):
        t = np.full(4, 25.0)
        p25 = nominal_model.leakage_power(t)
        p75 = nominal_model.leakage_power(t + 50.0)
        expected = np.exp(V100.leakage_temp_coeff * 50.0)
        np.testing.assert_allclose(p75 / p25, expected)

    def test_reference_value(self, nominal_model):
        p = nominal_model.leakage_power(np.full(4, 25.0))
        np.testing.assert_allclose(p, V100.leakage_nominal_w)

    def test_leakage_scale_multiplies(self):
        cfg = SiliconConfig(leakage_log_sigma=0.5)
        silicon = sample_population(64, cfg, np.random.default_rng(2))
        model = PowerModel(V100, silicon)
        p = model.leakage_power(np.full(64, 25.0))
        np.testing.assert_allclose(
            p, V100.leakage_nominal_w * silicon.leakage_scale
        )


class TestTotals:
    def test_total_is_sum_of_parts(self, model):
        f = np.full(model.n, 1300.0)
        t = np.full(model.n, 60.0)
        total = model.total_power(f, t, activity=0.8, dram_utilization=0.4)
        parts = (
            model.dynamic_power(f, 0.8)
            + model.memory_power(0.4)
            + model.leakage_power(t)
            + V100.idle_power_w
        )
        np.testing.assert_allclose(total, parts)

    def test_memory_power_clipped(self, model):
        assert float(model.memory_power(2.0)) == V100.mem_power_max_w
        assert float(model.memory_power(-1.0)) == 0.0

    def test_idle_power(self, model):
        idle = model.idle_power(np.full(model.n, 40.0))
        assert np.all(idle > V100.idle_power_w)
        assert np.all(idle < 100.0)

    def test_grid_broadcasting(self, model):
        f = np.tile(np.array([1000.0, 1500.0]), (model.n, 1))
        t = np.full((model.n, 2), 50.0)
        total = model.total_power(f, t, 1.0, 0.3)
        assert total.shape == (model.n, 2)
        assert np.all(total[:, 1] > total[:, 0])

    @settings(max_examples=30, deadline=None)
    @given(
        f=st.floats(min_value=135.0, max_value=1530.0),
        act=st.floats(min_value=0.0, max_value=1.0),
        temp=st.floats(min_value=20.0, max_value=95.0),
    )
    def test_property_power_positive_and_finite(self, f, act, temp):
        silicon = sample_population(
            8, SiliconConfig(), np.random.default_rng(0)
        )
        model = PowerModel(V100, silicon)
        p = model.total_power(
            np.full(8, f), np.full(8, temp), act, 0.3
        )
        assert np.all(np.isfinite(p))
        assert np.all(p >= V100.idle_power_w)
