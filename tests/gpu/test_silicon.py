"""Tests for the manufacturing-variability model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.gpu.silicon import SiliconConfig, SiliconPopulation, sample_population


def _sample(n=256, seed=0, **over):
    cfg = SiliconConfig(**over)
    return sample_population(n, cfg, np.random.default_rng(seed))


class TestSampling:
    def test_shapes(self):
        pop = _sample(100)
        assert pop.n == 100
        for arr in (pop.voltage_offset, pop.leakage_scale,
                    pop.thermal_resistance_scale, pop.bandwidth_efficiency,
                    pop.compute_efficiency, pop.power_sensor_gain):
            assert arr.shape == (100,)

    def test_deterministic(self):
        a = _sample(seed=5)
        b = _sample(seed=5)
        np.testing.assert_array_equal(a.voltage_offset, b.voltage_offset)
        np.testing.assert_array_equal(a.leakage_scale, b.leakage_scale)

    def test_seed_changes_sample(self):
        assert not np.array_equal(
            _sample(seed=1).voltage_offset, _sample(seed=2).voltage_offset
        )

    def test_voltage_offsets_clipped(self):
        pop = _sample(5000, voltage_offset_sigma=0.02,
                      voltage_offset_clip_sigmas=2.0)
        assert np.all(np.abs(pop.voltage_offset) <= 0.04 + 1e-12)

    def test_leakage_median_near_one(self):
        pop = _sample(4000)
        assert np.median(pop.leakage_scale) == pytest.approx(1.0, rel=0.05)

    def test_bandwidth_efficiency_bounded(self):
        pop = _sample(2000)
        assert np.all(pop.bandwidth_efficiency <= 1.0)
        assert np.all(pop.bandwidth_efficiency >= 0.5)

    def test_zero_sigma_degenerates(self):
        pop = _sample(
            50,
            voltage_offset_sigma=0.0,
            leakage_log_sigma=0.0,
            thermal_resistance_log_sigma=0.0,
        )
        np.testing.assert_allclose(pop.voltage_offset, 0.0)
        np.testing.assert_allclose(pop.leakage_scale, 1.0)
        np.testing.assert_allclose(pop.thermal_resistance_scale, 1.0)

    def test_nonpositive_n_rejected(self):
        with pytest.raises(ValueError):
            _sample(0)

    @settings(max_examples=25, deadline=None)
    @given(
        sigma=st.floats(min_value=0.0, max_value=0.05),
        n=st.integers(min_value=1, max_value=200),
    )
    def test_property_offsets_within_clip(self, sigma, n):
        cfg = SiliconConfig(voltage_offset_sigma=sigma)
        pop = sample_population(n, cfg, np.random.default_rng(0))
        clip = sigma * cfg.voltage_offset_clip_sigmas
        assert np.all(np.abs(pop.voltage_offset) <= clip + 1e-12)


class TestTake:
    def test_take_subsets(self):
        pop = _sample(20)
        sub = pop.take(np.array([3, 7, 11]))
        assert sub.n == 3
        assert sub.voltage_offset[1] == pop.voltage_offset[7]

    def test_take_copies(self):
        pop = _sample(10)
        sub = pop.take(np.arange(5))
        sub.voltage_offset[0] = 99.0
        assert pop.voltage_offset[0] != 99.0


class TestValidation:
    def test_mismatched_array_lengths_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            SiliconPopulation(
                voltage_offset=np.zeros(4),
                leakage_scale=np.ones(5),
                thermal_resistance_scale=np.ones(4),
                bandwidth_efficiency=np.ones(4),
                compute_efficiency=np.ones(4),
                power_sensor_gain=np.ones(4),
            )

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            SiliconConfig(voltage_offset_sigma=-0.1)

    def test_bad_bandwidth_mean_rejected(self):
        with pytest.raises(ConfigError):
            SiliconConfig(bandwidth_efficiency_mean=1.5)
