"""Tests for the DVFS controller (steady state and reactive)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.dvfs import DvfsController, DvfsPolicy
from repro.gpu.power import PowerModel
from repro.gpu.silicon import SiliconConfig, sample_population
from repro.gpu.specs import MI60, V100
from repro.gpu.thermal import ThermalModel


def make_controller(n=32, spec=V100, r=0.1, coolant=25.0, seed=0,
                    policy=None, silicon_cfg=None):
    silicon = sample_population(
        n, silicon_cfg or SiliconConfig(), np.random.default_rng(seed)
    )
    power = PowerModel(spec, silicon)
    thermal = ThermalModel(spec, np.full(n, r), np.full(n, coolant))
    return DvfsController(spec, power, thermal, policy)


class TestSteadyStateInvariants:
    def test_power_within_cap(self):
        ctl = make_controller()
        op = ctl.solve_steady(1.0, 0.35)
        assert np.all(op.power_w <= V100.tdp_w + 1e-9)

    def test_temperature_within_slowdown(self):
        ctl = make_controller(r=0.25, coolant=40.0)  # hot setup
        op = ctl.solve_steady(1.0, 0.35)
        limit = V100.t_slowdown_c - ctl.policy.thermal_headroom_c
        assert np.all(op.temperature_c <= limit + 1e-9)

    def test_compute_load_throttles_below_boost(self):
        ctl = make_controller()
        op = ctl.solve_steady(1.0, 0.35)
        assert np.median(op.f_effective_mhz) < V100.f_max_mhz

    def test_light_load_runs_at_boost(self):
        ctl = make_controller()
        op = ctl.solve_steady(0.2, 0.2)
        assert np.all(op.f_effective_mhz == V100.f_max_mhz)
        assert not op.power_capped.any()
        assert not op.thermally_capped.any()

    def test_lower_cap_never_raises_frequency(self):
        ctl = make_controller()
        high = ctl.solve_steady(1.0, 0.35, power_cap_w=300.0)
        low = ctl.solve_steady(1.0, 0.35, power_cap_w=200.0)
        assert np.all(low.f_effective_mhz <= high.f_effective_mhz)
        assert np.all(low.power_w <= 200.0 + 1e-9)

    @settings(max_examples=20, deadline=None)
    @given(cap=st.floats(min_value=80.0, max_value=300.0))
    def test_property_cap_respected(self, cap):
        ctl = make_controller(n=8)
        op = ctl.solve_steady(1.0, 0.35, power_cap_w=cap)
        assert np.all(op.power_w <= cap + 1e-9)

    @settings(max_examples=15, deadline=None)
    @given(
        act=st.floats(min_value=0.05, max_value=1.0),
        dram=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_operating_point_is_self_consistent(self, act, dram):
        """Recomputing power at the settled point reproduces it."""
        ctl = make_controller(n=8)
        op = ctl.solve_steady(act, dram)
        p_check = ctl.power.total_power(
            op.f_effective_mhz, op.temperature_c, act, dram
        )
        np.testing.assert_allclose(p_check, op.power_w, rtol=1e-6)

    def test_voltage_offset_lowers_settled_frequency(self):
        """The silicon-lottery mechanism: higher V-offset => lower f."""
        cfg = SiliconConfig(
            leakage_log_sigma=0.0, thermal_resistance_log_sigma=0.0,
            compute_efficiency_sigma=0.0, bandwidth_efficiency_sigma=0.0,
        )
        ctl = make_controller(n=64, silicon_cfg=cfg)
        op = ctl.solve_steady(1.0, 0.35)
        rho = np.corrcoef(
            ctl.power.silicon.voltage_offset, op.f_effective_mhz
        )[0, 1]
        assert rho < -0.9


class TestFrequencyCeiling:
    def test_ceiling_respected(self):
        ctl = make_controller(n=16)
        f_cap = np.full(16, 1000.0)
        op = ctl.solve_steady(0.2, 0.2, f_cap_mhz=f_cap)
        assert np.all(op.f_effective_mhz <= 1000.0)

    def test_ceiling_gpu_not_flagged_as_capped(self):
        ctl = make_controller(n=4)
        op = ctl.solve_steady(0.2, 0.2, f_cap_mhz=np.full(4, 1000.0))
        assert not op.power_capped.any()
        assert not op.thermally_capped.any()


class TestDither:
    def test_requires_rng(self):
        ctl = make_controller(
            spec=MI60, policy=DvfsPolicy(dither=True), r=0.12, coolant=30.0
        )
        with pytest.raises(ValueError, match="rng"):
            ctl.solve_steady(1.0, 0.35)

    def test_dither_stays_within_cap(self):
        ctl = make_controller(
            n=64, spec=MI60, policy=DvfsPolicy(dither=True),
            r=0.12, coolant=30.0,
        )
        op = ctl.solve_steady(
            1.0, 0.35, rng=np.random.default_rng(0)
        )
        assert np.all(op.power_w <= MI60.tdp_w + 1e-9)

    def test_effective_frequency_between_ladder_levels(self):
        ctl = make_controller(
            n=64, spec=MI60, policy=DvfsPolicy(dither=True),
            r=0.12, coolant=30.0,
        )
        op = ctl.solve_steady(1.0, 0.35, rng=np.random.default_rng(1))
        steps = MI60.pstate_array()
        on_level = np.isin(op.f_effective_mhz, steps)
        # Dithering GPUs sit between levels; reported snaps to a level.
        assert np.all(np.isin(op.f_reported_mhz, steps))
        if (~on_level).any():
            between = op.f_effective_mhz[~on_level]
            assert np.all(between > steps[0])
            assert np.all(between < steps[-1])

    def test_dither_is_stochastic_across_runs(self):
        ctl = make_controller(
            n=64, spec=MI60, policy=DvfsPolicy(dither=True),
            r=0.12, coolant=30.0,
        )
        a = ctl.solve_steady(1.0, 0.35, rng=np.random.default_rng(1))
        b = ctl.solve_steady(1.0, 0.35, rng=np.random.default_rng(2))
        assert not np.array_equal(a.f_effective_mhz, b.f_effective_mhz)


class TestReactiveControl:
    def test_steps_down_when_over_cap(self):
        ctl = make_controller(n=3)
        idx = np.array([100, 100, 100])
        new = ctl.control_step(
            idx,
            power_w=np.array([350.0, 350.0, 350.0]),
            temperature_c=np.full(3, 50.0),
            power_cap_w=np.full(3, 300.0),
        )
        assert np.all(new == 100 - ctl.policy.down_step)

    def test_steps_up_when_under_cap(self):
        ctl = make_controller(n=2)
        new = ctl.control_step(
            np.array([50, 50]),
            power_w=np.full(2, 150.0),
            temperature_c=np.full(2, 40.0),
            power_cap_w=np.full(2, 300.0),
        )
        assert np.all(new == 50 + ctl.policy.up_step)

    def test_thermal_violation_steps_down(self):
        ctl = make_controller(n=1)
        new = ctl.control_step(
            np.array([80]),
            power_w=np.array([200.0]),
            temperature_c=np.array([V100.t_slowdown_c + 1.0]),
            power_cap_w=np.array([300.0]),
        )
        assert new[0] == 80 - ctl.policy.down_step

    def test_clamped_to_ladder(self):
        ctl = make_controller(n=2)
        new = ctl.control_step(
            np.array([0, V100.n_pstates - 1]),
            power_w=np.array([400.0, 100.0]),
            temperature_c=np.full(2, 40.0),
            power_cap_w=np.full(2, 300.0),
        )
        assert new[0] == 0
        assert new[1] == V100.n_pstates - 1


class TestPolicy:
    def test_for_spec_vendor_defaults(self):
        assert not DvfsPolicy.for_spec(V100).dither
        assert DvfsPolicy.for_spec(MI60).dither

    def test_invalid_policy_rejected(self):
        with pytest.raises(Exception):
            DvfsPolicy(dither_max_duty=1.5)

    def test_mismatched_models_rejected(self):
        silicon = sample_population(4, SiliconConfig(), np.random.default_rng(0))
        power = PowerModel(V100, silicon)
        thermal = ThermalModel(V100, np.full(5, 0.1), np.full(5, 25.0))
        with pytest.raises(ValueError, match="covers"):
            DvfsController(V100, power, thermal)


class TestPowerGridInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        act=st.floats(min_value=0.05, max_value=1.0),
        dram=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_property_grid_monotone_in_pstate(self, act, dram):
        """Settled power and temperature never decrease up the ladder."""
        ctl = make_controller(n=6)
        p_grid, t_grid = ctl.power_grid(act, dram)
        assert np.all(np.diff(p_grid, axis=1) >= -1e-6)
        assert np.all(np.diff(t_grid, axis=1) >= -1e-6)

    def test_grid_matches_pointwise_power(self):
        """The grid's entries agree with the scalar power model."""
        ctl = make_controller(n=4)
        p_grid, t_grid = ctl.power_grid(0.8, 0.3)
        f = ctl.spec.pstate_array()
        check = ctl.power.total_power(
            np.broadcast_to(f, (4, f.shape[0])), t_grid, 0.8, 0.3
        )
        np.testing.assert_allclose(p_grid, check, rtol=1e-4)

    def test_grid_temperature_consistent_with_thermal_model(self):
        ctl = make_controller(n=4)
        p_grid, t_grid = ctl.power_grid(0.8, 0.3)
        expected = ctl.thermal.steady_temperature(p_grid)
        # Away from the runaway clamp, T is the thermal fixed point of P.
        clamp = ctl.spec.t_shutdown_c + 40.0
        mask = t_grid < clamp - 1.0
        np.testing.assert_allclose(t_grid[mask], expected[mask], rtol=1e-3)
