"""Tests for the RC thermal model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.specs import V100
from repro.gpu.thermal import ThermalModel


def _model(n=8, r=0.1, coolant=25.0):
    return ThermalModel(
        V100, np.full(n, r), np.full(n, coolant)
    )


class TestSteadyState:
    def test_steady_temperature(self):
        model = _model(r=0.1, coolant=25.0)
        t = model.steady_temperature(np.full(8, 300.0))
        np.testing.assert_allclose(t, 55.0)

    def test_inverse_relationship(self):
        model = _model()
        p = np.linspace(50, 300, 8)
        t = model.steady_temperature(p)
        np.testing.assert_allclose(model.power_at_temperature(t), p)

    def test_grid_broadcast(self):
        model = _model(n=4)
        p = np.tile(np.array([100.0, 200.0]), (4, 1))
        t = model.steady_temperature(p)
        assert t.shape == (4, 2)
        assert np.all(t[:, 1] > t[:, 0])


class TestTransient:
    def test_step_approaches_equilibrium(self):
        model = _model(n=2, r=0.1, coolant=25.0)
        t = np.full(2, 25.0)
        power = np.full(2, 300.0)
        for _ in range(2000):
            t = model.step(t, power, dt_s=1.0)
        np.testing.assert_allclose(t, 55.0, atol=0.01)

    def test_exact_exponential_step(self):
        model = _model(n=1, r=0.1, coolant=20.0)
        t0 = np.array([20.0])
        power = np.array([100.0])
        tau = float(model.time_constant_s[0])
        t1 = model.step(t0, power, dt_s=tau)
        # After one time constant: 1 - 1/e of the way to equilibrium (30 C).
        expected = 20.0 + 10.0 * (1.0 - np.exp(-1.0))
        np.testing.assert_allclose(t1, expected)

    def test_unconditionally_stable_for_huge_dt(self):
        model = _model(n=2)
        t = model.step(np.full(2, 25.0), np.full(2, 250.0), dt_s=1e6)
        np.testing.assert_allclose(t, model.steady_temperature(np.full(2, 250.0)))

    def test_cooling_down(self):
        model = _model(n=1, coolant=25.0)
        t = model.step(np.array([80.0]), np.array([0.0]), dt_s=10_000.0)
        np.testing.assert_allclose(t, 25.0, atol=1e-6)

    @settings(max_examples=30, deadline=None)
    @given(
        dt=st.floats(min_value=1e-3, max_value=1e4),
        power=st.floats(min_value=0.0, max_value=400.0),
        t0=st.floats(min_value=20.0, max_value=110.0),
    )
    def test_property_step_moves_toward_equilibrium(self, dt, power, t0):
        model = _model(n=1)
        t_inf = float(model.steady_temperature(np.array([power]))[0])
        t1 = float(model.step(np.array([t0]), np.array([power]), dt)[0])
        # The new temperature lies between the start and the equilibrium.
        lo, hi = sorted((t0, t_inf))
        assert lo - 1e-9 <= t1 <= hi + 1e-9


class TestValidation:
    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel(V100, np.full(3, 0.1), np.full(4, 25.0))

    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(ValueError):
            ThermalModel(V100, np.array([0.0]), np.array([25.0]))

    def test_nonpositive_dt_rejected(self):
        model = _model(n=1)
        with pytest.raises(ValueError):
            model.step(np.array([25.0]), np.array([100.0]), dt_s=0.0)

    def test_time_constant(self):
        model = _model(n=1, r=0.2)
        expected = 0.2 * V100.thermal_capacitance_j_per_c
        np.testing.assert_allclose(model.time_constant_s, expected)
