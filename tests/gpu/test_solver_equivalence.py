"""Ladder-search vs dense-grid steady-state solver equivalence.

The ladder solver's entire value proposition is that it is *bit-identical*
to the dense scan it replaces — every assertion here is exact equality, not
allclose.  Cases concentrate on the boundaries where a binary search could
plausibly diverge from an explicit scan: caps below the ladder bottom, caps
above the ladder top, per-GPU boost ceilings at the extremes, severe defect
combinations, and AMD dithering (which must consume identical RNG draws
under both solvers).
"""

import numpy as np
import pytest

from repro.gpu.dvfs import (
    SOLVER_GRID,
    SOLVER_LADDER,
    DvfsController,
    DvfsPolicy,
    SolverStats,
    default_solver,
)
from repro.gpu.power import PowerModel
from repro.gpu.silicon import SiliconConfig, sample_population
from repro.gpu.specs import MI60, RTX5000, V100
from repro.gpu.thermal import ThermalModel


def make_controller(n=48, spec=V100, r=0.1, coolant=25.0, seed=0,
                    policy=None, solver=None):
    silicon = sample_population(
        n, SiliconConfig(), np.random.default_rng(seed)
    )
    power = PowerModel(spec, silicon)
    thermal = ThermalModel(spec, np.full(n, r), np.full(n, coolant))
    return DvfsController(spec, power, thermal, policy, solver=solver)


def assert_ops_identical(a, b):
    """Every SteadyOperatingPoint array must match bit for bit."""
    for field in ("pstate_index", "f_effective_mhz", "f_reported_mhz",
                  "power_w", "temperature_c", "power_capped",
                  "thermally_capped"):
        lhs, rhs = getattr(a, field), getattr(b, field)
        assert lhs.dtype == rhs.dtype, field
        assert np.array_equal(lhs, rhs), field


class TestLadderMatchesDense:
    @pytest.mark.parametrize("spec", [V100, RTX5000, MI60],
                             ids=lambda s: s.name)
    def test_randomized_operating_points(self, spec):
        ctl = make_controller(spec=spec, n=64, seed=3)
        rng = np.random.default_rng(7)
        for trial in range(4):
            act = rng.uniform(0.1, 1.0, ctl.n)
            dram = rng.uniform(0.0, 0.9, ctl.n)
            eff = rng.uniform(0.6, 1.05, ctl.n)
            cap = rng.uniform(0.5, 1.2, ctl.n) * spec.tdp_w
            f_cap = rng.uniform(0.5, 1.0, ctl.n) * spec.f_max_mhz
            kwargs = dict(power_cap_w=cap, f_cap_mhz=f_cap)
            if ctl.policy.dither:
                grid = ctl.solve_steady(
                    act, dram, eff, rng=np.random.default_rng(trial),
                    solver=SOLVER_GRID, **kwargs)
                ladder = ctl.solve_steady(
                    act, dram, eff, rng=np.random.default_rng(trial),
                    solver=SOLVER_LADDER, **kwargs)
            else:
                grid = ctl.solve_steady(act, dram, eff,
                                        solver=SOLVER_GRID, **kwargs)
                ladder = ctl.solve_steady(act, dram, eff,
                                          solver=SOLVER_LADDER, **kwargs)
            assert_ops_identical(grid, ladder)

    def test_scalar_inputs(self):
        ctl = make_controller()
        grid = ctl.solve_steady(1.0, 0.35, solver=SOLVER_GRID)
        ladder = ctl.solve_steady(1.0, 0.35, solver=SOLVER_LADDER)
        assert_ops_identical(grid, ladder)

    def test_power_cap_below_ladder_bottom(self):
        # Nothing is feasible: both solvers must settle on index 0.
        ctl = make_controller(n=16)
        grid = ctl.solve_steady(1.0, 0.35, power_cap_w=1.0,
                                solver=SOLVER_GRID)
        ladder = ctl.solve_steady(1.0, 0.35, power_cap_w=1.0,
                                  solver=SOLVER_LADDER)
        assert np.all(ladder.pstate_index == 0)
        assert_ops_identical(grid, ladder)

    def test_power_cap_above_everything(self):
        ctl = make_controller(n=16)
        grid = ctl.solve_steady(0.05, 0.05, power_cap_w=1e6,
                                solver=SOLVER_GRID)
        ladder = ctl.solve_steady(0.05, 0.05, power_cap_w=1e6,
                                  solver=SOLVER_LADDER)
        assert np.all(ladder.pstate_index == V100.n_pstates - 1)
        assert_ops_identical(grid, ladder)

    def test_extreme_boost_ceilings(self):
        # f_cap below the ladder bottom, between rungs, and above the top —
        # all in one population.
        ctl = make_controller(n=6)
        steps = ctl.pstates()
        f_cap = np.array([
            steps[0] * 0.5,            # below the bottom rung
            steps[0],                  # exactly the bottom rung
            (steps[3] + steps[4]) / 2,  # between rungs
            steps[-1] * 0.5,
            steps[-1],                 # exactly the top
            steps[-1] * 2.0,           # above the top
        ])
        grid = ctl.solve_steady(0.4, 0.2, f_cap_mhz=f_cap,
                                solver=SOLVER_GRID)
        ladder = ctl.solve_steady(0.4, 0.2, f_cap_mhz=f_cap,
                                  solver=SOLVER_LADDER)
        assert_ops_identical(grid, ladder)

    def test_severe_defect_combination(self):
        # Mimic a POWER_DELIVERY + SICK_SLOW pileup: tiny per-GPU caps,
        # tiny ceilings, degraded efficiency, hot coolant.
        ctl = make_controller(n=32, r=0.22, coolant=45.0, seed=9)
        rng = np.random.default_rng(11)
        cap = np.where(rng.random(ctl.n) < 0.3,
                       rng.uniform(0.3, 0.6, ctl.n) * V100.tdp_w,
                       V100.tdp_w)
        f_cap = np.where(rng.random(ctl.n) < 0.3,
                         rng.uniform(0.4, 0.8, ctl.n) * V100.f_max_mhz,
                         V100.f_max_mhz)
        eff = rng.uniform(0.5, 1.0, ctl.n)
        grid = ctl.solve_steady(1.0, 0.5, eff, power_cap_w=cap,
                                f_cap_mhz=f_cap, solver=SOLVER_GRID)
        ladder = ctl.solve_steady(1.0, 0.5, eff, power_cap_w=cap,
                                  f_cap_mhz=f_cap, solver=SOLVER_LADDER)
        assert_ops_identical(grid, ladder)

    def test_dither_consumes_identical_rng(self):
        # AMD dithering draws from the caller's rng; the search itself must
        # consume none, so both solvers leave the stream in the same state.
        ctl = make_controller(spec=MI60, n=40, r=0.16, coolant=30.0)
        assert ctl.policy.dither
        rng_a = np.random.default_rng(5)
        rng_b = np.random.default_rng(5)
        grid = ctl.solve_steady(1.0, 0.45, rng=rng_a, solver=SOLVER_GRID)
        ladder = ctl.solve_steady(1.0, 0.45, rng=rng_b, solver=SOLVER_LADDER)
        assert_ops_identical(grid, ladder)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestColumnEvaluator:
    def test_columns_match_grid_bitwise(self):
        ctl = make_controller(n=24)
        rng = np.random.default_rng(2)
        act = rng.uniform(0.2, 1.0, ctl.n)
        dram = rng.uniform(0.0, 0.8, ctl.n)
        p_grid, t_grid = ctl.power_grid(act, dram)
        idx = rng.integers(0, V100.n_pstates, size=ctl.n)
        p_col, t_col = ctl.power_grid_columns(idx, act, dram)
        rows = np.arange(ctl.n)
        assert np.array_equal(p_col, p_grid[rows, idx])
        assert np.array_equal(t_col, t_grid[rows, idx])

    def test_two_dimensional_indices(self):
        ctl = make_controller(n=8)
        p_grid, t_grid = ctl.power_grid(0.7, 0.3)
        idx = np.tile(np.array([0, 50, 186]), (ctl.n, 1))
        p_col, t_col = ctl.power_grid_columns(idx, 0.7, 0.3)
        assert p_col.shape == (ctl.n, 3)
        rows = np.arange(ctl.n)[:, None]
        assert np.array_equal(p_col, p_grid[rows, idx])
        assert np.array_equal(t_col, t_grid[rows, idx])

    def test_rejects_wrong_shape(self):
        ctl = make_controller(n=8)
        with pytest.raises(ValueError):
            ctl.power_grid_columns(np.zeros((4,), dtype=int), 0.5, 0.2)


class TestSolverStats:
    def test_ladder_avoids_most_of_the_grid(self):
        ctl = make_controller(n=128, solver=SOLVER_LADDER)
        ctl.solve_steady(1.0, 0.35)
        stats = ctl.stats
        # One batched call = n per-GPU solves (invariant across solver
        # modes and shard plans) grouped into a single batch.
        assert stats.solves == 128
        assert stats.batches == 1
        assert stats.dense_cells == 128 * V100.n_pstates
        assert stats.columns_evaluated < stats.dense_cells / 5
        assert stats.dense_fraction_avoided > 0.8
        assert stats.fixed_point_iterations == 7 * stats.columns_evaluated

    def test_grid_avoids_nothing(self):
        ctl = make_controller(n=16, solver=SOLVER_GRID)
        ctl.solve_steady(1.0, 0.35)
        assert ctl.stats.columns_evaluated >= ctl.stats.dense_cells
        assert ctl.stats.dense_fraction_avoided == 0.0

    def test_merge_and_copy(self):
        a = SolverStats(solves=1, columns_evaluated=10, dense_cells=100,
                        fixed_point_iterations=70)
        b = a.copy()
        b.merge(a)
        assert b.solves == 2 and b.columns_evaluated == 20
        assert a.solves == 1  # copy is independent
        assert "avoided" in a.describe()


class TestSolverSelection:
    def test_env_var_changes_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_DVFS_SOLVER", "grid")
        assert default_solver() == SOLVER_GRID
        assert make_controller(n=4).solver == SOLVER_GRID
        monkeypatch.delenv("REPRO_DVFS_SOLVER")
        assert default_solver() == SOLVER_LADDER

    def test_bad_env_var_rejected(self, monkeypatch):
        from repro.errors import ConfigError
        monkeypatch.setenv("REPRO_DVFS_SOLVER", "quantum")
        with pytest.raises(ConfigError):
            default_solver()

    def test_bad_solver_argument_rejected(self):
        from repro.errors import ConfigError
        ctl = make_controller(n=4)
        with pytest.raises(ConfigError):
            ctl.solve_steady(1.0, 0.35, solver="nope")
        with pytest.raises(ConfigError):
            make_controller(n=4, solver="nope")
