"""Shared fixtures: small, fast cluster instances and canned datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster import cloudlab, corona, frontera, longhorn, summit, vortex
from repro.sim import CampaignConfig, run_campaign
from repro.workloads import sgemm


@pytest.fixture(scope="session")
def small_longhorn():
    """A 1/4-scale Longhorn (fast; keeps cabinet c002 and its defects)."""
    return longhorn(seed=11, scale=0.25)


@pytest.fixture(scope="session")
def small_summit():
    """A heavily scaled Summit grid (keeps the row/column structure)."""
    return summit(seed=11, scale=0.0625)  # 1 node per column


@pytest.fixture(scope="session")
def small_vortex():
    return vortex(seed=11, scale=0.34)


@pytest.fixture(scope="session")
def small_frontera():
    return frontera(seed=11, scale=0.34)


@pytest.fixture(scope="session")
def small_corona():
    """Scaled Corona; cabinet c115 (the cooling-fault outlier) survives."""
    return corona(seed=11, scale=0.6)


@pytest.fixture(scope="session")
def tiny_cloudlab():
    return cloudlab(seed=11)


@pytest.fixture(scope="session")
def sgemm_dataset(small_longhorn):
    """A 3-day SGEMM campaign on the small Longhorn (session-cached)."""
    return run_campaign(
        small_longhorn, sgemm(), CampaignConfig(days=3, runs_per_day=2)
    )


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
