"""Golden-regression tests under the fleet solver.

The committed fixtures in ``tests/golden/`` were produced under the
default (ladder) solver.  ``REPRO_DVFS_SOLVER=fleet`` must reproduce
every one of them byte-for-byte — the batched solve and the batched
fast-cap clamp are execution shape only — and the guarantee holds at any
worker count, since worker processes inherit the environment and the
shard plan never feeds one GPU's lanes into another's.
"""

from __future__ import annotations

import pytest

from tests.golden import GOLDEN_CAMPAIGNS, golden_csv_text, read_golden_text

ALL_NAMES = sorted(GOLDEN_CAMPAIGNS)


@pytest.fixture(autouse=True)
def fleet_solver(monkeypatch):
    monkeypatch.setenv("REPRO_DVFS_SOLVER", "fleet")


@pytest.mark.slow
@pytest.mark.parametrize("workers", [1, 2])
@pytest.mark.parametrize("name", ALL_NAMES)
def test_fleet_campaign_matches_golden(name, workers):
    expected = read_golden_text(name)
    actual = golden_csv_text(name, workers=workers)
    if actual != expected:  # pinpoint the first divergence before failing
        exp_lines = expected.splitlines()
        act_lines = actual.splitlines()
        for i, (e, a) in enumerate(zip(exp_lines, act_lines)):
            assert a == e, (
                f"{name} (workers={workers}): first diff at line {i + 1}\n"
                f"  golden : {e}\n  current: {a}"
            )
        assert len(act_lines) == len(exp_lines), (
            f"{name} (workers={workers}): row count changed "
            f"({len(exp_lines)} golden vs {len(act_lines)} current)"
        )
        pytest.fail(
            f"{name} (workers={workers}): fleet-solver output differs "
            "from committed golden"
        )
