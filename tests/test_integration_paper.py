"""Integration tests: the paper's qualitative findings must reproduce.

These run whole campaigns on scaled-down clusters and assert the *shape*
of the paper's results — orderings, correlation signs, and coarse bands —
rather than exact numbers (which the full-scale benchmarks track in
EXPERIMENTS.md).
"""

import numpy as np
import pytest

from repro.core import (
    flag_outlier_gpus,
    metric_boxstats,
    pearson,
    persistent_outliers,
    slow_assignment_probability,
)
from repro.core.daily import day_of_week_stats, weekday_consistency
from repro.sim import CampaignConfig, run_campaign, simulate_run
from repro.telemetry.sample import (
    METRIC_FREQUENCY,
    METRIC_PERFORMANCE,
    METRIC_POWER,
    METRIC_TEMPERATURE,
)
from repro.workloads import (
    bert_pretraining,
    lammps_reaxc,
    pagerank,
    resnet50,
    sgemm,
)


@pytest.fixture(scope="module")
def longhorn_runs(small_longhorn):
    cfg = CampaignConfig(days=3, runs_per_day=1)
    return {
        "sgemm": run_campaign(small_longhorn, sgemm(), cfg),
        "resnet": run_campaign(small_longhorn, resnet50(), cfg),
        "bert": run_campaign(small_longhorn, bert_pretraining(), cfg),
        "lammps": run_campaign(small_longhorn, lammps_reaxc(), cfg),
        "pagerank": run_campaign(small_longhorn, pagerank(), cfg),
    }


class TestTakeaway1_SGEMMVariability:
    def test_performance_variation_band(self, longhorn_runs):
        """~9% SGEMM performance variation on Longhorn."""
        stats = metric_boxstats(longhorn_runs["sgemm"], METRIC_PERFORMANCE)
        assert 0.04 < stats.variation < 0.16

    def test_frequencies_below_pinned_max(self, longhorn_runs):
        """Configured at 1530 MHz yet running 1300-1450 (Fig. 2a)."""
        freq = longhorn_runs["sgemm"][METRIC_FREQUENCY]
        assert np.median(freq) < 1460.0
        assert np.median(freq) > 1280.0

    def test_perf_frequency_strongly_anticorrelated(self, longhorn_runs):
        ds = longhorn_runs["sgemm"]
        rho = pearson(ds[METRIC_PERFORMANCE], ds[METRIC_FREQUENCY])
        assert rho < -0.9


class TestTakeaway5_ApplicationSpecific:
    def test_variability_ordering(self, longhorn_runs):
        """ResNet >> SGEMM ~ BERT >> LAMMPS ~ PageRank (Sections IV-V).

        ML variability is a run-level phenomenon (cuDNN algorithm
        selection varies run to run), so the comparison uses run-level
        points, matching the paper's iteration-duration box plots.
        """
        var = {
            name: metric_boxstats(
                ds, METRIC_PERFORMANCE, per_gpu_median=False
            ).variation
            for name, ds in longhorn_runs.items()
        }
        assert var["resnet"] > var["sgemm"]
        assert var["resnet"] > var["bert"]
        assert var["sgemm"] > 3 * var["lammps"]
        assert var["sgemm"] > 3 * var["pagerank"]

    def test_memory_bound_keeps_power_variability(self, longhorn_runs):
        """Takeaways 7-8: perf stable but power still varies."""
        lammps = longhorn_runs["lammps"]
        perf_var = metric_boxstats(lammps, METRIC_PERFORMANCE).variation
        power_var = metric_boxstats(lammps, METRIC_POWER).variation
        assert perf_var < 0.04
        assert power_var > 0.08

    def test_ml_power_variability_is_large(self, longhorn_runs):
        """Figs. 14c/17c: huge ML power spread."""
        resnet_power = metric_boxstats(
            longhorn_runs["resnet"], METRIC_POWER, per_gpu_median=False
        )
        assert resnet_power.variation > 0.4

    def test_ml_frequency_pinned(self, longhorn_runs):
        freq = longhorn_runs["resnet"][METRIC_FREQUENCY]
        at_max = (freq == 1530.0).mean()
        assert at_max > 0.8

    def test_bert_draws_less_power_than_resnet(self, longhorn_runs):
        """Takeaway 6: BERT median power ~40 W below ResNet."""
        p_resnet = np.median(longhorn_runs["resnet"][METRIC_POWER])
        p_bert = np.median(longhorn_runs["bert"][METRIC_POWER])
        assert p_bert < p_resnet - 10.0


class TestTakeaway6_PersistentOutliers:
    def test_ml_outlier_nodes_overlap(self, longhorn_runs):
        """ResNet's and BERT's outlier nodes are the same (c002)."""
        resnet_report = flag_outlier_gpus(longhorn_runs["resnet"])
        bert_report = flag_outlier_gpus(longhorn_runs["bert"])
        shared = persistent_outliers([resnet_report, bert_report])
        assert shared  # non-empty overlap
        assert any(label.startswith("c002") for label in shared)

    def test_sgemm_worst_gpus_are_ml_outliers(self, longhorn_runs):
        """8 of the 10 worst SGEMM GPUs were also ResNet outliers."""
        from repro.core import worst_performers

        sgemm_worst = {g for g, _ in worst_performers(
            longhorn_runs["sgemm"], k=4
        )}
        resnet_nodes = set(flag_outlier_gpus(longhorn_runs["resnet"]).node_labels)
        overlap = {
            g for g in sgemm_worst
            if g.rsplit("-", 1)[0] in resnet_nodes
        }
        assert overlap


class TestTakeaway3_Cooling:
    def test_air_has_wider_temperature_spread_than_water(
        self, small_longhorn, small_vortex
    ):
        air = simulate_run(small_longhorn, sgemm())
        water = simulate_run(small_vortex, sgemm())
        air_iqr = np.subtract(
            *np.percentile(air.temperature_c, [75, 25])
        )
        water_iqr = np.subtract(
            *np.percentile(water.temperature_c, [75, 25])
        )
        assert air_iqr > water_iqr

    def test_water_does_not_remove_performance_variation(self, small_vortex):
        ds = run_campaign(small_vortex, sgemm(), CampaignConfig(days=2))
        stats = metric_boxstats(ds, METRIC_PERFORMANCE)
        assert stats.variation > 0.03  # still significant

    def test_vortex_power_within_5w_of_tdp(self, small_vortex):
        """Section IV-E: all Vortex GPUs within ~5 W of 300 W."""
        result = simulate_run(small_vortex, sgemm())
        assert np.percentile(result.true_power_w, 1) > 290.0

    def test_corona_runs_hot_and_below_tdp(self, small_corona):
        """Section IV-D: near-slowdown temps, never reaching 300 W."""
        result = simulate_run(small_corona, sgemm(n=24576))
        assert np.median(result.true_temperature_c) > 75.0
        assert result.true_temperature_c.max() <= 100.0
        assert np.median(result.true_power_w) < 300.0


class TestTakeaway9_Persistence:
    def test_variability_consistent_across_week(self, small_longhorn):
        ds = run_campaign(small_longhorn, sgemm(), CampaignConfig(days=7))
        summary = weekday_consistency(day_of_week_stats(ds))
        assert summary["median_drift"] < 0.02
        assert summary["variation_spread"] < 0.08


class TestPowerLimitSweep:
    def test_variability_grows_at_low_caps(self, tiny_cloudlab):
        """Fig. 22: 18% variation at 150 W vs 9% at 300 W."""
        def var_at(limit):
            runs = [
                simulate_run(tiny_cloudlab, sgemm(), day=0, run_index=i,
                             power_limit_w=limit).performance_ms
                for i in range(6)
            ]
            return metric_boxstats(
                _to_ds(np.concatenate(runs)), METRIC_PERFORMANCE,
                per_gpu_median=False,
            ).variation

        def _to_ds(perf):
            from repro.telemetry.dataset import MeasurementDataset
            return MeasurementDataset({METRIC_PERFORMANCE: perf})

        assert var_at(150.0) > var_at(300.0)

    def test_runtimes_grow_at_low_caps(self, tiny_cloudlab):
        full = simulate_run(tiny_cloudlab, sgemm(), power_limit_w=300.0)
        capped = simulate_run(tiny_cloudlab, sgemm(), power_limit_w=100.0)
        assert np.median(capped.performance_ms) > 1.5 * np.median(
            full.performance_ms
        )


class TestUserImpact:
    def test_multi_gpu_jobs_hit_slow_gpus_more(self, longhorn_runs):
        ds = longhorn_runs["sgemm"]
        single = slow_assignment_probability(ds, n_gpus=1)
        node = slow_assignment_probability(ds, n_gpus=4)
        assert node > single > 0.0
