"""Golden campaign fixtures: the specs, the builder, and the file layout.

Each golden fixture is one small, seeded SGEMM campaign per cluster preset
— the complete measurement table, serialized to canonical CSV and gzipped
(with a zeroed mtime so the archive bytes themselves are reproducible).
``tests/test_golden.py`` asserts the library's current output matches the
committed text byte-for-byte, which pins determinism across *refactors*,
not merely across shard counts: any change to an RNG stream, a draw order,
a float expression, or the CSV serialization shows up as a diff here.

Regenerate (only when a change is *intended* to alter streams) with::

    PYTHONPATH=src python tools/regen_golden.py
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path

from repro.cluster import (
    cloudlab,
    corona,
    frontera,
    longhorn,
    summit,
    vortex,
)
from repro.sim import CampaignConfig, run_campaign
from repro.telemetry.dataset import MeasurementDataset
from repro.telemetry.io import dataset_to_csv_text
from repro.workloads import sgemm
from repro.workloads.sgemm import SGEMM_N_AMD

__all__ = [
    "GOLDEN_DIR",
    "GOLDEN_SEED",
    "GOLDEN_CONFIG",
    "GOLDEN_CAMPAIGNS",
    "GoldenSpec",
    "build_golden_dataset",
    "golden_csv_text",
    "golden_path",
    "read_golden_text",
    "write_golden",
]

GOLDEN_DIR = Path(__file__).resolve().parent

#: One seed for all fixtures; distinct from the test-suite and benchmark
#: seeds so golden diffs cannot be masked by fixture reuse.
GOLDEN_SEED = 20221113

#: Two days, one run per day: long enough to cover the per-day facility
#: drift and the day-keyed RNG hierarchy, small enough to commit.
GOLDEN_CONFIG = CampaignConfig(days=2, runs_per_day=1)


@dataclass(frozen=True)
class GoldenSpec:
    """One golden fixture: a (preset, scale, SGEMM size) campaign."""

    preset: object  # cluster factory, e.g. repro.cluster.longhorn
    scale: float
    sgemm_n: int | None = None  # None = the workload default (NVIDIA size)

    def build_cluster(self):
        return self.preset(seed=GOLDEN_SEED, scale=self.scale)

    def build_workload(self):
        return sgemm() if self.sgemm_n is None else sgemm(n=self.sgemm_n)


#: Scales mirror the fast fixtures in tests/conftest.py: each keeps the
#: preset's signature structure (Longhorn's c002 cabinet, Summit's grid,
#: Corona's AMD dither) while staying a few hundred rows.
GOLDEN_CAMPAIGNS: dict[str, GoldenSpec] = {
    "longhorn-sgemm": GoldenSpec(longhorn, scale=0.25),
    "summit-sgemm": GoldenSpec(summit, scale=0.03125),
    "vortex-sgemm": GoldenSpec(vortex, scale=0.34),
    "frontera-sgemm": GoldenSpec(frontera, scale=0.34),
    "corona-sgemm": GoldenSpec(corona, scale=0.6, sgemm_n=SGEMM_N_AMD),
    "cloudlab-sgemm": GoldenSpec(cloudlab, scale=1.0),
}


def build_golden_dataset(name: str, *, tracer=None, manifest=None,
                         monitor=None, workers=None) -> MeasurementDataset:
    """Run the (small) campaign a golden fixture pins.

    ``tracer``/``manifest``/``monitor`` pass through to
    :func:`run_campaign` so the observability layer's zero-perturbation
    guarantee is pinned against the same fixtures (the output must be
    byte-identical either way).  ``workers`` likewise: the shard plan is
    execution shape only, so the fixtures also pin the parallel path.
    """
    spec = GOLDEN_CAMPAIGNS[name]
    return run_campaign(spec.build_cluster(), spec.build_workload(),
                        GOLDEN_CONFIG, tracer=tracer, manifest=manifest,
                        monitor=monitor, workers=workers)


def golden_csv_text(name: str, *, tracer=None, manifest=None,
                    monitor=None, workers=None) -> str:
    """The canonical CSV text of a freshly computed golden campaign."""
    return dataset_to_csv_text(
        build_golden_dataset(name, tracer=tracer, manifest=manifest,
                             monitor=monitor, workers=workers)
    )


def golden_path(name: str) -> Path:
    return GOLDEN_DIR / f"{name}.csv.gz"


def read_golden_text(name: str) -> str:
    """The committed fixture, decompressed to its canonical CSV text."""
    with gzip.open(golden_path(name), "rt", encoding="utf-8", newline="") as fh:
        return fh.read()


def write_golden(name: str) -> Path:
    """(Re)write one fixture with reproducible archive bytes (mtime=0)."""
    path = golden_path(name)
    data = golden_csv_text(name).encode("utf-8")
    with open(path, "wb") as raw:
        with gzip.GzipFile(fileobj=raw, mode="wb", mtime=0) as fh:
            fh.write(data)
    return path
