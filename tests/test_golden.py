"""Golden-regression tests: committed campaign output, byte-for-byte.

Each fixture under ``tests/golden/`` is a small seeded SGEMM campaign on
one cluster preset, serialized to the canonical typed-header CSV and
gzipped with a zeroed mtime.  The tests rebuild each campaign from
scratch and compare against the stored text *exactly* — any change to an
RNG stream, draw order, float expression, or the CSV writer fails here.

Intentional stream changes must regenerate the fixtures::

    PYTHONPATH=src python tools/regen_golden.py
"""

from __future__ import annotations

import pytest

from tests.golden import (
    GOLDEN_CAMPAIGNS,
    golden_csv_text,
    golden_path,
    read_golden_text,
)

ALL_NAMES = sorted(GOLDEN_CAMPAIGNS)


def test_every_fixture_is_committed():
    missing = [name for name in ALL_NAMES if not golden_path(name).exists()]
    assert not missing, (
        f"missing golden fixtures {missing}; run "
        "`PYTHONPATH=src python tools/regen_golden.py`"
    )


def test_fixture_text_is_wellformed():
    # Cheap structural check that runs in the quick (`-m 'not slow'`) loop:
    # typed header plus at least one data row per fixture.
    for name in ALL_NAMES:
        text = read_golden_text(name)
        lines = text.splitlines()
        assert len(lines) >= 2, name
        header = lines[0].split(",")
        assert all(":" in entry for entry in header), name


@pytest.mark.slow
@pytest.mark.parametrize("name", ALL_NAMES)
def test_campaign_output_matches_golden(name):
    expected = read_golden_text(name)
    actual = golden_csv_text(name)
    if actual != expected:  # pinpoint the first divergence before failing
        exp_lines = expected.splitlines()
        act_lines = actual.splitlines()
        for i, (e, a) in enumerate(zip(exp_lines, act_lines)):
            assert a == e, (
                f"{name}: first diff at line {i + 1}\n"
                f"  golden : {e}\n  current: {a}"
            )
        assert len(act_lines) == len(exp_lines), (
            f"{name}: row count changed "
            f"({len(exp_lines)} golden vs {len(act_lines)} current)"
        )
        pytest.fail(f"{name}: output text differs from committed golden")
