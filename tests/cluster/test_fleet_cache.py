"""Per-day and per-(day, shard) fleet memoization on :class:`Cluster`.

The campaign hot path calls ``cluster.fleet_slice(day, indices)`` once per
run; the cache must hand back the *same* fleet object for repeated (day,
shard) coordinates, distinct objects across days and differing index sets,
and must never leak across pickling (workers rebuild their own caches).
"""

import pickle

import numpy as np

from repro.cluster.cluster import _FLEET_CACHE_MAX, Cluster
from repro.cluster.cooling import WaterCooling
from repro.cluster.facility import FacilityModel
from repro.cluster.topology import cabinet_topology
from repro.gpu.defects import DefectConfig
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100


def make_cluster(seed=0, facility=None):
    topo = cabinet_topology("T", 12, 4, 3)
    return Cluster(
        name="T",
        spec=V100,
        topology=topo,
        cooling=WaterCooling(),
        silicon_config=SiliconConfig(),
        defect_config=DefectConfig.none(),
        facility=facility,
        seed=seed,
    )


def drifting_facility():
    """A facility whose coolant offset differs day to day."""
    return FacilityModel(
        weekday_offsets_c=(0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5),
        daily_sigma_c=0.0,
    )


class TestFleetForDay:
    def test_memoized_per_day(self):
        cluster = make_cluster(facility=drifting_facility())
        assert cluster.fleet_for_day(2) is cluster.fleet_for_day(2)

    def test_distinct_days_distinct_fleets(self):
        cluster = make_cluster(facility=drifting_facility())
        f0, f1 = cluster.fleet_for_day(0), cluster.fleet_for_day(1)
        assert f0 is not f1
        assert not np.array_equal(f0.coolant_c, f1.coolant_c)

    def test_cached_fleet_reflects_day_offset(self):
        cluster = make_cluster(facility=drifting_facility())
        for day in (0, 3, 0, 3):  # second pass comes from the cache
            fleet = cluster.fleet_for_day(day)
            offset = cluster.facility.coolant_offset_c(
                day, cluster.rng_factory
            )
            np.testing.assert_allclose(
                fleet.coolant_c, cluster.environment.coolant_c + offset
            )

    def test_day_fleets_share_power_model(self):
        # with_coolant reuses the electrical state — only the thermal
        # environment differs day to day.
        cluster = make_cluster(facility=drifting_facility())
        assert (
            cluster.fleet_for_day(1).power_model
            is cluster.fleet.power_model
        )

    def test_eviction_keeps_cache_bounded(self):
        cluster = make_cluster(facility=drifting_facility())
        for day in range(_FLEET_CACHE_MAX + 10):
            cluster.fleet_for_day(day)
        assert len(cluster._fleet_day_cache) <= _FLEET_CACHE_MAX
        # Evicted entries are simply recomputed, not errors.
        assert cluster.fleet_for_day(0).n == cluster.n_gpus


class TestFleetSlice:
    def test_memoized_per_day_and_indices(self):
        cluster = make_cluster(facility=drifting_facility())
        idx = np.arange(0, 24, dtype=np.int64)
        assert cluster.fleet_slice(1, idx) is cluster.fleet_slice(1, idx)

    def test_matches_uncached_take(self):
        cluster = make_cluster(facility=drifting_facility())
        idx = np.array([3, 7, 11, 40], dtype=np.int64)
        cached = cluster.fleet_slice(2, idx)
        direct = cluster.fleet_for_day(2).take(idx)
        np.testing.assert_array_equal(cached.coolant_c, direct.coolant_c)
        np.testing.assert_array_equal(
            cached.silicon.voltage_offset, direct.silicon.voltage_offset
        )
        np.testing.assert_array_equal(
            cached.defects.kind, direct.defects.kind
        )

    def test_day_key_separates_entries(self):
        cluster = make_cluster(facility=drifting_facility())
        idx = np.arange(8, dtype=np.int64)
        a, b = cluster.fleet_slice(0, idx), cluster.fleet_slice(1, idx)
        assert a is not b
        assert not np.array_equal(a.coolant_c, b.coolant_c)

    def test_different_indices_different_entries(self):
        cluster = make_cluster()
        a = cluster.fleet_slice(0, np.arange(8, dtype=np.int64))
        b = cluster.fleet_slice(0, np.arange(8, 16, dtype=np.int64))
        assert a is not b

    def test_dtype_does_not_alias_digests(self):
        # int32 [0, 1] and int64 [big] could share raw bytes; the cache key
        # carries the dtype so they must resolve to different slices.
        cluster = make_cluster()
        a32 = cluster.fleet_slice(0, np.array([1, 0], dtype=np.int32))
        a64 = cluster.fleet_slice(0, np.array([1], dtype=np.int64))
        assert a32.n == 2 and a64.n == 1

    def test_eviction_keeps_cache_bounded(self):
        cluster = make_cluster()
        for start in range(_FLEET_CACHE_MAX + 10):
            cluster.fleet_slice(
                0, np.arange(start, start + 4, dtype=np.int64) % cluster.n_gpus
            )
        assert len(cluster._fleet_slice_cache) <= _FLEET_CACHE_MAX


class TestPickling:
    def test_caches_do_not_travel(self):
        cluster = make_cluster(facility=drifting_facility())
        cluster.fleet_for_day(0)
        cluster.fleet_slice(0, np.arange(4, dtype=np.int64))
        clone = pickle.loads(pickle.dumps(cluster))
        assert clone._fleet_day_cache == {}
        assert clone._fleet_slice_cache == {}

    def test_clone_repopulates_identically(self):
        cluster = make_cluster(facility=drifting_facility())
        clone = pickle.loads(pickle.dumps(cluster))
        idx = np.array([1, 5, 9], dtype=np.int64)
        np.testing.assert_array_equal(
            cluster.fleet_slice(3, idx).coolant_c,
            clone.fleet_slice(3, idx).coolant_c,
        )
