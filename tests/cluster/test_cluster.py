"""Tests for the Cluster composition layer."""

import numpy as np
import pytest

from repro.cluster.cluster import Cluster, ForcedDefect
from repro.cluster.cooling import WaterCooling
from repro.cluster.facility import FacilityModel
from repro.cluster.topology import cabinet_topology
from repro.errors import ConfigError
from repro.gpu.defects import DefectConfig, DefectType
from repro.gpu.silicon import SiliconConfig
from repro.gpu.specs import V100


def make_cluster(seed=0, forced=(), defect_config=None, facility=None):
    topo = cabinet_topology("T", 12, 4, 3)
    return Cluster(
        name="T",
        spec=V100,
        topology=topo,
        cooling=WaterCooling(),
        silicon_config=SiliconConfig(),
        defect_config=defect_config or DefectConfig.none(),
        facility=facility,
        forced_defects=forced,
        seed=seed,
    )


class TestDeterminism:
    def test_same_seed_same_machine(self):
        a = make_cluster(seed=4)
        b = make_cluster(seed=4)
        np.testing.assert_array_equal(
            a.silicon.voltage_offset, b.silicon.voltage_offset
        )
        np.testing.assert_array_equal(
            a.environment.coolant_c, b.environment.coolant_c
        )

    def test_different_seed_different_machine(self):
        a = make_cluster(seed=4)
        b = make_cluster(seed=5)
        assert not np.array_equal(
            a.silicon.voltage_offset, b.silicon.voltage_offset
        )


class TestForcedDefects:
    def test_gpu_scope(self):
        cluster = make_cluster(forced=(
            ForcedDefect("gpu", "c001-002-1", DefectType.SICK_SLOW, 0.7),
        ))
        idx = cluster.topology.gpu_labels.index("c001-002-1")
        assert cluster.defects.kind[idx] == int(DefectType.SICK_SLOW)
        assert cluster.defects.frequency_cap_frac[idx] == 0.7

    def test_node_scope_with_count(self):
        cluster = make_cluster(forced=(
            ForcedDefect("node", "c002-001", DefectType.POWER_DELIVERY,
                         0.9, count=2),
        ))
        gpus = cluster.topology.gpus_of_node(
            cluster.topology.node_index("c002-001")
        )
        assert (cluster.defects.kind[gpus[:2]]
                == int(DefectType.POWER_DELIVERY)).all()
        assert (cluster.defects.kind[gpus[2:]] == int(DefectType.NONE)).all()

    def test_cabinet_scope(self):
        cluster = make_cluster(forced=(
            ForcedDefect("cabinet", "c003", DefectType.HOT_RUNNER, 1.8),
        ))
        cab_gpus = cluster.topology.cabinet_of_gpu == 2
        np.testing.assert_allclose(
            cluster.defects.extra_thermal_resistance[cab_gpus], 1.8
        )

    def test_unknown_label_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            make_cluster(forced=(
                ForcedDefect("gpu", "bogus", DefectType.SICK_SLOW, 0.7),
            ))

    def test_forced_resets_other_severities(self):
        """Forcing overrides any random defect already at that GPU."""
        cluster = make_cluster(
            defect_config=DefectConfig(
                power_delivery_rate=0.5, sick_slow_rate=0.0, hot_runner_rate=0.0
            ),
            forced=(ForcedDefect("gpu", "c001-001-0",
                                 DefectType.SICK_SLOW, 0.7),),
        )
        idx = cluster.topology.gpu_labels.index("c001-001-0")
        assert cluster.defects.power_cap_frac[idx] == 1.0
        assert cluster.defects.frequency_cap_frac[idx] == 0.7

    def test_forced_defect_validation(self):
        with pytest.raises(ConfigError):
            ForcedDefect("gpu", "x", DefectType.NONE, 1.0)
        with pytest.raises(ConfigError):
            ForcedDefect("rack", "x", DefectType.SICK_SLOW, 0.5)

    @pytest.mark.parametrize("kind,severity", [
        (DefectType.POWER_DELIVERY, 1.2),   # cap fraction above nominal
        (DefectType.SICK_SLOW, 1.01),       # frequency cap above f_max
        (DefectType.HOT_RUNNER, 0.9),       # resistance that improves cooling
        (DefectType.SICK_SLOW, -0.5),
        (DefectType.HOT_RUNNER, 0.0),
    ])
    def test_per_kind_severity_bounds(self, kind, severity):
        with pytest.raises(ConfigError):
            ForcedDefect("gpu", "c001-001-0", kind, severity)


class TestDayConditions:
    def test_day_zero_offset_applied(self):
        cluster = make_cluster(
            facility=FacilityModel(weekday_offsets_c=(2.0,) * 7,
                                   daily_sigma_c=0.0)
        )
        fleet = cluster.fleet_for_day(0)
        np.testing.assert_allclose(
            fleet.coolant_c, cluster.environment.coolant_c + 2.0
        )

    def test_steady_facility_returns_base_fleet(self):
        cluster = make_cluster(facility=FacilityModel.steady())
        assert cluster.fleet_for_day(3) is cluster.fleet


class TestConfig:
    def test_config_summary(self):
        cluster = make_cluster()
        cfg = cluster.config()
        assert cfg.n_gpus == 48
        assert cfg.n_nodes == 12
        assert cfg.cooling == "water"
        assert cfg.gpu_name == "V100"
        assert not cfg.admin_access

    def test_run_noise_validation(self):
        topo = cabinet_topology("T", 3, 4, 3)
        with pytest.raises(ConfigError):
            Cluster("T", V100, topo, WaterCooling(), SiliconConfig(),
                    DefectConfig.none(), run_noise_sigma=-0.1)
