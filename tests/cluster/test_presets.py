"""Tests for the paper's cluster presets (Table I)."""

import numpy as np
import pytest

from repro.cluster import (
    cloudlab,
    corona,
    frontera,
    get_preset,
    list_presets,
    longhorn,
    summit,
    vortex,
)
from repro.errors import ConfigError
from repro.gpu.defects import DefectType


class TestTableI:
    """Cluster inventory from Table I."""

    def test_longhorn(self):
        cl = longhorn()
        assert cl.n_gpus == 416
        assert cl.n_nodes == 104
        assert cl.spec.name == "V100"
        assert cl.cooling.kind == "air"

    def test_frontera(self):
        cl = frontera()
        assert cl.n_gpus == 360
        assert cl.n_nodes == 90
        assert cl.spec.name == "RTX5000"
        assert cl.cooling.kind == "oil"

    def test_vortex(self):
        cl = vortex()
        assert cl.n_gpus == 216
        assert cl.n_nodes == 54
        assert cl.cooling.kind == "water"

    def test_summit(self):
        cl = summit()
        assert cl.n_gpus == 27648
        assert cl.n_nodes == 4608
        assert cl.cooling.kind == "water"
        assert cl.topology.has_grid

    def test_corona(self):
        cl = corona()
        assert cl.n_nodes == 82
        assert cl.n_gpus == 328
        assert cl.spec.name == "MI60"
        assert cl.cooling.kind == "air"

    def test_cloudlab(self):
        cl = cloudlab()
        assert cl.n_gpus == 12
        assert cl.admin_access


class TestNamedOutliers:
    def test_longhorn_c002_stragglers(self):
        cl = longhorn(seed=0)
        cab = cl.topology.cabinet_labels.index("c002")
        cab_gpus = np.flatnonzero(cl.topology.cabinet_of_gpu == cab)
        sick = cl.defects.kind[cab_gpus] == int(DefectType.SICK_SLOW)
        assert sick.sum() >= 2

    def test_frontera_c197_pair(self):
        cl = frontera(seed=0)
        assert "c197" in cl.topology.cabinet_labels
        cab = cl.topology.cabinet_labels.index("c197")
        cab_gpus = np.flatnonzero(cl.topology.cabinet_of_gpu == cab)
        assert (cl.defects.kind[cab_gpus]
                == int(DefectType.SICK_SLOW)).sum() == 2

    def test_corona_c115_cooling_fault(self):
        cl = corona(seed=0)
        assert "c115" in cl.topology.cabinet_labels
        cab = cl.topology.cabinet_labels.index("c115")
        fault_gpus = cl.topology.cabinet_of_gpu == cab
        # The faulted cabinet's coolant is hotter than everyone else's.
        assert (cl.environment.coolant_c[fault_gpus].min()
                > cl.environment.coolant_c[~fault_gpus].max())

    def test_summit_rowh_col36_power_defects(self):
        cl = summit(seed=0)
        labels = cl.topology.gpu_labels
        idx = labels.index("rowh-col36-n10-2")
        assert cl.defects.kind[idx] == int(DefectType.POWER_DELIVERY)
        assert cl.defects.power_cap_frac[idx] == pytest.approx(0.85)

    def test_summit_rowh_col36_n02_hot_runner(self):
        cl = summit(seed=0)
        node = cl.topology.node_index("rowh-col36-n02")
        gpus = cl.topology.gpus_of_node(node)
        kinds = cl.defects.kind[gpus]
        assert (kinds == int(DefectType.HOT_RUNNER)).sum() >= 1


class TestScaling:
    def test_scale_shrinks_nodes(self):
        assert longhorn(scale=0.25).n_nodes < longhorn().n_nodes

    def test_scaled_longhorn_keeps_c002(self):
        cl = longhorn(scale=0.25)
        assert "c002" in cl.topology.cabinet_labels

    def test_scaled_summit_still_grid(self):
        cl = summit(scale=0.0625)
        assert cl.topology.has_grid
        assert cl.n_gpus < 2000

    def test_invalid_scale_rejected(self):
        with pytest.raises(ConfigError):
            longhorn(scale=0.0)
        with pytest.raises(ConfigError):
            longhorn(scale=1.5)

    def test_forced_defects_dropped_when_out_of_scale(self):
        # A tiny Frontera has no cabinet c197; the preset must not crash.
        cl = frontera(scale=0.05)
        assert "c197" not in cl.topology.cabinet_labels


class TestRegistry:
    def test_list_presets(self):
        assert set(list_presets()) == {
            "CloudLab", "Corona", "Frontera", "Longhorn", "Summit", "Vortex"
        }

    def test_get_preset_case_insensitive(self):
        assert get_preset("longhorn").name == "Longhorn"

    def test_get_preset_unknown(self):
        with pytest.raises(ConfigError):
            get_preset("perlmutter")
