"""Tests for machine-room topologies."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.cluster.topology import Topology, cabinet_topology, row_column_topology


class TestCabinetTopology:
    def test_sizes(self):
        topo = cabinet_topology("T", n_nodes=12, gpus_per_node=4,
                                nodes_per_cabinet=3)
        assert topo.n_nodes == 12
        assert topo.n_gpus == 48
        assert topo.n_cabinets == 4

    def test_node_label_format(self):
        topo = cabinet_topology("T", 6, 4, 3)
        assert topo.node_labels[0] == "c001-001"
        assert topo.node_labels[3] == "c002-001"

    def test_custom_cabinet_numbers(self):
        topo = cabinet_topology("T", 6, 4, 3, cabinet_numbers=(197, 198))
        assert topo.cabinet_labels == ("c197", "c198")
        assert topo.node_labels[0].startswith("c197")

    def test_insufficient_cabinet_numbers_rejected(self):
        with pytest.raises(ConfigError):
            cabinet_topology("T", 9, 4, 3, cabinet_numbers=(1, 2))

    def test_partial_last_cabinet(self):
        topo = cabinet_topology("T", 7, 4, 3)
        assert topo.n_cabinets == 3
        assert int((topo.cabinet_of_node == 2).sum()) == 1

    def test_gpu_labels(self):
        topo = cabinet_topology("T", 3, 2, 3)
        assert topo.gpu_labels[0] == "c001-001-0"
        assert topo.gpu_labels[5] == "c001-003-1"


class TestGridTopology:
    def test_sizes(self):
        topo = row_column_topology("S", n_rows=2, n_columns=3,
                                   nodes_per_column=4, gpus_per_node=6)
        assert topo.n_nodes == 24
        assert topo.n_gpus == 144
        assert topo.has_grid

    def test_summit_full_dimensions(self):
        topo = row_column_topology("Summit", 8, 36, 16, 6)
        assert topo.n_gpus == 27648  # Table I
        assert topo.n_nodes == 4608

    def test_label_format(self):
        topo = row_column_topology("S", 2, 3, 2, 1)
        assert topo.node_labels[0] == "rowa-col01-n01"
        assert topo.node_labels[-1] == "rowb-col03-n02"

    def test_row_and_column_indices(self):
        topo = row_column_topology("S", 2, 3, 2, 1)
        assert topo.row_of_node[0] == 0
        assert topo.row_of_node[-1] == 1
        np.testing.assert_array_equal(
            np.unique(topo.column_of_node), [0, 1, 2]
        )

    def test_location_groups_are_row_column_pairs(self):
        topo = row_column_topology("S", 2, 3, 2, 2)
        groups = topo.location_group_of_gpu()
        assert np.unique(groups).shape[0] == 6  # 2 rows x 3 cols

    def test_too_many_rows_rejected(self):
        with pytest.raises(ConfigError):
            row_column_topology("S", 27, 2, 2, 2)


class TestDerivedArrays:
    @pytest.fixture()
    def topo(self):
        return cabinet_topology("T", 6, 4, 3)

    def test_node_of_gpu(self, topo):
        np.testing.assert_array_equal(topo.node_of_gpu[:5], [0, 0, 0, 0, 1])

    def test_slot_of_gpu(self, topo):
        np.testing.assert_array_equal(topo.slot_of_gpu[:5], [0, 1, 2, 3, 0])

    def test_gpus_of_node(self, topo):
        np.testing.assert_array_equal(topo.gpus_of_node(1), [4, 5, 6, 7])

    def test_gpus_of_node_out_of_range(self, topo):
        with pytest.raises(IndexError):
            topo.gpus_of_node(99)

    def test_node_index_lookup(self, topo):
        assert topo.node_index("c002-001") == 3
        with pytest.raises(KeyError):
            topo.node_index("c099-001")

    def test_location_groups_are_cabinets(self, topo):
        np.testing.assert_array_equal(
            topo.location_group_of_gpu(), topo.cabinet_of_gpu
        )


class TestValidation:
    def test_empty_topology_rejected(self):
        with pytest.raises(ConfigError):
            cabinet_topology("T", 0, 4, 3)

    def test_cabinet_index_bounds_checked(self):
        with pytest.raises(ConfigError):
            Topology(
                cluster_name="T",
                gpus_per_node=1,
                node_labels=("n0",),
                cabinet_of_node=np.array([5]),
                cabinet_labels=("c001",),
            )

    def test_partial_grid_fields_rejected(self):
        with pytest.raises(ConfigError):
            Topology(
                cluster_name="T",
                gpus_per_node=1,
                node_labels=("n0",),
                cabinet_of_node=np.array([0]),
                cabinet_labels=("c001",),
                row_of_node=np.array([0]),  # missing column/labels
            )
