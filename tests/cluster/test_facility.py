"""Tests for the facility drift model."""

import pytest

from repro.cluster.facility import WEEKDAY_NAMES, FacilityModel
from repro.errors import ConfigError
from repro.rng import RngFactory


class TestWeekdays:
    def test_seven_names_monday_first(self):
        assert len(WEEKDAY_NAMES) == 7
        assert WEEKDAY_NAMES[0] == "Monday"
        assert WEEKDAY_NAMES[6] == "Sunday"

    def test_weekday_of_wraps(self):
        assert FacilityModel.weekday_of(0) == 0
        assert FacilityModel.weekday_of(7) == 0
        assert FacilityModel.weekday_of(9) == 2

    def test_weekday_name(self):
        assert FacilityModel.weekday_name(4) == "Friday"


class TestOffsets:
    def test_deterministic_per_day(self):
        model = FacilityModel()
        factory = RngFactory(3)
        a = model.coolant_offset_c(5, factory)
        b = model.coolant_offset_c(5, RngFactory(3))
        assert a == b

    def test_different_days_differ(self):
        model = FacilityModel(daily_sigma_c=1.0)
        factory = RngFactory(3)
        assert model.coolant_offset_c(1, factory) != model.coolant_offset_c(2, factory)

    def test_weekend_cooler_on_average(self):
        model = FacilityModel(daily_sigma_c=0.0)
        factory = RngFactory(0)
        weekday = model.coolant_offset_c(0, factory)   # Monday
        weekend = model.coolant_offset_c(5, factory)   # Saturday
        assert weekend < weekday

    def test_steady_facility_has_zero_offset(self):
        model = FacilityModel.steady()
        assert model.coolant_offset_c(3, RngFactory(0)) == 0.0

    def test_negative_day_rejected(self):
        with pytest.raises(ValueError):
            FacilityModel().coolant_offset_c(-1, RngFactory(0))


class TestValidation:
    def test_wrong_weekday_count_rejected(self):
        with pytest.raises(ConfigError):
            FacilityModel(weekday_offsets_c=(0.0,) * 6)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            FacilityModel(daily_sigma_c=-0.5)
