"""Property/stress tests for the indexed free-list allocator.

The batch-queue engine trusts three incrementally-maintained facts —
per-node free counts, the machine-wide total, and the free-count bucket
index — instead of recomputing them per query.  These tests hammer the
allocator with randomized allocate/free churn at full-Summit scale
(4608 nodes, 27648 GPUs) and check every incremental fact against a
brute-force shadow after each step batch.
"""

import numpy as np
import pytest

from repro.cluster.allocator import FreeListAllocator
from repro.cluster.topology import cabinet_topology

#: Full Summit: 4608 six-GPU nodes across 256 cabinets.
SUMMIT_NODES = 4608
SUMMIT_GPUS_PER_NODE = 6


def _summit_topology():
    return cabinet_topology(
        "Summit-stress", SUMMIT_NODES, SUMMIT_GPUS_PER_NODE, 256
    )


def _check_invariants(allocator):
    """Every incremental count equals its brute-force recomputation."""
    brute_counts = np.asarray(
        [len(allocator._free[n]) for n in range(allocator.topology.n_nodes)],
        dtype=np.int64,
    )
    np.testing.assert_array_equal(allocator.free_counts(), brute_counts)
    assert allocator.n_free == int(brute_counts.sum())
    assert allocator.n_busy == allocator.topology.n_gpus - allocator.n_free
    for k in range(SUMMIT_GPUS_PER_NODE + 2):
        assert allocator.n_nodes_with_at_least(k) == int(
            np.count_nonzero(brute_counts >= k)
        ), f"bucket index wrong at k={k}"


class TestFullSummitStress:
    def test_randomized_churn_preserves_all_invariants(self):
        topology = _summit_topology()
        allocator = FreeListAllocator(topology)
        rng = np.random.default_rng(2022)
        live = []
        for step in range(60):
            # allocate a random burst of gangs of width 1..12
            for _ in range(rng.integers(50, 200)):
                width = int(rng.choice([1, 2, 4, 6, 8, 12]))
                counts = allocator.free_counts()
                if width <= SUMMIT_GPUS_PER_NODE:
                    candidates = np.flatnonzero(counts >= width)
                    if candidates.shape[0] == 0:
                        continue
                    node = int(rng.choice(candidates))
                    live.append(allocator.allocate([(node, width)]))
                else:
                    if allocator.n_free < width:
                        continue
                    order = rng.permutation(topology.n_nodes)
                    requests, remaining = [], width
                    for node in order.tolist():
                        take = min(int(counts[node]), remaining)
                        if take > 0:
                            requests.append((int(node), take))
                            remaining -= take
                        if remaining == 0:
                            break
                    live.append(allocator.allocate(requests))
            # free a random half of what's running
            rng.shuffle(live)
            for _ in range(len(live) // 2):
                allocator.free(live.pop())
            if step % 10 == 0:
                _check_invariants(allocator)
        # drain completely and verify we are back to a pristine machine
        for gang in live:
            allocator.free(gang)
        _check_invariants(allocator)
        assert allocator.n_free == topology.n_gpus
        assert allocator.n_nodes_with_at_least(SUMMIT_GPUS_PER_NODE) == (
            SUMMIT_NODES
        )

    def test_no_gpu_ever_double_booked_under_churn(self):
        topology = _summit_topology()
        allocator = FreeListAllocator(topology)
        rng = np.random.default_rng(7)
        live = []
        for _ in range(2000):
            if live and rng.random() < 0.45:
                allocator.free(live.pop(int(rng.integers(0, len(live)))))
            else:
                counts = allocator.free_counts_view()
                candidates = np.flatnonzero(counts >= 3)
                if candidates.shape[0] == 0:
                    continue
                node = int(rng.choice(candidates))
                live.append(allocator.allocate([(node, 3)]))
        taken = np.concatenate(
            [g.gpu_indices for g in live]
        ) if live else np.empty(0, dtype=np.int64)
        assert np.unique(taken).shape[0] == taken.shape[0]
        assert allocator.n_busy == taken.shape[0]

    def test_listener_sees_every_count_change(self):
        topology = _summit_topology()
        allocator = FreeListAllocator(topology)
        shadow = allocator.free_counts()
        events = []

        def listener(node, new):
            events.append((node, new))
            shadow[node] = new

        allocator.add_listener(listener)
        rng = np.random.default_rng(3)
        live = []
        for _ in range(500):
            if live and rng.random() < 0.5:
                allocator.free(live.pop())
            else:
                counts = allocator.free_counts_view()
                candidates = np.flatnonzero(counts >= 2)
                node = int(rng.choice(candidates))
                live.append(allocator.allocate([(node, 2)]))
        assert events, "listener never fired"
        np.testing.assert_array_equal(shadow, allocator.free_counts())

    def test_fit_checks_are_constant_time_at_scale(self):
        """The O(1) fit probes never touch the per-node array."""
        import timeit

        small = FreeListAllocator(cabinet_topology("S", 16, 6, 2))
        big = FreeListAllocator(_summit_topology())
        t_small = timeit.timeit(
            lambda: small.n_nodes_with_at_least(4), number=20_000
        )
        t_big = timeit.timeit(
            lambda: big.n_nodes_with_at_least(4), number=20_000
        )
        # same work at 288x the node count; allow generous jitter
        assert t_big < 10 * t_small


class TestBucketIndexEdges:
    def test_k_zero_and_oversized_k(self):
        allocator = FreeListAllocator(cabinet_topology("T", 4, 4, 2))
        assert allocator.n_nodes_with_at_least(0) == 4
        assert allocator.n_nodes_with_at_least(-1) == 4
        assert allocator.n_nodes_with_at_least(5) == 0

    def test_failed_allocate_mutates_nothing(self):
        allocator = FreeListAllocator(cabinet_topology("T", 4, 4, 2))
        allocator.allocate([(0, 3)])
        before = allocator.free_counts()
        with pytest.raises(Exception):
            allocator.allocate([(1, 2), (0, 2)])
        np.testing.assert_array_equal(allocator.free_counts(), before)
        assert allocator.n_nodes_with_at_least(4) == 3
        assert allocator.n_nodes_with_at_least(1) == 4
