"""Tests for cooling-plant models."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.cluster.cooling import (
    AirCooling,
    CoolingFault,
    MineralOilCooling,
    WaterCooling,
)
from repro.cluster.topology import cabinet_topology


@pytest.fixture()
def topo():
    return cabinet_topology("T", 30, 4, 3)


class TestEnvironments:
    def test_air_wider_than_water(self, topo, rng):
        air = AirCooling().environment(topo, np.random.default_rng(0))
        water = WaterCooling().environment(topo, np.random.default_rng(0))
        assert air.coolant_c.std() > water.coolant_c.std()

    def test_air_slot_gradient(self, topo):
        env = AirCooling(cabinet_sigma_c=0.0, node_sigma_c=0.0,
                         slot_gradient_c=2.0).environment(
            topo, np.random.default_rng(0)
        )
        # Within a node, later slots see warmer air.
        first_node = env.coolant_c[:4]
        np.testing.assert_allclose(np.diff(first_node), 2.0)

    def test_water_uniform_within_node(self, topo):
        env = WaterCooling(node_sigma_c=1.0).environment(
            topo, np.random.default_rng(0)
        )
        first_node = env.coolant_c[:4]
        assert np.ptp(first_node) == 0.0

    def test_oil_shared_within_cabinet(self, topo):
        env = MineralOilCooling(cabinet_sigma_c=2.0).environment(
            topo, np.random.default_rng(0)
        )
        first_cabinet = env.coolant_c[:12]
        assert np.ptp(first_cabinet) == 0.0

    def test_oil_bath_temperature_level(self, topo):
        env = MineralOilCooling(bath_c=48.0, cabinet_sigma_c=0.0).environment(
            topo, np.random.default_rng(0)
        )
        np.testing.assert_allclose(env.coolant_c, 48.0)

    def test_r_theta_ranking(self, topo):
        """Air presents the highest junction-to-coolant resistance."""
        rng = np.random.default_rng(0)
        air = AirCooling().environment(topo, rng)
        water = WaterCooling().environment(topo, rng)
        assert air.r_theta_base_c_per_w[0] > water.r_theta_base_c_per_w[0]

    def test_environment_size(self, topo):
        env = WaterCooling().environment(topo, np.random.default_rng(0))
        assert env.n == topo.n_gpus

    def test_deterministic_given_rng(self, topo):
        a = AirCooling().environment(topo, np.random.default_rng(5))
        b = AirCooling().environment(topo, np.random.default_rng(5))
        np.testing.assert_array_equal(a.coolant_c, b.coolant_c)


class TestFaults:
    def test_node_fault_heats_only_that_node(self, topo):
        cooling = WaterCooling(
            node_sigma_c=0.0,
            faults=(CoolingFault("node", "c002-001", 15.0),),
        )
        env = cooling.environment(topo, np.random.default_rng(0))
        node = topo.node_index("c002-001")
        hot = topo.gpus_of_node(node)
        np.testing.assert_allclose(env.coolant_c[hot], 25.0 + 15.0)
        mask = np.ones(topo.n_gpus, dtype=bool)
        mask[hot] = False
        np.testing.assert_allclose(env.coolant_c[mask], 25.0)

    def test_cabinet_fault(self, topo):
        cooling = MineralOilCooling(
            cabinet_sigma_c=0.0,
            faults=(CoolingFault("cabinet", "c002", 10.0),),
        )
        env = cooling.environment(topo, np.random.default_rng(0))
        cab_gpus = topo.cabinet_of_gpu == 1
        np.testing.assert_allclose(env.coolant_c[cab_gpus], 58.0)

    def test_unknown_cabinet_label_rejected(self, topo):
        cooling = AirCooling(faults=(CoolingFault("cabinet", "c099", 10.0),))
        with pytest.raises(ConfigError, match="unknown cabinet"):
            cooling.environment(topo, np.random.default_rng(0))

    def test_unknown_node_label_rejected(self, topo):
        cooling = AirCooling(faults=(CoolingFault("node", "bogus", 10.0),))
        with pytest.raises(KeyError):
            cooling.environment(topo, np.random.default_rng(0))

    def test_fault_validation(self):
        with pytest.raises(ConfigError):
            CoolingFault("rack", "c001", 5.0)
        with pytest.raises(ConfigError):
            CoolingFault("node", "c001-001", -2.0)


class TestValidation:
    def test_nonpositive_resistance_rejected(self):
        with pytest.raises(ConfigError):
            AirCooling(r_theta_base_c_per_w=0.0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ConfigError):
            WaterCooling(node_sigma_c=-1.0)

    def test_kind_attributes(self):
        assert AirCooling.kind == "air"
        assert WaterCooling.kind == "water"
        assert MineralOilCooling.kind == "oil"
