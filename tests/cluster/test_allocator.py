"""Tests for the exclusive-node allocator."""

import numpy as np
import pytest

from repro.cluster.allocator import ExclusiveNodeAllocator
from repro.cluster.topology import cabinet_topology
from repro.errors import AllocationError


@pytest.fixture()
def allocator():
    return ExclusiveNodeAllocator(cabinet_topology("T", 12, 4, 3))


class TestAllocateNode:
    def test_whole_node(self, allocator):
        alloc = allocator.allocate_node(2)
        np.testing.assert_array_equal(alloc.gpu_indices, [8, 9, 10, 11])
        assert alloc.n_gpus == 4
        assert alloc.node_index == 2

    def test_partial_node(self, allocator):
        alloc = allocator.allocate_node(0, n_gpus=2)
        np.testing.assert_array_equal(alloc.gpu_indices, [0, 1])

    def test_too_many_gpus_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate_node(0, n_gpus=5)


class TestSweep:
    def test_full_sweep_covers_everything(self, allocator):
        allocations = allocator.sweep()
        assert len(allocations) == 12
        all_gpus = np.concatenate([a.gpu_indices for a in allocations])
        np.testing.assert_array_equal(np.sort(all_gpus), np.arange(48))

    def test_partial_coverage(self, allocator, rng):
        allocations = allocator.sweep(coverage=0.5, rng=rng)
        assert len(allocations) == 6

    def test_coverage_needs_rng(self, allocator):
        with pytest.raises(AllocationError, match="rng"):
            allocator.sweep(coverage=0.5)

    def test_invalid_coverage(self, allocator, rng):
        with pytest.raises(AllocationError):
            allocator.sweep(coverage=0.0, rng=rng)

    def test_coverage_sample_varies_by_rng(self, allocator):
        a = allocator.sweep(coverage=0.5, rng=np.random.default_rng(1))
        b = allocator.sweep(coverage=0.5, rng=np.random.default_rng(2))
        nodes_a = [x.node_index for x in a]
        nodes_b = [x.node_index for x in b]
        assert nodes_a != nodes_b


class TestRandomAssignment:
    def test_stays_within_one_node(self, allocator, rng):
        for _ in range(20):
            alloc = allocator.random_assignment(4, rng)
            nodes = alloc.gpu_indices // 4
            assert np.unique(nodes).shape[0] == 1

    def test_single_gpu(self, allocator, rng):
        alloc = allocator.random_assignment(1, rng)
        assert alloc.n_gpus == 1

    def test_partial_node_sorted_unique(self, allocator, rng):
        alloc = allocator.random_assignment(2, rng)
        assert alloc.n_gpus == 2
        assert alloc.gpu_indices[0] < alloc.gpu_indices[1]

    def test_oversized_job_rejected(self, allocator, rng):
        with pytest.raises(AllocationError):
            allocator.random_assignment(5, rng)


class TestInputValidation:
    @pytest.mark.parametrize("bad", [2.5, True, "4", 4.0])
    def test_allocate_node_rejects_non_integer_counts(self, allocator, bad):
        with pytest.raises(AllocationError, match="integer"):
            allocator.allocate_node(0, n_gpus=bad)

    @pytest.mark.parametrize("bad", [2.5, True, "4", 4.0])
    def test_random_assignment_rejects_non_integer_counts(
        self, allocator, rng, bad
    ):
        with pytest.raises(AllocationError, match="integer"):
            allocator.random_assignment(bad, rng)

    def test_numpy_integers_accepted(self, allocator, rng):
        alloc = allocator.allocate_node(0, n_gpus=np.int64(2))
        assert alloc.n_gpus == 2
        assert allocator.random_assignment(np.int64(1), rng).n_gpus == 1


class TestDeterminism:
    def test_seeded_random_assignment_reproducible(self, allocator):
        draws_a = [
            allocator.random_assignment(2, np.random.default_rng(42))
            for _ in range(5)
        ]
        draws_b = [
            allocator.random_assignment(2, np.random.default_rng(42))
            for _ in range(5)
        ]
        for a, b in zip(draws_a, draws_b):
            assert a.node_index == b.node_index
            np.testing.assert_array_equal(a.gpu_indices, b.gpu_indices)

    def test_seeded_sweep_reproducible(self, allocator):
        a = allocator.sweep(coverage=0.7, rng=np.random.default_rng(9))
        b = allocator.sweep(coverage=0.7, rng=np.random.default_rng(9))
        assert [x.node_index for x in a] == [x.node_index for x in b]

    def test_sweep_never_double_books(self, allocator):
        for coverage in (0.5, 0.9, 1.0):
            allocations = allocator.sweep(
                coverage=coverage, rng=np.random.default_rng(3)
            )
            gpus = np.concatenate([a.gpu_indices for a in allocations])
            assert np.unique(gpus).shape[0] == gpus.shape[0]


class TestSweepCoverageOnPresets:
    """The paper's protocol needs >90% of nodes on every studied system."""

    @pytest.mark.parametrize(
        "preset", ["longhorn", "vortex", "corona", "frontera", "cloudlab"]
    )
    def test_sweep_covers_at_least_90pct_of_nodes(self, preset):
        from repro.cluster import get_preset

        cluster = get_preset(preset, seed=0, scale=0.5)
        sweeper = ExclusiveNodeAllocator(cluster.topology)
        allocations = sweeper.sweep(
            coverage=0.92, rng=np.random.default_rng(17)
        )
        covered = {a.node_index for a in allocations}
        assert len(covered) >= 0.9 * cluster.topology.n_nodes
        gpus = np.concatenate([a.gpu_indices for a in allocations])
        assert np.unique(gpus).shape[0] == gpus.shape[0]

    def test_summit_scaled_preview_covers_nodes(self):
        from repro.cluster import get_preset

        cluster = get_preset("summit", seed=0, scale=0.05)
        sweeper = ExclusiveNodeAllocator(cluster.topology)
        allocations = sweeper.sweep(
            coverage=0.92, rng=np.random.default_rng(17)
        )
        assert len({a.node_index for a in allocations}) >= (
            0.9 * cluster.topology.n_nodes
        )


class TestFreeListAllocator:
    @pytest.fixture()
    def freelist(self):
        from repro.cluster.allocator import FreeListAllocator

        return FreeListAllocator(cabinet_topology("T", 12, 4, 3))

    def test_starts_fully_free(self, freelist):
        assert freelist.n_free == 48
        assert freelist.n_busy == 0
        np.testing.assert_array_equal(freelist.free_counts(), [4] * 12)

    def test_partial_node_sharing(self, freelist):
        a = freelist.allocate([(0, 2)])
        b = freelist.allocate([(0, 2)])
        np.testing.assert_array_equal(a.gpu_indices, [0, 1])
        np.testing.assert_array_equal(b.gpu_indices, [2, 3])
        assert freelist.free_counts()[0] == 0

    def test_multi_node_gang(self, freelist):
        gang = freelist.allocate([(1, 4), (2, 4)])
        assert gang.n_nodes == 2
        assert gang.n_gpus == 8
        np.testing.assert_array_equal(gang.node_indices, [1, 2])

    def test_free_then_reuse_grants_same_gpus(self, freelist):
        first = freelist.allocate([(3, 3)])
        freelist.free(first)
        second = freelist.allocate([(3, 3)])
        np.testing.assert_array_equal(first.gpu_indices, second.gpu_indices)

    def test_never_double_books(self, freelist):
        grants = [freelist.allocate([(n, 4)]) for n in range(12)]
        gpus = np.concatenate([g.gpu_indices for g in grants])
        assert np.unique(gpus).shape[0] == 48
        with pytest.raises(AllocationError, match="free"):
            freelist.allocate([(0, 1)])

    def test_double_free_rejected(self, freelist):
        gang = freelist.allocate([(0, 2)])
        freelist.free(gang)
        with pytest.raises(AllocationError, match="already free"):
            freelist.free(gang)

    def test_overask_rejected_without_leaking(self, freelist):
        freelist.allocate([(0, 3)])
        with pytest.raises(AllocationError):
            freelist.allocate([(1, 2), (0, 2)])
        # the failed call must not have taken node 1's GPUs
        assert freelist.free_counts()[1] == 4

    def test_duplicate_node_in_request_rejected(self, freelist):
        with pytest.raises(AllocationError, match="twice"):
            freelist.allocate([(0, 2), (0, 2)])

    def test_non_integer_request_rejected(self, freelist):
        with pytest.raises(AllocationError, match="integer"):
            freelist.allocate([(0, 2.5)])

    def test_empty_request_rejected(self, freelist):
        with pytest.raises(AllocationError, match="at least one"):
            freelist.allocate([])

    def test_grant_sequence_is_deterministic(self):
        from repro.cluster.allocator import FreeListAllocator

        def run():
            fl = FreeListAllocator(cabinet_topology("T", 12, 4, 3))
            taken = []
            a = fl.allocate([(0, 4)])
            b = fl.allocate([(1, 2)])
            fl.free(a)
            c = fl.allocate([(0, 1), (1, 1), (2, 1)])
            taken.extend(a.gpu_indices.tolist())
            taken.extend(b.gpu_indices.tolist())
            taken.extend(c.gpu_indices.tolist())
            return taken

        assert run() == run()
