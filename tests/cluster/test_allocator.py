"""Tests for the exclusive-node allocator."""

import numpy as np
import pytest

from repro.cluster.allocator import ExclusiveNodeAllocator
from repro.cluster.topology import cabinet_topology
from repro.errors import AllocationError


@pytest.fixture()
def allocator():
    return ExclusiveNodeAllocator(cabinet_topology("T", 12, 4, 3))


class TestAllocateNode:
    def test_whole_node(self, allocator):
        alloc = allocator.allocate_node(2)
        np.testing.assert_array_equal(alloc.gpu_indices, [8, 9, 10, 11])
        assert alloc.n_gpus == 4
        assert alloc.node_index == 2

    def test_partial_node(self, allocator):
        alloc = allocator.allocate_node(0, n_gpus=2)
        np.testing.assert_array_equal(alloc.gpu_indices, [0, 1])

    def test_too_many_gpus_rejected(self, allocator):
        with pytest.raises(AllocationError):
            allocator.allocate_node(0, n_gpus=5)


class TestSweep:
    def test_full_sweep_covers_everything(self, allocator):
        allocations = allocator.sweep()
        assert len(allocations) == 12
        all_gpus = np.concatenate([a.gpu_indices for a in allocations])
        np.testing.assert_array_equal(np.sort(all_gpus), np.arange(48))

    def test_partial_coverage(self, allocator, rng):
        allocations = allocator.sweep(coverage=0.5, rng=rng)
        assert len(allocations) == 6

    def test_coverage_needs_rng(self, allocator):
        with pytest.raises(AllocationError, match="rng"):
            allocator.sweep(coverage=0.5)

    def test_invalid_coverage(self, allocator, rng):
        with pytest.raises(AllocationError):
            allocator.sweep(coverage=0.0, rng=rng)

    def test_coverage_sample_varies_by_rng(self, allocator):
        a = allocator.sweep(coverage=0.5, rng=np.random.default_rng(1))
        b = allocator.sweep(coverage=0.5, rng=np.random.default_rng(2))
        nodes_a = [x.node_index for x in a]
        nodes_b = [x.node_index for x in b]
        assert nodes_a != nodes_b


class TestRandomAssignment:
    def test_stays_within_one_node(self, allocator, rng):
        for _ in range(20):
            alloc = allocator.random_assignment(4, rng)
            nodes = alloc.gpu_indices // 4
            assert np.unique(nodes).shape[0] == 1

    def test_single_gpu(self, allocator, rng):
        alloc = allocator.random_assignment(1, rng)
        assert alloc.n_gpus == 1

    def test_partial_node_sorted_unique(self, allocator, rng):
        alloc = allocator.random_assignment(2, rng)
        assert alloc.n_gpus == 2
        assert alloc.gpu_indices[0] < alloc.gpu_indices[1]

    def test_oversized_job_rejected(self, allocator, rng):
        with pytest.raises(AllocationError):
            allocator.random_assignment(5, rng)
