"""Cross-validation between independent paths through the model.

Different components compute the same physical quantities by different
routes (time-stepped work accounting vs roofline algebra; campaign medians
vs direct solves; projection formula vs Monte Carlo).  These tests pin
them against each other — the strongest internal-consistency checks the
simulator has.
"""

import numpy as np
import pytest

from repro.core import metric_boxstats, pearson
from repro.sim import CampaignConfig, run_campaign, simulate_run
from repro.sim.engine import Engine, EngineConfig
from repro.telemetry.sample import METRIC_PERFORMANCE
from repro.workloads import sgemm


class TestEngineVsRoofline:
    def test_emergent_kernel_duration_matches_roofline(self, tiny_cloudlab):
        """The engine never *prescribes* kernel durations — they emerge from
        work retired at the instantaneous clock.  At settle, they must match
        the roofline evaluated at the settled frequency."""
        fleet = tiny_cloudlab.fleet.take(np.arange(2))
        wl = sgemm()
        engine = Engine(fleet, wl, EngineConfig(thermal_time_scale=25.0))

        # Let DVFS and thermals settle first.
        engine.run_for(30.0)
        settled_f = engine.frequency_mhz().copy()
        start_counts = engine.state.kernels_completed.copy()
        start_time = engine.state.time_s

        engine.run_for(30.0)
        kernels_done = engine.state.kernels_completed - start_counts
        assert np.all(kernels_done >= 2)
        # Average wall-clock per kernel (including the launch gap).
        per_kernel_s = (engine.state.time_s - start_time) / kernels_done

        predicted_ms = wl.unit_time_ms(
            settled_f,
            fleet.spec.compute_throughput,
            fleet.memory_bandwidth_gbs(),
            fleet.throughput_efficiency(),
        )
        gap_s = engine.config.launch_gap_s
        np.testing.assert_allclose(
            per_kernel_s, predicted_ms / 1000.0 + gap_s, rtol=0.06
        )


class TestCampaignVsDirectSolve:
    def test_campaign_medians_match_single_run(self, small_longhorn):
        """A campaign is runs + noise; its per-GPU medians must agree with a
        direct noiseless-ish run to within the noise scale."""
        campaign = run_campaign(
            small_longhorn, sgemm(), CampaignConfig(days=3, runs_per_day=2)
        )
        medians = campaign.per_gpu_median(METRIC_PERFORMANCE)
        direct = simulate_run(small_longhorn, sgemm(), day=0, run_index=0)

        order = np.argsort(medians["gpu_index"])
        ratio = (medians[METRIC_PERFORMANCE][order]
                 / direct.performance_ms)
        assert np.median(np.abs(ratio - 1.0)) < 0.01
        # And the fleet statistics agree.
        v_campaign = metric_boxstats(campaign, METRIC_PERFORMANCE).variation
        from repro.core.boxstats import BoxStats
        v_direct = BoxStats.from_values(direct.performance_ms).variation
        assert v_campaign == pytest.approx(v_direct, rel=0.35)


class TestReportedVsTrueSensors:
    def test_sensor_path_is_unbiased(self, small_longhorn):
        run = simulate_run(small_longhorn, sgemm())
        # Reported power differs from truth by gain/noise but not by bias.
        rel = run.power_w / run.true_power_w
        assert abs(np.median(rel) - 1.0) < 0.01
        assert rel.std() < 0.03
        # Reported temperature within rounding + noise of truth.
        assert np.abs(run.temperature_c - run.true_temperature_c).max() < 4.0

    def test_reported_frequency_tracks_truth(self, small_longhorn):
        run = simulate_run(small_longhorn, sgemm())
        assert pearson(run.frequency_mhz, run.true_frequency_mhz) > 0.98


class TestProjectionInternalConsistency:
    def test_projection_at_own_size_recovers_measurement(self, sgemm_dataset):
        """Projecting a fleet to its *own* size should approximately return
        the measured variation (the formula's fixed point)."""
        from repro.core import project_variation

        med = sgemm_dataset.per_gpu_median(METRIC_PERFORMANCE)
        values = med[METRIC_PERFORMANCE]
        measured = metric_boxstats(sgemm_dataset, METRIC_PERFORMANCE).variation
        projected = project_variation(values, values.shape[0])
        # The robust-normal fit ignores the defect tail, so allow slack.
        assert projected == pytest.approx(measured, rel=0.35)
