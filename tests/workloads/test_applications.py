"""Tests for the five application models (Table II fidelity)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.gpu.specs import MI60, V100
from repro.workloads import (
    bert_pretraining,
    get_workload,
    lammps_reaxc,
    list_workloads,
    pagerank,
    resnet50,
    sgemm,
)
from repro.workloads.sgemm import SGEMM_N_AMD, SGEMM_N_NVIDIA


def _unit_ms(wl, spec=V100, f=None):
    f = f if f is not None else spec.f_max_mhz
    return float(wl.unit_time_ms(
        f, spec.compute_throughput, spec.mem_bandwidth_gbs * 0.93
    ))


class TestSGEMM:
    def test_single_compute_phase(self):
        wl = sgemm()
        assert len(wl.phases) == 1
        assert wl.phases[0].activity == 1.0
        assert wl.fu_utilization == 10.0  # Section V-A

    def test_nvidia_kernel_duration_in_paper_band(self):
        """~2.1-2.5 s per kernel on a V100 (Figs. 2, 5)."""
        t = _unit_ms(sgemm(), V100, f=1385.0)
        assert 2000.0 < t < 2600.0

    def test_amd_kernel_duration_in_paper_band(self):
        """~2.2 s on an MI60 at its settled clocks (Fig. 6b)."""
        t = _unit_ms(sgemm(n=SGEMM_N_AMD), MI60, f=1725.0)
        assert 1800.0 < t < 2400.0

    def test_compute_bound(self):
        wl = sgemm()
        assert wl.compute_fraction(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        ) == 1.0

    def test_default_repetitions(self):
        assert sgemm().units_per_run == 100  # Section IV-A

    def test_tiny_matrix_rejected(self):
        with pytest.raises(ValueError):
            sgemm(n=16)

    def test_flop_count(self):
        wl = sgemm(n=1000)
        assert wl.total_flop_per_unit() == pytest.approx(2e9)


class TestResNet:
    def test_multi_gpu_default(self):
        wl = resnet50()
        assert wl.n_gpus == 4
        assert wl.performance_metric == "iteration_ms"
        assert wl.units_per_run == 500

    def test_iteration_duration_near_paper(self):
        """Iterations land near the 100-150 ms band of Fig. 15a."""
        t = _unit_ms(resnet50(), V100)
        assert 80.0 < t < 160.0

    def test_single_gpu_variant(self):
        wl = resnet50(batch_size=16, n_gpus=1)
        assert wl.n_gpus == 1
        assert wl.sync_overhead_ms == 0.0
        # Same per-GPU work, no allreduce: faster iterations (Section V-A).
        assert _unit_ms(wl, V100) <= _unit_ms(resnet50(), V100)

    def test_fu_utilization_from_paper(self):
        assert resnet50().fu_utilization == pytest.approx(5.4)

    def test_batch_must_divide(self):
        with pytest.raises(ValueError):
            resnet50(batch_size=10, n_gpus=4)

    def test_below_tdp_at_boost(self):
        """ResNet must not exceed TDP at boost (it runs at 1530 MHz)."""
        wl = resnet50()
        act, dram = wl.steady_load(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        )
        p = (
            act * V100.c_eff_w_per_v2mhz * V100.v_max**2 * V100.f_max_mhz
            + dram * V100.mem_power_max_w
            + V100.idle_power_w
            + V100.leakage_nominal_w * np.exp(V100.leakage_temp_coeff * 35.0)
        )
        assert p < V100.tdp_w


class TestBERT:
    def test_characterization(self):
        wl = bert_pretraining()
        assert wl.n_gpus == 4
        assert wl.units_per_run == 250  # Section V-B
        assert wl.fu_utilization < resnet50().fu_utilization

    def test_lower_activity_than_resnet(self):
        """BERT's GEMMs are less intense => ~40 W lower power (Takeaway 6)."""
        act_bert, _ = bert_pretraining().steady_load(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        )
        act_resnet, _ = resnet50().steady_load(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        )
        assert act_bert < act_resnet

    def test_batch_must_divide(self):
        with pytest.raises(ValueError):
            bert_pretraining(batch_size=10, n_gpus=4)


class TestLAMMPS:
    def test_memory_bound(self):
        wl = lammps_reaxc()
        frac = wl.compute_fraction(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        )
        assert frac < 0.1

    def test_long_kernels_in_paper_band(self):
        """Four long kernels spanning 20-200 ms (Section V-C)."""
        wl = lammps_reaxc()
        long_phases = [p for p in wl.phases if p.name != "short_kernels"]
        assert len(long_phases) == 4
        times = [
            float(p.time_ms(V100.f_max_mhz, V100.compute_throughput,
                            V100.mem_bandwidth_gbs * 0.93))
            for p in long_phases
        ]
        assert min(times) > 15.0
        assert max(times) < 250.0

    def test_long_kernels_dominate(self):
        """Long kernels are ~98% of the runtime (Section V-C)."""
        wl = lammps_reaxc()
        total = float(wl.unit_time_ms(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        ))
        short = [p for p in wl.phases if p.name == "short_kernels"][0]
        t_short = float(short.time_ms(
            V100.f_max_mhz, V100.compute_throughput, V100.mem_bandwidth_gbs
        ))
        assert t_short / total < 0.05

    def test_work_scales_with_grid(self):
        small = lammps_reaxc(grid=(4, 16, 16))
        big = lammps_reaxc(grid=(8, 16, 16))
        assert big.total_bytes_per_unit() == pytest.approx(
            2.0 * small.total_bytes_per_unit()
        )

    def test_invalid_grid_rejected(self):
        with pytest.raises(ValueError):
            lammps_reaxc(grid=(0, 16, 16))

    def test_aggregate_metric(self):
        assert lammps_reaxc().performance_metric == "aggregate_ms"


class TestRegistry:
    def test_all_paper_workloads_listed(self):
        names = list_workloads()
        for expected in ("sgemm", "sgemm-amd", "resnet50", "resnet50-1gpu",
                         "bert", "lammps", "pagerank"):
            assert expected in names

    def test_get_workload(self):
        assert get_workload("SGEMM").name == "SGEMM"
        assert get_workload("sgemm-amd").total_flop_per_unit() == pytest.approx(
            2.0 * SGEMM_N_AMD**3
        )

    def test_unknown_workload(self):
        with pytest.raises(ConfigError):
            get_workload("hpl")

    def test_nvidia_default_size(self):
        assert get_workload("sgemm").total_flop_per_unit() == pytest.approx(
            2.0 * SGEMM_N_NVIDIA**3
        )
