"""Tests for the workload/roofline abstraction."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigError
from repro.workloads.base import (
    SERIALIZATION_FRACTION,
    KernelPhase,
    Workload,
    roofline_time_ms,
)


class TestRoofline:
    def test_compute_bound_scales_inverse_frequency(self):
        t1 = roofline_time_ms(1e12, 1e3, 1000.0, 1e7, 900.0)
        t2 = roofline_time_ms(1e12, 1e3, 2000.0, 1e7, 900.0)
        assert t1 / t2 == pytest.approx(2.0, rel=1e-3)

    def test_memory_bound_flat_in_frequency(self):
        t1 = roofline_time_ms(1e3, 1e11, 1000.0, 1e7, 900.0)
        t2 = roofline_time_ms(1e3, 1e11, 2000.0, 1e7, 900.0)
        assert t1 == pytest.approx(t2, rel=0.01)

    def test_memory_bound_scales_inverse_bandwidth(self):
        t1 = roofline_time_ms(0.0, 1e11, 1500.0, 1e7, 900.0)
        t2 = roofline_time_ms(0.0, 1e11, 1500.0, 1e7, 450.0)
        assert t2 / t1 == pytest.approx(2.0)

    def test_serialization_term(self):
        # Pure legs with equal lengths: t = long + frac * short.
        t = roofline_time_ms(1.5e10, 1e9, 1500.0, 1e7, 1000.0)
        t_c = 1.5e10 / (1500.0 * 1e7)
        t_m = 1e9 / (1000.0 * 1e6)
        assert t == pytest.approx(
            max(t_c, t_m) + SERIALIZATION_FRACTION * min(t_c, t_m)
        )

    def test_efficiency_slows_compute_leg(self):
        fast = roofline_time_ms(1e12, 0.0, 1500.0, 1e7, 900.0, efficiency=1.0)
        slow = roofline_time_ms(1e12, 0.0, 1500.0, 1e7, 900.0, efficiency=0.5)
        assert slow == pytest.approx(2.0 * fast)

    @settings(max_examples=40, deadline=None)
    @given(
        flop=st.floats(min_value=1e6, max_value=1e15),
        mem=st.floats(min_value=1e3, max_value=1e12),
        f=st.floats(min_value=100.0, max_value=2000.0),
    )
    def test_property_positive_and_monotone(self, flop, mem, f):
        t = roofline_time_ms(flop, mem, f, 1e7, 900.0)
        assert t > 0
        t_hi = roofline_time_ms(flop, mem, f * 1.1, 1e7, 900.0)
        assert t_hi <= t + 1e-12  # never slower at higher clocks


class TestKernelPhase:
    def test_validation(self):
        with pytest.raises(ConfigError):
            KernelPhase("x", -1.0, 1.0, 0.5, 0.5)
        with pytest.raises(ConfigError):
            KernelPhase("x", 0.0, 0.0, 0.5, 0.5)
        with pytest.raises(ConfigError):
            KernelPhase("x", 1.0, 1.0, 1.5, 0.5)
        with pytest.raises(ConfigError):
            KernelPhase("x", 1.0, 1.0, 0.5, 0.5, launches=0)

    def test_time_vectorized(self):
        phase = KernelPhase("x", 1e12, 1e6, 0.5, 0.3)
        f = np.array([1000.0, 1500.0])
        t = phase.time_ms(f, 1e7, 900.0)
        assert t.shape == (2,)
        assert t[0] > t[1]


def _workload(**over):
    base = dict(
        name="W",
        phases=(
            KernelPhase("a", 1e12, 1e6, 0.8, 0.3),
            KernelPhase("b", 1e9, 1e10, 0.3, 0.8),
        ),
    )
    base.update(over)
    return Workload(**base)


class TestWorkload:
    def test_unit_time_sums_phases(self):
        wl = _workload()
        total = float(wl.unit_time_ms(1500.0, 1e7, 900.0))
        parts = sum(
            float(p.time_ms(1500.0, 1e7, 900.0)) * p.launches
            for p in wl.phases
        )
        assert total == pytest.approx(parts)

    def test_launch_multiplicity(self):
        one = _workload(phases=(KernelPhase("a", 1e12, 1e6, 0.8, 0.3),))
        two = _workload(
            phases=(KernelPhase("a", 1e12, 1e6, 0.8, 0.3, launches=2),)
        )
        assert float(two.unit_time_ms(1500.0, 1e7, 900.0)) == pytest.approx(
            2.0 * float(one.unit_time_ms(1500.0, 1e7, 900.0))
        )

    def test_steady_load_is_time_weighted(self):
        wl = _workload()
        act, dram = wl.steady_load(1500.0, 1e7, 900.0)
        assert 0.3 < act < 0.8
        assert 0.3 < dram < 0.8
        # Phase a dominates the time, so the weights lean toward it.
        assert act > 0.55

    def test_single_phase_steady_load_is_exact(self):
        wl = _workload(phases=(KernelPhase("a", 1e12, 1e6, 0.77, 0.41),))
        act, dram = wl.steady_load(1500.0, 1e7, 900.0)
        assert act == pytest.approx(0.77)
        assert dram == pytest.approx(0.41)

    def test_compute_fraction(self):
        compute = _workload(phases=(KernelPhase("a", 1e13, 1e3, 1.0, 0.3),))
        memory = _workload(phases=(KernelPhase("a", 1e3, 1e11, 0.3, 0.8),))
        assert compute.compute_fraction(1500.0, 1e7, 900.0) == 1.0
        assert memory.compute_fraction(1500.0, 1e7, 900.0) == 0.0

    def test_totals(self):
        wl = _workload()
        assert wl.total_flop_per_unit() == pytest.approx(1e12 + 1e9)
        assert wl.total_bytes_per_unit() == pytest.approx(1e6 + 1e10)

    def test_is_multi_gpu(self):
        assert not _workload().is_multi_gpu
        assert _workload(n_gpus=4).is_multi_gpu

    def test_validation(self):
        with pytest.raises(ConfigError):
            _workload(phases=())
        with pytest.raises(ConfigError):
            _workload(performance_metric="fps")
        with pytest.raises(ConfigError):
            _workload(fu_utilization=11.0)
        with pytest.raises(ConfigError):
            _workload(activity_speed_correlation=1.5)
