"""Tests for the PageRank workload and its real SpMV substrate."""

import networkx as nx
import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.workloads.pagerank import (
    RAJAT30_NNZ,
    RAJAT30_NODES,
    derive_spmv_phase,
    pagerank,
    pagerank_pull,
    synthesize_circuit_graph,
)


class TestSynthesizedGraph:
    def test_shape_and_symmetry(self):
        adj = synthesize_circuit_graph(n_nodes=2000)
        assert adj.shape == (2000, 2000)
        diff = (adj - adj.T).tocoo()
        assert diff.nnz == 0  # undirected

    def test_mean_degree_near_target(self):
        adj = synthesize_circuit_graph(n_nodes=20_000, avg_degree=9.6)
        mean_degree = adj.nnz / adj.shape[0]
        assert 6.0 < mean_degree < 13.0

    def test_heavy_tailed_hubs(self):
        adj = synthesize_circuit_graph(n_nodes=20_000)
        degrees = np.asarray(adj.sum(axis=1)).ravel()
        assert degrees.max() > 8.0 * degrees.mean()

    def test_deterministic_default(self):
        a = synthesize_circuit_graph(n_nodes=500)
        b = synthesize_circuit_graph(n_nodes=500)
        assert (a != b).nnz == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            synthesize_circuit_graph(n_nodes=2)
        with pytest.raises(ConfigError):
            synthesize_circuit_graph(avg_degree=1.0)


class TestPagerankPull:
    def test_sums_to_one(self):
        adj = synthesize_circuit_graph(n_nodes=500)
        rank, _ = pagerank_pull(adj)
        assert rank.sum() == pytest.approx(1.0)
        assert np.all(rank > 0)

    def test_matches_networkx(self):
        """Cross-validate against the reference implementation."""
        graph = nx.erdos_renyi_graph(200, 0.05, seed=3)
        adj = nx.to_scipy_sparse_array(graph, format="csr")
        ours, _ = pagerank_pull(sp.csr_matrix(adj), damping=0.85, tol=1e-12)
        reference = nx.pagerank(graph, alpha=0.85, tol=1e-12)
        ref = np.array([reference[i] for i in range(200)])
        np.testing.assert_allclose(ours, ref, atol=1e-8)

    def test_converges(self):
        adj = synthesize_circuit_graph(n_nodes=300)
        _, iterations = pagerank_pull(adj, tol=1e-10)
        assert iterations < 200

    def test_handles_dangling_nodes(self):
        adj = sp.csr_matrix(np.array([
            [0, 1, 0],
            [0, 0, 0],   # dangling
            [1, 1, 0],
        ], dtype=float))
        rank, _ = pagerank_pull(adj)
        assert rank.sum() == pytest.approx(1.0)

    def test_star_graph_hub_ranks_highest(self):
        graph = nx.star_graph(20)
        adj = sp.csr_matrix(nx.to_scipy_sparse_array(graph))
        rank, _ = pagerank_pull(adj)
        assert np.argmax(rank) == 0

    def test_invalid_damping(self):
        adj = synthesize_circuit_graph(n_nodes=100)
        with pytest.raises(ConfigError):
            pagerank_pull(adj, damping=1.5)

    def test_non_square_rejected(self):
        with pytest.raises(ConfigError):
            pagerank_pull(sp.csr_matrix(np.ones((2, 3))))


class TestDerivedWorkload:
    def test_phase_from_matrix(self):
        adj = synthesize_circuit_graph(n_nodes=1000)
        phase = derive_spmv_phase(adj)
        assert phase.compute_flop == pytest.approx(2.0 * adj.nnz)
        assert phase.memory_bytes > adj.nnz * 12  # irregularity inflation

    def test_default_is_rajat30_sized(self):
        wl = pagerank()
        assert wl.total_flop_per_unit() == pytest.approx(2.0 * RAJAT30_NNZ)
        assert f"{RAJAT30_NODES}" in wl.input_description

    def test_paper_characterization(self):
        """61% memory stalls, not compute-bound (Section V-D)."""
        wl = pagerank()
        assert wl.mem_stall_frac == pytest.approx(0.61)
        assert wl.fu_utilization < 2.0

    def test_kernel_exceeds_profiler_floor(self):
        """Input sized so kernels run >1 ms (Section III)."""
        from repro.gpu.specs import V100
        t = float(pagerank().unit_time_ms(
            V100.f_max_mhz, V100.compute_throughput,
            V100.mem_bandwidth_gbs * 0.93
        ))
        assert t > 1.0

    def test_implausible_graph_rejected(self):
        with pytest.raises(ConfigError):
            pagerank(n_nodes=100, nnz=10)
