"""Tests for the real host-CPU microbenchmark path."""

import numpy as np
import pytest

from repro.core import metric_boxstats, per_gpu_repeatability
from repro.core.classify import ApplicationClass, CounterProfile, classify_counters
from repro.hostbench import (
    KERNELS,
    HostBenchConfig,
    gemm_kernel,
    run_host_benchmark,
    spmv_kernel,
    stream_kernel,
)


class TestKernels:
    def test_registry(self):
        assert set(KERNELS) == {"gemm", "spmv", "stream"}

    def test_gemm_runs_and_checksums(self):
        kernel = gemm_kernel(n=64)
        a = kernel.run()
        b = kernel.run()
        assert a == b  # deterministic inputs
        assert np.isfinite(a)

    def test_gemm_flop_count(self):
        kernel = gemm_kernel(n=100)
        assert kernel.flop == pytest.approx(2e6)

    def test_spmv_runs(self):
        kernel = spmv_kernel(n=500, nnz_per_row=4)
        assert np.isfinite(kernel.run())
        assert kernel.workload_class == "memory-latency-bound"

    def test_stream_runs(self):
        kernel = stream_kernel(n=10_000)
        assert np.isfinite(kernel.run())
        assert kernel.bytes_moved == pytest.approx(3 * 10_000 * 8)

    def test_size_validation(self):
        with pytest.raises(Exception):
            gemm_kernel(n=2)
        with pytest.raises(Exception):
            stream_kernel(n=10)


class TestHarness:
    @pytest.fixture(scope="class")
    def dataset(self):
        return run_host_benchmark(
            gemm_kernel(n=96),
            HostBenchConfig(blocks=4, reps_per_block=5, warmup_reps=1),
        )

    def test_schema(self, dataset):
        for column in ("workload", "gpu_index", "gpu_label", "node_label",
                       "run", "performance_ms", "achieved_gflops",
                       "achieved_gbs", "checksum"):
            assert column in dataset

    def test_row_count(self, dataset):
        assert dataset.n_rows == 20

    def test_real_timings_positive(self, dataset):
        assert np.all(dataset["performance_ms"] > 0)
        assert np.all(dataset["achieved_gflops"] > 0)

    def test_kernel_by_name(self):
        ds = run_host_benchmark(
            "stream", HostBenchConfig(blocks=2, reps_per_block=3)
        )
        assert ds["workload"][0] == "host-stream"

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            run_host_benchmark("fft")

    def test_analysis_pipeline_applies(self, dataset):
        """The whole point: repro.core works on real measurements."""
        stats = metric_boxstats(dataset, "performance_ms")
        assert stats.n == 4  # per-block medians
        rep = per_gpu_repeatability(dataset)
        assert rep.n_rows == 4
        assert np.all(rep["repeat_variation"] >= 0)

    def test_classification_of_host_kernels(self):
        """gemm classifies compute-ish, spmv memory-latency-ish."""
        gemm_profile = CounterProfile(
            fu_utilization=9.0, dram_utilization=0.2, mem_stall_frac=0.05
        )
        spmv_profile = CounterProfile(
            fu_utilization=1.0, dram_utilization=0.25, mem_stall_frac=0.6
        )
        assert classify_counters(gemm_profile) is ApplicationClass.COMPUTE_BOUND
        assert (classify_counters(spmv_profile)
                is ApplicationClass.MEMORY_LATENCY_BOUND)

    def test_config_validation(self):
        with pytest.raises(Exception):
            HostBenchConfig(blocks=0)
