"""HTTP surface of the fleet service: routing, parity, backpressure.

Servers bind ``port=0`` (ephemeral) and every test runs its own event
loop via ``asyncio.run`` — no fixed ports, no cross-test state.
"""

import asyncio
import threading

from repro import api
from repro.loadgen.client import http_request
from repro.service import (
    FleetService,
    ServiceConfig,
    decode_response,
    validate_response,
)
from repro.telemetry.io import dataset_to_csv_text


def _with_service(coro, config=None, runner=None):
    """Run ``coro(service)`` against a started ephemeral-port service."""

    async def wrapper():
        service = FleetService(
            config if config is not None else ServiceConfig(port=0),
            runner=runner,
        )
        await service.start()
        try:
            return await coro(service)
        finally:
            await service.stop()

    return asyncio.run(wrapper())


def _post(service, kind, request, timeout_s=60.0):
    return http_request(
        "127.0.0.1", service.port, "POST", f"/v1/{kind}",
        request.to_json().encode(), timeout_s,
    )


class TestRouting:
    def test_healthz(self):
        async def scenario(service):
            return await http_request(
                "127.0.0.1", service.port, "GET", "/v1/healthz"
            )

        reply = _with_service(scenario)
        assert reply.status == 200
        assert decode_response(reply.body)["status"] == "ok"

    def test_metrics_exposition(self):
        async def scenario(service):
            await _post(
                service, "characterize",
                api.CharacterizeRequest(cluster="cloudlab", scale=0.5, days=1),
            )
            return await http_request(
                "127.0.0.1", service.port, "GET", "/metrics"
            )

        reply = _with_service(scenario)
        assert reply.status == 200
        text = reply.body.decode()
        assert "service_requests_total 1" in text
        assert "service_request_latency_s" in text

    def test_unknown_route_404(self):
        async def scenario(service):
            return await http_request(
                "127.0.0.1", service.port, "GET", "/v1/nonsense"
            )

        assert _with_service(scenario).status == 404

    def test_wrong_method_405(self):
        async def scenario(service):
            return await http_request(
                "127.0.0.1", service.port, "GET", "/v1/characterize"
            )

        assert _with_service(scenario).status == 405

    def test_bad_json_400(self):
        async def scenario(service):
            return await http_request(
                "127.0.0.1", service.port, "POST", "/v1/characterize",
                b"{not json",
            )

        reply = _with_service(scenario)
        assert reply.status == 400
        assert decode_response(reply.body)["error"]["code"] == "bad_json"

    def test_kind_mismatch_400(self):
        async def scenario(service):
            return await http_request(
                "127.0.0.1", service.port, "POST", "/v1/screen",
                api.CharacterizeRequest(
                    cluster="cloudlab", scale=0.5, days=1
                ).to_json().encode(),
            )

        assert _with_service(scenario).status == 400

    def test_invalid_field_400(self):
        async def scenario(service):
            return await http_request(
                "127.0.0.1", service.port, "POST", "/v1/characterize",
                b'{"scale": 7.0}',
            )

        assert _with_service(scenario).status == 400


class TestParity:
    def test_characterize_csv_matches_offline_facade_bytes(self):
        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1, seed=3
        )

        async def scenario(service):
            return await _post(service, "characterize", request)

        reply = _with_service(scenario)
        assert reply.status == 200
        payload = decode_response(reply.body)
        assert validate_response(payload) == "characterize"
        offline = api.characterize(request=request)
        assert payload["csv"].encode() == (
            dataset_to_csv_text(offline.dataset).encode()
        )
        assert payload["request"] == request.to_dict()

    def test_cache_hit_bodies_are_byte_identical(self):
        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1
        )

        async def scenario(service):
            first = await _post(service, "characterize", request)
            second = await _post(service, "characterize", request)
            return first, second

        first, second = _with_service(scenario)
        assert first.headers["x-repro-cache"] == "miss"
        assert second.headers["x-repro-cache"] == "hit"
        assert first.body == second.body
        assert first.headers["x-repro-digest"] == api.request_digest(request)


class TestBackpressureHttp:
    def test_saturation_returns_429(self):
        release = threading.Event()

        def slow_runner(request):
            assert release.wait(5.0)
            return b'{"ok":1}'

        config = ServiceConfig(port=0, workers=1, max_pending=1)
        first_req = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1, seed=0
        )
        second_req = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1, seed=1
        )

        async def scenario(service):
            first = asyncio.ensure_future(
                _post(service, "characterize", first_req)
            )
            await asyncio.sleep(0.05)  # occupy the only admission slot
            second = await _post(service, "characterize", second_req)
            release.set()
            return await first, second

        first, second = _with_service(scenario, config, slow_runner)
        assert first.status == 200
        assert second.status == 429
        assert "retry-after" in second.headers

    def test_deadline_returns_503_then_cache_serves_the_result(self):
        release = threading.Event()

        def slow_runner(request):
            assert release.wait(5.0)
            return b'{"late":1}'

        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1, deadline_s=0.05
        )

        async def scenario(service):
            timed_out = await _post(service, "characterize", request)
            release.set()
            for _ in range(100):
                if len(service.cache):
                    break
                await asyncio.sleep(0.01)
            served = await _post(service, "characterize", request)
            return timed_out, served

        timed_out, served = _with_service(
            scenario, ServiceConfig(port=0), slow_runner
        )
        assert timed_out.status == 503
        assert served.status == 200
        assert served.headers["x-repro-cache"] == "hit"
        assert served.body == b'{"late":1}'


class TestWorkCountersAndTimeline:
    def test_metrics_expose_solver_work_and_uptime(self):
        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1
        )

        async def scenario(service):
            await _post(service, "characterize", request)
            await _post(service, "characterize", request)  # cache hit
            return await http_request(
                "127.0.0.1", service.port, "GET", "/metrics"
            )

        reply = _with_service(scenario)
        text = reply.body.decode()
        assert text.endswith("\n")
        assert "repro_solver_solves" in text
        assert "repro_solver_batches" in text
        assert "repro_service_uptime_seconds" in text
        uptime = [line for line in text.splitlines()
                  if line.startswith("repro_service_uptime_seconds ")]
        assert float(uptime[0].split()[1]) > 0.0

    def test_runner_counters_merge_once_per_execution(self):
        def counting_runner(request):
            return b'{"ok":1}', {"solver.solves": 5, "engine.batches": 2}

        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1
        )

        async def scenario(service):
            await _post(service, "characterize", request)
            await _post(service, "characterize", request)  # hit: no re-merge
            return await http_request(
                "127.0.0.1", service.port, "GET", "/metrics"
            )

        reply = _with_service(scenario, runner=counting_runner)
        text = reply.body.decode()
        assert "repro_solver_solves 5" in text
        assert "repro_engine_batches 2" in text

    def test_timeline_streams_admissions_with_header_ids(self, tmp_path):
        from repro.obs.timeline import read_timeline

        path = tmp_path / "svc.jsonl"
        config = ServiceConfig(port=0, timeline_path=str(path))
        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1
        )

        async def scenario(service):
            first = await _post(service, "characterize", request)
            second = await _post(service, "characterize", request)
            return first, second

        first, second = _with_service(scenario, config)
        assert first.headers["x-repro-timeline"] == "1"
        assert second.headers["x-repro-timeline"] == "2"
        _, events = read_timeline(path)
        assert events[0].kind == "service_start"
        admits = [e for e in events if e.kind == "admit"]
        assert [e.value("status") for e in admits] == ["miss", "hit"]
        assert all(e.value("verb") == "characterize" for e in admits)
        assert admits[0].entity == api.request_digest(request)

    def test_no_timeline_header_without_recorder(self):
        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1
        )

        async def scenario(service):
            return await _post(service, "characterize", request)

        reply = _with_service(scenario)
        assert "x-repro-timeline" not in reply.headers
