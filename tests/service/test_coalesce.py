"""Broker semantics: single-flight coalescing, cache keying, deadlines.

All tests drive the :class:`~repro.service.coalesce.CoalescingBroker`
directly with stub runners (no HTTP, no campaigns): the properties under
test — one execution per digest, byte-identical cache hits, non-poisoning
deadlines — are broker properties, not physics.
"""

import asyncio
import threading

import pytest

from repro.errors import DeadlineExceeded, ServiceSaturated, SimulationError
from repro.obs.metrics import MetricsRegistry
from repro.service import CoalescingBroker, ResponseCache, WorkerPool


class _Gate:
    """A stub runner that blocks until released, counting executions."""

    def __init__(self, body=b'{"v":1}'):
        self.body = body
        self.release = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, request):
        with self._lock:
            self.calls += 1
        assert self.release.wait(5.0), "gate never released"
        return self.body


def _broker(runner, workers=2, max_pending=4, cache_entries=8):
    pool = WorkerPool(workers=workers, max_pending=max_pending)
    cache = ResponseCache(max_entries=cache_entries)
    return CoalescingBroker(runner, pool, cache, MetricsRegistry()), pool


class TestResponseCache:
    def test_fifo_eviction(self):
        cache = ResponseCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.put("c", b"3")
        assert cache.get("a") is None
        assert cache.get("b") == b"2"
        assert cache.get("c") == b"3"
        assert len(cache) == 2

    def test_zero_entries_disables_caching(self):
        cache = ResponseCache(max_entries=0)
        cache.put("a", b"1")
        assert cache.get("a") is None

    def test_get_does_not_reorder(self):
        cache = ResponseCache(max_entries=2)
        cache.put("a", b"1")
        cache.put("b", b"2")
        cache.get("a")  # an LRU would now protect "a"
        cache.put("c", b"3")
        assert cache.get("a") is None  # FIFO: insertion order decides


class TestCoalescing:
    def test_concurrent_identical_requests_share_one_execution(self):
        gate = _Gate()
        broker, pool = _broker(gate)

        async def run():
            waiters = [broker.submit("req", "digest-1") for _ in range(5)]
            await asyncio.sleep(0.05)  # everyone queued behind one future
            gate.release.set()
            return await asyncio.gather(*waiters)

        replies = asyncio.run(run())
        pool.shutdown()
        assert gate.calls == 1
        assert [r.status for r in replies].count("miss") == 1
        assert [r.status for r in replies].count("coalesced") == 4
        assert len({r.body for r in replies}) == 1
        assert broker.metrics.counter("service_campaigns_executed") == 1
        assert broker.metrics.counter("service_coalesced_requests") == 4

    def test_distinct_digests_never_coalesce(self):
        gate = _Gate()
        broker, pool = _broker(gate)

        async def run():
            waiters = [
                broker.submit(f"req-{i}", f"digest-{i}") for i in range(3)
            ]
            await asyncio.sleep(0.05)
            gate.release.set()
            return await asyncio.gather(*waiters)

        replies = asyncio.run(run())
        pool.shutdown()
        assert gate.calls == 3
        assert all(r.status == "miss" for r in replies)
        assert broker.metrics.counter("service_coalesced_requests") == 0

    def test_cache_hits_are_byte_identical(self):
        gate = _Gate(body=b'{"payload":"exact-bytes"}')
        gate.release.set()
        broker, pool = _broker(gate)

        async def run():
            first = await broker.submit("req", "digest-1")
            second = await broker.submit("req", "digest-1")
            return first, second

        first, second = asyncio.run(run())
        pool.shutdown()
        assert gate.calls == 1
        assert first.status == "miss" and second.status == "hit"
        assert first.body == second.body == b'{"payload":"exact-bytes"}'
        assert broker.metrics.counter("service_cache_hits") == 1


class TestBackpressure:
    def test_saturated_pool_raises_for_fresh_digests(self):
        gate = _Gate()
        broker, pool = _broker(gate, workers=1, max_pending=1)

        async def run():
            first = broker.submit("a", "digest-a")
            with pytest.raises(ServiceSaturated):
                broker.submit("b", "digest-b")
            gate.release.set()
            await first

        asyncio.run(run())
        pool.shutdown()
        assert broker.metrics.counter("service_rejected_saturated") == 1

    def test_saturation_does_not_block_coalesced_joins(self):
        gate = _Gate()
        broker, pool = _broker(gate, workers=1, max_pending=1)

        async def run():
            first = broker.submit("a", "digest-a")
            joined = broker.submit("a", "digest-a")  # no pool slot needed
            gate.release.set()
            return await asyncio.gather(first, joined)

        replies = asyncio.run(run())
        pool.shutdown()
        assert {r.status for r in replies} == {"miss", "coalesced"}


class TestDeadlines:
    def test_expiry_raises_without_poisoning_the_cache(self):
        gate = _Gate(body=b'{"late":"but-correct"}')
        broker, pool = _broker(gate)

        async def run():
            with pytest.raises(DeadlineExceeded):
                await broker.submit("req", "digest-1", deadline_s=0.02)
            gate.release.set()
            # the shared execution was NOT cancelled: it completes and
            # populates the cache for the next caller.
            for _ in range(100):
                if broker.cache.get("digest-1") is not None:
                    break
                await asyncio.sleep(0.01)
            reply = await broker.submit("req", "digest-1")
            return reply

        reply = asyncio.run(run())
        pool.shutdown()
        assert gate.calls == 1
        assert reply.status == "hit"
        assert reply.body == b'{"late":"but-correct"}'
        assert broker.metrics.counter("service_deadline_expired") == 1


class TestFailures:
    def test_failures_propagate_and_are_not_cached(self):
        calls = {"n": 0}

        def flaky(request):
            calls["n"] += 1
            if calls["n"] == 1:
                raise SimulationError("transient")
            return b'{"ok":1}'

        broker, pool = _broker(flaky)

        async def run():
            with pytest.raises(SimulationError):
                await broker.submit("req", "digest-1")
            assert broker.cache.get("digest-1") is None
            return await broker.submit("req", "digest-1")

        reply = asyncio.run(run())
        pool.shutdown()
        assert calls["n"] == 2  # the error was retried, not replayed
        assert reply.status == "miss"
        assert reply.body == b'{"ok":1}'
