"""The typed request surface: round-trips, validation, digest semantics."""

import json

import pytest

from repro import api
from repro.errors import ConfigError

ALL_KINDS = sorted(api.REQUEST_KINDS)


def _sample(kind):
    """A non-default instance of each request kind."""
    return {
        "characterize": api.CharacterizeRequest(
            cluster="cloudlab", workload="resnet50", seed=3, scale=0.5,
            days=2, runs_per_day=2, coverage=0.5, workers=2, solver="fleet",
        ),
        "screen": api.ScreenRequest(
            cluster="cloudlab", workloads=("sgemm", "pagerank"), seed=1,
            scale=0.5, days=2, min_confirmations=1,
        ),
        "sweep": api.SweepRequest(
            power_limits_w=(250.0, 150.0), seed=2, scale=0.5, runs=3,
        ),
        "schedule": api.ScheduleRequest(
            cluster="cloudlab", policy="backfill", seed=4, scale=0.5,
            n_jobs=10, trace_seed=9, diurnal_amplitude=0.3,
            day_of_week_weights=(1.0,) * 7, engine="indexed",
        ),
        "monitor": api.MonitorRequest(
            cluster="cloudlab", seed=5, scale=0.5, days=2, window=2,
        ),
        "chaos": api.ChaosRequest(
            scenario="pump-degradation", cluster="cloudlab", seed=6,
            scale=0.5, days=3, runs_per_day=1, n_jobs=5, trace_seed=2,
        ),
    }[kind]


class TestRoundTrip:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_json_round_trip_is_identity(self, kind):
        request = _sample(kind)
        rebuilt = api.request_from_json(request.to_json())
        assert rebuilt == request
        assert type(rebuilt) is type(request)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_dict_carries_kind_and_schema_version(self, kind):
        doc = _sample(kind).to_dict()
        assert doc["kind"] == kind
        assert doc["schema_version"] == api.REQUEST_SCHEMA_VERSION

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_json_is_canonical(self, kind):
        text = _sample(kind).to_json()
        assert text == json.dumps(
            json.loads(text), sort_keys=True, separators=(",", ":")
        )


class TestValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError, match="unknown request kind"):
            api.request_from_dict({"kind": "frobnicate"})

    def test_kind_mismatch_rejected(self):
        doc = api.CharacterizeRequest().to_dict()
        doc["kind"] = "screen"
        with pytest.raises(ConfigError):
            api.ScreenRequest.from_dict({**doc, "kind": "characterize"})

    def test_unknown_keys_rejected(self):
        doc = api.CharacterizeRequest().to_dict()
        doc["surprise"] = 1
        with pytest.raises(ConfigError):
            api.request_from_dict(doc)

    def test_foreign_schema_version_rejected(self):
        doc = api.CharacterizeRequest().to_dict()
        doc["schema_version"] = api.REQUEST_SCHEMA_VERSION + 1
        with pytest.raises(ConfigError, match="schema_version"):
            api.request_from_dict(doc)

    def test_non_json_rejected(self):
        with pytest.raises(ConfigError, match="not valid JSON"):
            api.request_from_json("{nope")

    def test_non_object_rejected(self):
        with pytest.raises(ConfigError, match="JSON object"):
            api.request_from_json("[1, 2]")

    def test_bad_field_values_rejected(self):
        with pytest.raises(ConfigError):
            api.CharacterizeRequest(scale=0.0)
        with pytest.raises(ConfigError):
            api.CharacterizeRequest(solver="warp")
        with pytest.raises(ConfigError):
            api.ScheduleRequest(engine="quantum")


class TestDigest:
    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_execution_fields_do_not_change_the_digest(self, kind):
        import dataclasses

        request = _sample(kind)
        retuned = dataclasses.replace(
            request, workers=4, solver="grid", deadline_s=1.5
        )
        assert api.request_digest(request) == api.request_digest(retuned)

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_result_fields_change_the_digest(self, kind):
        import dataclasses

        request = _sample(kind)
        reseeded = dataclasses.replace(request, seed=request.seed + 1)
        assert api.request_digest(request) != api.request_digest(reseeded)

    def test_distinct_kinds_never_collide(self):
        digests = {api.request_digest(_sample(kind)) for kind in ALL_KINDS}
        assert len(digests) == len(ALL_KINDS)

    def test_digest_requires_a_request(self):
        with pytest.raises(ConfigError):
            api.request_digest({"kind": "characterize"})


class TestExecuteRequest:
    def test_rejects_non_request_objects(self):
        with pytest.raises(ConfigError, match="request types"):
            api.execute_request({"kind": "characterize"})

    def test_dispatches_by_kind(self):
        result = api.execute_request(
            api.CharacterizeRequest(cluster="cloudlab", scale=0.5, days=1)
        )
        assert result.report.cluster_name == "CloudLab"
        assert result.dataset.n_rows > 0

    def test_request_path_matches_keyword_path(self):
        from repro.telemetry.io import dataset_to_csv_text

        request = api.CharacterizeRequest(
            cluster="cloudlab", scale=0.5, days=1, seed=3
        )
        via_request = api.characterize(request=request)
        via_keywords = api.characterize(
            cluster=api.load_preset("cloudlab", seed=3, scale=0.5),
            workload=api.load_workload("sgemm"),
            config=api.CampaignConfig(days=1),
        )
        assert dataset_to_csv_text(via_request.dataset) == (
            dataset_to_csv_text(via_keywords.dataset)
        )

    def test_request_plus_keywords_is_an_error(self):
        with pytest.raises(ConfigError, match="either"):
            api.characterize(
                request=api.CharacterizeRequest(),
                cluster=api.load_preset("cloudlab", scale=0.5),
            )
