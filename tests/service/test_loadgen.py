"""Load generator: seeded planning, report schema, coalescing economics.

Every end-to-end test self-hosts an in-process service with a stub
runner (``lambda request: b'{"ok":1}'``) so the suite measures the
service layer, not campaign physics.
"""

import pytest

from repro import api
from repro.errors import ConfigError, ServiceError
from repro.loadgen import (
    LATENCY_REPORT_SCHEMA_VERSION,
    LoadGenConfig,
    plan_requests,
    run_selfhosted,
    validate_latency_report,
)


def _stub_runner(request):
    return b'{"ok":1}'


class TestPlanning:
    def test_same_seed_same_plan(self):
        config = LoadGenConfig(n_requests=24, seed=7, mix=("characterize", "monitor"))
        assert plan_requests(config) == plan_requests(config)

    def test_different_seeds_differ(self):
        base = LoadGenConfig(n_requests=24, seed=0, duplicate_fraction=0.2, distinct=8)
        other = LoadGenConfig(n_requests=24, seed=1, duplicate_fraction=0.2, distinct=8)
        assert plan_requests(base) != plan_requests(other)

    def test_duplicate_fraction_one_collapses_to_one_digest(self):
        config = LoadGenConfig(n_requests=16, duplicate_fraction=1.0)
        digests = {api.request_digest(r) for r in plan_requests(config)}
        assert len(digests) == 1

    def test_duplicate_fraction_zero_spreads_over_variants(self):
        config = LoadGenConfig(
            n_requests=32, duplicate_fraction=0.0, distinct=4
        )
        digests = {api.request_digest(r) for r in plan_requests(config)}
        assert len(digests) > 1

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            LoadGenConfig(mode="sideways")
        with pytest.raises(ConfigError):
            LoadGenConfig(n_requests=0)
        with pytest.raises(ConfigError):
            LoadGenConfig(duplicate_fraction=1.5)
        with pytest.raises(ConfigError):
            LoadGenConfig(mix=("teleport",))


class TestClosedLoop:
    def test_duplicate_heavy_mix_coalesces_campaigns(self):
        config = LoadGenConfig(
            n_requests=16, concurrency=4, seed=0,
            duplicate_fraction=0.75, distinct=3,
        )
        report = run_selfhosted(config, runner=_stub_runner)
        validate_latency_report(report)
        assert report["ok_requests"] == 16
        campaigns = report["server"]["service_campaigns_executed"]
        # the acceptance economics: >=2x fewer campaigns than requests
        assert campaigns * 2 <= report["ok_requests"]
        assert report["coalescing"]["hit_rate"] > 0.0
        assert report["coalescing"]["campaigns"] == report[
            "cache_status_counts"
        ].get("miss", 0)

    def test_client_and_server_counters_agree(self):
        config = LoadGenConfig(
            n_requests=12, concurrency=3, seed=1,
            duplicate_fraction=0.5, distinct=2,
        )
        report = run_selfhosted(config, runner=_stub_runner)
        server = report["server"]
        assert server["service_requests_total"] == report["n_requests"]
        assert server["service_campaigns_executed"] == (
            report["cache_status_counts"].get("miss", 0)
        )
        assert server["service_coalesced_requests"] == (
            report["cache_status_counts"].get("coalesced", 0)
        )
        assert server["service_cache_hits"] == (
            report["cache_status_counts"].get("hit", 0)
        )


class TestOpenLoop:
    def test_open_loop_run_completes_and_validates(self):
        config = LoadGenConfig(
            mode="open", n_requests=10, rate_rps=200.0, seed=2,
            duplicate_fraction=0.5, distinct=2,
        )
        report = run_selfhosted(config, runner=_stub_runner)
        validate_latency_report(report)
        assert report["config"]["mode"] == "open"
        assert report["ok_requests"] == 10


class TestSaturationSweep:
    def test_sweep_fills_the_saturation_section(self):
        config = LoadGenConfig(
            n_requests=8, concurrency=2, seed=3,
            duplicate_fraction=0.5, distinct=2,
        )
        report = run_selfhosted(
            config, runner=_stub_runner, sweep_concurrencies=(1, 2, 4)
        )
        validate_latency_report(report)
        saturation = report["saturation"]
        assert saturation["concurrencies"] == [1, 2, 4]
        assert len(saturation["throughput_rps"]) == 3
        assert len(saturation["rejected_429"]) == 3
        knee = saturation["saturation_concurrency"]
        assert knee is None or knee in (2, 4)


class TestReportSchema:
    def test_schema_version_is_pinned(self):
        assert LATENCY_REPORT_SCHEMA_VERSION == 1

    def test_validation_rejects_mutations(self):
        config = LoadGenConfig(
            n_requests=4, concurrency=2, duplicate_fraction=1.0
        )
        report = run_selfhosted(config, runner=_stub_runner)
        validate_latency_report(report)

        broken = dict(report)
        broken["schema_version"] = 99
        with pytest.raises(ServiceError, match="schema_version"):
            validate_latency_report(broken)

        broken = dict(report)
        del broken["latency_ms"]
        with pytest.raises(ServiceError, match="latency_ms"):
            validate_latency_report(broken)

        broken = dict(report)
        broken["latency_ms"] = {"p50": 1.0}  # missing p95/p99/...
        with pytest.raises(ServiceError, match="p95"):
            validate_latency_report(broken)

        broken = dict(report)
        broken["coalescing"] = {"campaigns": 1}
        with pytest.raises(ServiceError, match="duplicate_requests"):
            validate_latency_report(broken)

        with pytest.raises(ServiceError, match="dict"):
            validate_latency_report([report])
