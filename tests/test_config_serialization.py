"""JSON round-trips of the library's real configuration dataclasses.

Campaign definitions are meant to be archived next to their datasets; this
locks the serialization contract for every user-facing config.
"""

import pytest

from repro.config import config_from_dict, config_to_dict, dump_json, load_json
from repro.gpu.defects import DefectConfig
from repro.gpu.dvfs import DvfsPolicy
from repro.gpu.silicon import SiliconConfig
from repro.hostbench import HostBenchConfig
from repro.mitigation import BlacklistPolicy
from repro.sim import CampaignConfig
from repro.sim.engine import EngineConfig
from repro.telemetry.sample import SensorModel

CONFIGS = [
    SiliconConfig(voltage_offset_sigma=0.012, leakage_log_sigma=0.2),
    DefectConfig(power_delivery_rate=0.01,
                 sick_slow_frequency_cap=(0.6, 0.8)),
    DvfsPolicy(dither=True, dither_max_duty=0.4),
    CampaignConfig(days=14, runs_per_day=3, coverage=0.5),
    EngineConfig(dt_s=0.002, thermal_time_scale=5.0),
    SensorModel(power_noise_w=2.0),
    HostBenchConfig(blocks=3, reps_per_block=4),
    BlacklistPolicy(min_confirmations=3, drain_whole_node=False),
]


@pytest.mark.parametrize(
    "config", CONFIGS, ids=[type(c).__name__ for c in CONFIGS]
)
class TestRoundtrips:
    def test_dict_roundtrip(self, config):
        data = config_to_dict(config)
        assert config_from_dict(type(config), data) == config

    def test_json_file_roundtrip(self, config, tmp_path):
        path = tmp_path / "config.json"
        dump_json(config, path)
        assert load_json(type(config), path) == config

    def test_dict_is_json_safe(self, config):
        import json

        json.dumps(config_to_dict(config))  # must not raise


class TestValidationSurvivesDeserialization:
    def test_invalid_values_rejected_on_load(self, tmp_path):
        import json

        path = tmp_path / "bad.json"
        data = config_to_dict(CampaignConfig())
        data["days"] = 0
        path.write_text(json.dumps(data))
        with pytest.raises(Exception):
            load_json(CampaignConfig, path)
