"""Behavioral tests for the repro.api facade and the 2.0 shim removal."""

from __future__ import annotations


import pytest

import repro
from repro import api
from repro.telemetry.io import dataset_to_csv_text


@pytest.fixture(scope="module")
def cloudlab_half():
    return api.load_preset("cloudlab", seed=3, scale=0.5)


class TestConstructors:
    def test_load_preset_matches_legacy_factory(self):
        from repro.cluster import longhorn

        a = api.load_preset("longhorn", seed=9, scale=0.25)
        b = longhorn(seed=9, scale=0.25)
        assert a.name == b.name
        assert a.n_gpus == b.n_gpus
        assert a.seed == b.seed

    def test_load_workload(self):
        assert api.load_workload("sgemm").name == "SGEMM"

    def test_registries(self):
        assert "Longhorn" in api.list_presets()
        assert "sgemm" in api.list_workloads()


class TestRunCampaign:
    def test_matches_legacy_entry_point(self, cloudlab_half):
        from repro.sim import CampaignConfig, run_campaign

        config = api.CampaignConfig(days=1, runs_per_day=2)
        facade = api.run_campaign(
            cluster=cloudlab_half,
            workload=api.load_workload("sgemm"),
            config=config,
        )
        legacy = run_campaign(
            cloudlab_half, api.load_workload("sgemm"),
            CampaignConfig(days=1, runs_per_day=2),
        )
        assert dataset_to_csv_text(facade) == dataset_to_csv_text(legacy)

    def test_rejects_positional_arguments(self, cloudlab_half):
        with pytest.raises(TypeError):
            api.run_campaign(cloudlab_half, api.load_workload("sgemm"))


class TestVerbs:
    CONFIG_KW = {"config": None}

    def test_characterize(self, cloudlab_half):
        result = api.characterize(
            cluster=cloudlab_half,
            workload=api.load_workload("sgemm"),
            config=api.CampaignConfig(days=1),
        )
        assert result.report.cluster_name == cloudlab_half.name
        assert result.dataset.n_rows > 0
        assert 0 <= result.report.performance_variation < 1

    def test_screen(self, cloudlab_half):
        report = api.screen(
            cluster=cloudlab_half,
            workloads=[api.load_workload("sgemm")],
            config=api.CampaignConfig(days=1),
            min_confirmations=1,
        )
        assert len(report.screens) == 1
        assert report.screens[0].workload == "SGEMM"
        assert isinstance(report.confirmed, tuple)

    def test_sweep_matches_limits(self, cloudlab_half):
        report = api.sweep(
            cluster=cloudlab_half,
            power_limits_w=[250.0, 150.0],
            runs=2,
        )
        assert [p.power_limit_w for p in report.points] == [250.0, 150.0]
        # a tighter power limit slows the fleet down
        assert report.points[1].stats.median > report.points[0].stats.median

    def test_sweep_emits_one_manifest_entry_per_limit(self, cloudlab_half):
        manifest = api.Manifest()
        api.sweep(
            cluster=cloudlab_half,
            power_limits_w=[250.0, 150.0],
            runs=1,
            manifest=manifest,
        )
        assert len(manifest.campaigns) == 2
        limits = [entry.config["power_limit_w"]
                  for entry in manifest.campaigns]
        assert limits == [250.0, 150.0]

    def test_project(self, cloudlab_half):
        report = api.project(
            cluster=cloudlab_half,
            target_n_gpus=10_000,
            config=api.CampaignConfig(days=1),
        )
        assert report.target_n_gpus == 10_000
        assert report.projected_variation >= 0


class TestLegacyShimRemoval:
    def test_legacy_names_raise_import_error(self):
        for name in ("VariabilitySuite", "CampaignConfig", "run_campaign"):
            with pytest.raises(ImportError, match="removed in repro 2.0"):
                getattr(repro, name)

    def test_error_names_the_replacement(self):
        with pytest.raises(ImportError, match=r"repro\.api\.load_workload"):
            repro.sgemm

    def test_from_import_raises_too(self):
        with pytest.raises(ImportError, match="removed in repro 2.0"):
            exec("from repro import cloudlab")

    def test_objects_still_live_in_their_home_subpackages(self):
        import repro.core
        import repro.sim

        assert repro.core.VariabilitySuite is not None
        assert repro.sim.CampaignConfig is api.CampaignConfig
