"""Behavioral tests for the repro.api facade and the deprecation shims."""

from __future__ import annotations

import warnings

import pytest

import repro
from repro import api
from repro.telemetry.io import dataset_to_csv_text


@pytest.fixture(scope="module")
def cloudlab_half():
    return api.load_preset("cloudlab", seed=3, scale=0.5)


class TestConstructors:
    def test_load_preset_matches_legacy_factory(self):
        from repro.cluster import longhorn

        a = api.load_preset("longhorn", seed=9, scale=0.25)
        b = longhorn(seed=9, scale=0.25)
        assert a.name == b.name
        assert a.n_gpus == b.n_gpus
        assert a.seed == b.seed

    def test_load_workload(self):
        assert api.load_workload("sgemm").name == "SGEMM"

    def test_registries(self):
        assert "Longhorn" in api.list_presets()
        assert "sgemm" in api.list_workloads()


class TestRunCampaign:
    def test_matches_legacy_entry_point(self, cloudlab_half):
        from repro.sim import CampaignConfig, run_campaign

        config = api.CampaignConfig(days=1, runs_per_day=2)
        facade = api.run_campaign(
            cluster=cloudlab_half,
            workload=api.load_workload("sgemm"),
            config=config,
        )
        legacy = run_campaign(
            cloudlab_half, api.load_workload("sgemm"),
            CampaignConfig(days=1, runs_per_day=2),
        )
        assert dataset_to_csv_text(facade) == dataset_to_csv_text(legacy)

    def test_rejects_positional_arguments(self, cloudlab_half):
        with pytest.raises(TypeError):
            api.run_campaign(cloudlab_half, api.load_workload("sgemm"))


class TestVerbs:
    CONFIG_KW = {"config": None}

    def test_characterize(self, cloudlab_half):
        result = api.characterize(
            cluster=cloudlab_half,
            workload=api.load_workload("sgemm"),
            config=api.CampaignConfig(days=1),
        )
        assert result.report.cluster_name == cloudlab_half.name
        assert result.dataset.n_rows > 0
        assert 0 <= result.report.performance_variation < 1

    def test_screen(self, cloudlab_half):
        report = api.screen(
            cluster=cloudlab_half,
            workloads=[api.load_workload("sgemm")],
            config=api.CampaignConfig(days=1),
            min_confirmations=1,
        )
        assert len(report.screens) == 1
        assert report.screens[0].workload == "SGEMM"
        assert isinstance(report.confirmed, tuple)

    def test_sweep_matches_limits(self, cloudlab_half):
        report = api.sweep(
            cluster=cloudlab_half,
            power_limits_w=[250.0, 150.0],
            runs=2,
        )
        assert [p.power_limit_w for p in report.points] == [250.0, 150.0]
        # a tighter power limit slows the fleet down
        assert report.points[1].stats.median > report.points[0].stats.median

    def test_sweep_emits_one_manifest_entry_per_limit(self, cloudlab_half):
        manifest = api.Manifest()
        api.sweep(
            cluster=cloudlab_half,
            power_limits_w=[250.0, 150.0],
            runs=1,
            manifest=manifest,
        )
        assert len(manifest.campaigns) == 2
        limits = [entry.config["power_limit_w"]
                  for entry in manifest.campaigns]
        assert limits == [250.0, 150.0]

    def test_project(self, cloudlab_half):
        report = api.project(
            cluster=cloudlab_half,
            target_n_gpus=10_000,
            config=api.CampaignConfig(days=1),
        )
        assert report.target_n_gpus == 10_000
        assert report.projected_variation >= 0


class TestDeprecationShims:
    def test_legacy_object_identity(self):
        import repro.core
        import repro.sim

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            assert repro.VariabilitySuite is repro.core.VariabilitySuite
            assert repro.CampaignConfig is repro.sim.CampaignConfig
            assert repro.run_campaign is repro.sim.run_campaign

    def test_warning_names_the_replacement(self):
        with pytest.warns(DeprecationWarning,
                          match=r"repro\.api\.load_workload"):
            repro.sgemm

    def test_legacy_workflow_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            cluster = repro.cloudlab(seed=3, scale=0.5)
            suite = repro.VariabilitySuite(
                cluster, repro.CampaignConfig(days=1)
            )
            report = suite.characterize(repro.sgemm())
        assert report.cluster_name == "CloudLab"
