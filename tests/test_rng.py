"""Tests for deterministic RNG management."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.rng import RngFactory, label_to_words, spawn_generators


class TestLabelToWords:
    def test_stable_mapping(self):
        assert label_to_words("silicon") == label_to_words("silicon")

    def test_distinct_labels_differ(self):
        assert label_to_words("a") != label_to_words("b")

    def test_word_count_and_width(self):
        words = label_to_words("anything")
        assert len(words) == 4
        assert all(0 <= w < 2**32 for w in words)

    @given(st.text(max_size=64))
    def test_any_label_hashes(self, label):
        words = label_to_words(label)
        assert len(words) == 4


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).generator("x").integers(0, 1000, 8)
        b = RngFactory(7).generator("x").integers(0, 1000, 8)
        np.testing.assert_array_equal(a, b)

    def test_different_labels_independent(self):
        a = RngFactory(7).generator("x").integers(0, 1000, 8)
        b = RngFactory(7).generator("y").integers(0, 1000, 8)
        assert not np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = RngFactory(7).generator("x").integers(0, 1000, 8)
        b = RngFactory(8).generator("x").integers(0, 1000, 8)
        assert not np.array_equal(a, b)

    def test_child_is_deterministic(self):
        a = RngFactory(7).child("day-3").generator("g").random(4)
        b = RngFactory(7).child("day-3").generator("g").random(4)
        np.testing.assert_array_equal(a, b)

    def test_child_differs_from_parent(self):
        parent = RngFactory(7).generator("g").random(4)
        child = RngFactory(7).child("day-3").generator("g").random(4)
        assert not np.array_equal(parent, child)

    def test_children_with_distinct_labels_differ(self):
        a = RngFactory(7).child("day-1").generator("g").random(4)
        b = RngFactory(7).child("day-2").generator("g").random(4)
        assert not np.array_equal(a, b)

    def test_seed_property(self):
        assert RngFactory(42).seed == 42

    def test_non_integer_seed_rejected(self):
        with pytest.raises(TypeError):
            RngFactory("nope")

    def test_numpy_integer_seed_accepted(self):
        assert RngFactory(np.int64(5)).seed == 5


class TestSpawnGenerators:
    def test_spawns_all_labels(self):
        gens = spawn_generators(3, ["a", "b", "c"])
        assert set(gens) == {"a", "b", "c"}

    def test_streams_are_independent(self):
        gens = spawn_generators(3, ["a", "b"])
        assert not np.array_equal(gens["a"].random(16), gens["b"].random(16))
