"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["characterize", "--cluster", "vortex", "--days", "2"],
            ["screen", "--workloads", "sgemm"],
            ["sweep", "--limits", "300,200"],
            ["project", "--target-n", "1000"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Longhorn" in out
        assert "pagerank" in out

    def test_characterize_small(self, capsys, tmp_path):
        csv = tmp_path / "data.csv.gz"
        code = main([
            "characterize", "--cluster", "vortex", "--scale", "0.34",
            "--days", "2", "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Variability report: Vortex" in out
        assert csv.exists()

    def test_screen_small(self, capsys):
        code = main([
            "screen", "--cluster", "longhorn", "--scale", "0.25",
            "--days", "2", "--workloads", "sgemm,lammps",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "confirmed outliers" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--limits", "300,150", "--runs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "300 W" in out
        assert "150 W" in out

    def test_sweep_without_admin_fails_cleanly(self, capsys):
        code = main([
            "sweep", "--cluster", "longhorn", "--scale", "0.25",
            "--limits", "200", "--runs", "1",
        ])
        assert code == 2
        assert "administrative" in capsys.readouterr().err

    def test_project(self, capsys):
        code = main([
            "project", "--cluster", "vortex", "--scale", "0.34",
            "--days", "2", "--target-n", "27648",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "projected at 27648" in out

    def test_unknown_cluster_fails_cleanly(self, capsys):
        code = main(["characterize", "--cluster", "nonexistent", "--days", "1"])
        assert code == 2
        assert "unknown cluster" in capsys.readouterr().err
