"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.obs import read_manifest
from repro.sched import validate_scheduling_report


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_all_commands_parse(self):
        parser = build_parser()
        for argv in (
            ["list"],
            ["characterize", "--cluster", "vortex", "--days", "2"],
            ["monitor", "--cluster", "longhorn", "--window", "3"],
            ["screen", "--workloads", "sgemm"],
            ["sweep", "--limits", "300,200"],
            ["project", "--target-n", "1000"],
            ["sched", "--policy", "variability-aware", "--jobs", "50"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_sched_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sched", "--policy", "nonexistent"])

    @pytest.mark.parametrize(
        "command",
        ["list", "characterize", "monitor", "screen", "sweep", "project",
         "sched"],
    )
    def test_execution_args_accepted_uniformly(self, command):
        argv = [command, "--seed", "7", "--workers", "2",
                "--trace", "t.json", "--manifest", "m.json",
                "--timeline", "tl.jsonl", "--solver", "fleet"]
        if command == "project":
            argv += ["--target-n", "1000"]
        args = build_parser().parse_args(argv)
        assert args.seed == 7
        assert args.workers == 2
        assert args.trace == "t.json"
        assert args.manifest == "m.json"
        assert args.timeline == "tl.jsonl"
        assert args.solver == "fleet"

    def test_bad_solver_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["characterize", "--solver", "quantum"])


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "Longhorn" in out
        assert "pagerank" in out

    def test_characterize_small(self, capsys, tmp_path):
        csv = tmp_path / "data.csv.gz"
        code = main([
            "characterize", "--cluster", "vortex", "--scale", "0.34",
            "--days", "2", "--csv", str(csv),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Variability report: Vortex" in out
        assert csv.exists()

    def test_monitor_small(self, capsys, tmp_path):
        report = tmp_path / "health.json"
        events = tmp_path / "events.jsonl"
        metrics = tmp_path / "metrics.prom"
        code = main([
            "monitor", "--cluster", "longhorn", "--scale", "0.25",
            "--seed", "2022", "--days", "2", "--runs-per-day", "2",
            "--report", str(report), "--events", str(events),
            "--metrics", str(metrics),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet health: Longhorn" in out
        assert "ok=" in out
        from repro.obs.health import validate_health_report

        validate_health_report(json.loads(report.read_text()))
        assert "# TYPE repro_gpu_perf_deviation gauge" in metrics.read_text()
        for line in events.read_text().splitlines():
            assert "gpu_label" in json.loads(line)

    def test_monitor_csv_identical_to_characterize(self, capsys, tmp_path):
        shared = ["--cluster", "cloudlab", "--seed", "4", "--days", "2",
                  "--runs-per-day", "2"]
        monitored = tmp_path / "monitored.csv"
        plain = tmp_path / "plain.csv"
        assert main(["monitor", *shared, "--csv", str(monitored)]) == 0
        assert main(["characterize", *shared, "--csv", str(plain)]) == 0
        capsys.readouterr()
        assert monitored.read_bytes() == plain.read_bytes()

    def test_screen_small(self, capsys):
        code = main([
            "screen", "--cluster", "longhorn", "--scale", "0.25",
            "--days", "2", "--workloads", "sgemm,lammps",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "confirmed outliers" in out

    def test_sweep(self, capsys):
        code = main([
            "sweep", "--limits", "300,150", "--runs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "300 W" in out
        assert "150 W" in out

    def test_sweep_without_admin_fails_cleanly(self, capsys):
        code = main([
            "sweep", "--cluster", "longhorn", "--scale", "0.25",
            "--limits", "200", "--runs", "1",
        ])
        assert code == 2
        assert "administrative" in capsys.readouterr().err

    def test_project(self, capsys):
        code = main([
            "project", "--cluster", "vortex", "--scale", "0.34",
            "--days", "2", "--target-n", "27648",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "projected at 27648" in out

    def test_sched_small(self, capsys, tmp_path):
        report = tmp_path / "sched.json"
        events = tmp_path / "events.jsonl"
        code = main([
            "sched", "--cluster", "longhorn", "--scale", "0.2", "--seed", "3",
            "--jobs", "10", "--policy", "fifo", "--trace-seed", "5",
            "--report", str(report), "--events", str(events),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "scheduling report" in out
        assert "slow-assignment rate" in out
        validate_scheduling_report(json.loads(report.read_text()))
        # every job submits, starts, and finishes exactly once
        lines = [json.loads(line)
                 for line in events.read_text().splitlines()]
        assert len(lines) == 3 * 10

    def test_unknown_cluster_fails_cleanly(self, capsys):
        code = main(["characterize", "--cluster", "nonexistent", "--days", "1"])
        assert code == 2
        assert "unknown cluster" in capsys.readouterr().err


class TestObservabilityFlags:
    def test_characterize_writes_trace_and_manifest(self, capsys, tmp_path):
        trace = tmp_path / "trace.json"
        manifest = tmp_path / "manifest.json"
        code = main([
            "characterize", "--cluster", "cloudlab", "--scale", "0.5",
            "--days", "1", "--trace", str(trace),
            "--manifest", str(manifest),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert f"trace written to {trace}" in out
        assert f"manifest written to {manifest}" in out
        doc = json.loads(trace.read_text())
        assert any(e.get("name") == "campaign" and e.get("ph") == "X"
                   for e in doc["traceEvents"])
        audited = read_manifest(manifest)
        assert len(audited["campaigns"]) == 1
        assert audited["campaigns"][0]["cluster"]["name"] == "CloudLab"

    def test_jsonl_suffix_selects_events_format(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        assert main([
            "characterize", "--cluster", "cloudlab", "--scale", "0.5",
            "--days", "1", "--trace", str(trace),
        ]) == 0
        lines = [json.loads(line)
                 for line in trace.read_text().splitlines()]
        assert any(x["event"] == "span" for x in lines)
        assert any(x["event"] == "counter" for x in lines)

    def test_sweep_manifest_has_one_entry_per_limit(self, tmp_path):
        manifest = tmp_path / "m.json"
        assert main([
            "sweep", "--limits", "250,150", "--runs", "1",
            "--manifest", str(manifest),
        ]) == 0
        doc = read_manifest(manifest)
        assert [c["config"]["power_limit_w"] for c in doc["campaigns"]] \
            == [250.0, 150.0]

    def test_traced_output_identical_to_untraced(self, capsys, tmp_path):
        argv = ["sweep", "--limits", "250", "--runs", "2",
                "--scale", "0.5", "--seed", "4"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--trace", str(tmp_path / "t.json")]) == 0
        traced = capsys.readouterr().out
        assert traced.startswith(plain)
        assert "trace written" in traced

    @pytest.mark.parametrize("solver", ["fleet", "grid"])
    def test_solver_flag_output_identical(self, capsys, solver):
        # All solvers are bit-identical, so the printed report must not
        # change with --solver.
        argv = ["characterize", "--cluster", "cloudlab", "--scale", "0.5",
                "--days", "2", "--runs", "2"]
        assert main(argv) == 0
        plain = capsys.readouterr().out
        assert main(argv + ["--solver", solver]) == 0
        assert capsys.readouterr().out == plain

    def test_solver_flag_restores_environment(self, monkeypatch):
        import os
        monkeypatch.delenv("REPRO_DVFS_SOLVER", raising=False)
        assert main(["characterize", "--cluster", "cloudlab",
                     "--scale", "0.5", "--days", "1", "--runs", "1",
                     "--solver", "fleet"]) == 0
        assert "REPRO_DVFS_SOLVER" not in os.environ
        monkeypatch.setenv("REPRO_DVFS_SOLVER", "grid")
        assert main(["characterize", "--cluster", "cloudlab",
                     "--scale", "0.5", "--days", "1", "--runs", "1",
                     "--solver", "fleet"]) == 0
        assert os.environ["REPRO_DVFS_SOLVER"] == "grid"


class TestServiceCli:
    def test_serve_parses_with_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.host == "127.0.0.1"
        assert args.port == 8642
        assert args.backend == "thread"

    def test_serve_accepts_tuning_flags(self):
        args = build_parser().parse_args([
            "serve", "--host", "0.0.0.0", "--port", "0", "--workers", "4",
            "--max-pending", "16", "--cache-entries", "32",
            "--backend", "process",
        ])
        assert args.port == 0
        assert args.workers == 4
        assert args.max_pending == 16
        assert args.cache_entries == 32
        assert args.backend == "process"

    def test_loadgen_parses_with_defaults(self):
        args = build_parser().parse_args(["loadgen", "--self-host"])
        assert args.command == "loadgen"
        assert args.self_host is True
        assert args.mode == "closed"
        assert args.duplicate_fraction == 0.75

    def test_loadgen_rejects_bad_mode(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["loadgen", "--self-host", "--mode", "sideways"])

    def test_loadgen_requires_exactly_one_target(self, capsys):
        assert main(["loadgen"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "loadgen", "--url", "http://127.0.0.1:1", "--self-host",
        ]) == 2

    def test_loadgen_self_host_smoke(self, capsys, tmp_path):
        report_path = tmp_path / "latency.json"
        code = main([
            "loadgen", "--self-host", "--requests", "6",
            "--concurrency", "3", "--duplicate-fraction", "1.0",
            "--cluster", "cloudlab", "--scale", "0.5", "--days", "1",
            "--report", str(report_path),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "6/6 ok" in out
        assert "coalescing: 1 campaign(s) served 6 requests" in out
        assert f"latency report written to {report_path}" in out
        report = json.loads(report_path.read_text())
        from repro.loadgen import validate_latency_report
        validate_latency_report(report)
        assert report["server"]["service_campaigns_executed"] == 1


class TestReplayCli:
    """`--timeline` recording plus the `repro replay` forensics command."""

    MONITOR_ARGS = ["monitor", "--cluster", "cloudlab", "--scale", "0.5",
                    "--seed", "4", "--days", "2", "--runs-per-day", "2"]

    def _record(self, tmp_path, name="t.jsonl", extra=()):
        path = tmp_path / name
        assert main([*self.MONITOR_ARGS, *extra,
                     "--timeline", str(path)]) == 0
        return path

    def test_timeline_flag_writes_byte_stable_file(self, capsys, tmp_path):
        one = self._record(tmp_path, "w1.jsonl")
        two = self._record(tmp_path, "w2.jsonl", extra=["--workers", "2"])
        out = capsys.readouterr().out
        assert "timeline written to" in out
        assert one.read_bytes() == two.read_bytes()

    def test_replay_summarize(self, capsys, tmp_path):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path)]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_events"] > 0
        assert set(summary["layers"]) <= {"campaign", "sim", "health"}
        assert summary["campaign"]["runs_observed"] > 0

    def test_replay_at_and_grep(self, capsys, tmp_path):
        path = self._record(tmp_path)
        capsys.readouterr()
        assert main(["replay", str(path), "--at", "0"]) == 0
        state = json.loads(capsys.readouterr().out)
        assert state["seq"] == 0
        assert main(["replay", str(path), "--grep", "campaign"]) == 0
        captured = capsys.readouterr()
        for line in captured.out.splitlines():
            event = json.loads(line)
            assert "campaign" in (event["entity"] + event["kind"])
        assert "events matched" in captured.err

    def test_replay_check_verifies_digests_from_log_alone(self, capsys,
                                                          tmp_path):
        path = self._record(tmp_path)
        sched_path = tmp_path / "sched.jsonl"
        assert main(["sched", "--cluster", "cloudlab", "--scale", "0.5",
                     "--jobs", "20", "--timeline", str(sched_path)]) == 0
        capsys.readouterr()
        assert main(["replay", str(path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "[ok]" in out and "FAIL" not in out
        assert "health_report" in out
        assert main(["replay", str(sched_path), "--check"]) == 0
        out = capsys.readouterr().out
        assert "sched_report" in out and "report digest" in out

    def test_replay_check_fails_on_tampered_log(self, capsys, tmp_path):
        path = self._record(tmp_path)
        lines = path.read_text().splitlines()
        # drop one sim run event and renumber so the file still parses
        kept = [lines[0]] + [
            line for line in lines[1:]
            if json.loads(line).get("kind") != "run"
        ]
        renumbered = [kept[0]]
        for seq, line in enumerate(kept[1:]):
            doc = json.loads(line)
            doc["seq"] = seq
            renumbered.append(json.dumps(doc, sort_keys=True,
                                         separators=(",", ":")))
        path.write_text("\n".join(renumbered) + "\n")
        capsys.readouterr()
        assert main(["replay", str(path), "--check"]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_replay_missing_file_fails_cleanly(self, capsys, tmp_path):
        assert main(["replay", str(tmp_path / "nope.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_malformed_file_fails_cleanly(self, capsys, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text("not json\n")
        assert main(["replay", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_serve_parser_accepts_timeline(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--timeline", "svc.jsonl"])
        assert args.timeline == "svc.jsonl"
